// Steady-state service benchmark (traffic engine): an open-loop Poisson
// stream of point requests against one shared AVL tree, TLE vs NATLE, swept
// over the offered arrival rate. Fixed-ops microbenchmarks measure
// throughput only; here each request is timed arrival -> completion in
// simulated cycles, so the y axis is the p99 latency including queueing
// delay — flat while the service keeps up, then exploding as the offered
// rate approaches capacity (and the -backlog series goes nonzero).
#include <memory>
#include <string>
#include <vector>

#include "exp/exp.hpp"
#include "traffic/plan.hpp"

using namespace natle;
using workload::BenchOptions;

namespace {

double auxVal(const exp::PointData& p, const std::string& key) {
  for (const auto& [k, v] : p.aux) {
    if (k == key) return v;
  }
  return 0;
}

void planServiceSteady(const BenchOptions& opt, exp::Plan& plan) {
  auto sweep = std::make_shared<traffic::ServiceSweep>(opt);
  traffic::ServiceConfig cfg;
  cfg.model = traffic::ClientModel::kOpen;
  cfg.nthreads = 36;  // both sockets serving
  cfg.key_range = 65536;
  cfg.ds = workload::DsKind::kAvl;
  cfg.warmup_ms = 0.5 * opt.time_scale;
  cfg.measure_ms = 2.0 * opt.time_scale;

  traffic::ClassSpec cls;
  cls.name = "point";
  cls.kind = traffic::RequestKind::kPoint;
  cls.arrival.kind = traffic::ArrivalKind::kPoisson;
  cls.update_pct = 50;
  cls.slo_us = 50;

  // Offered rate axis in requests per simulated ms (= krps). The top end is
  // past the simulated service's saturation point, so the queueing blowup is
  // on-axis for both lock implementations.
  std::vector<double> rates = {4000, 8000, 16000, 32000, 64000, 96000};
  if (opt.full) {
    rates = {2000,  4000,  8000,  16000, 24000, 32000,
             48000, 64000, 80000, 96000, 128000};
  }

  for (workload::SyncKind sync :
       {workload::SyncKind::kTle, workload::SyncKind::kNatle}) {
    cfg.sync = sync;
    for (double rate : rates) {
      cls.arrival.rate = rate;
      cfg.classes = {cls};
      sweep->point(plan, workload::toString(sync), rate, cfg);
    }
  }

  plan.emit = [sweep](const std::vector<exp::PointData>& results) {
    std::vector<exp::Record> rows;
    for (const auto& e : sweep->points()) {
      const exp::PointData& p = results.at(e.job);
      if (p.status != exp::PointStatus::kOk) continue;
      rows.push_back({e.series, e.x, auxVal(p, "point_p99_us")});
      rows.push_back({e.series + "-p50", e.x, auxVal(p, "point_p50_us")});
      rows.push_back({e.series + "-p999", e.x, auxVal(p, "point_p999_us")});
      rows.push_back({e.series + "-krps", e.x, p.value});
      rows.push_back({e.series + "-backlog", e.x, auxVal(p, "backlog_end")});
      rows.push_back({e.series + "-slo-violations", e.x,
                      auxVal(p, "point_slo_violations")});
    }
    return rows;
  };
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    service_steady, "service_steady",
    "open-loop Poisson point requests on one AVL, TLE vs NATLE, rate sweep",
    "new (service)",
    "y = p99 latency (us); -p50/-p999 = quantiles (us); -krps = completed "
    "throughput; -backlog = unserved in-window requests; -slo-violations = "
    "requests over 50us",
    planServiceSteady);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("service_steady", argc, argv);
}
#endif
