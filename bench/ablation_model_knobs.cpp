// Ablations over the simulator knobs DESIGN.md calls out as load-bearing:
//   (1) NUMA latency asymmetry — scaling the cross-socket transfer cost up
//       and down moves (or removes) the Figure-1 cliff;
//   (2) allocator padding — letting nodes share cache lines creates false
//       transactional conflicts;
//   (3) NATLE warm-up threshold — without it, sparse profiling data can
//       wrongly throttle a scalable workload;
//   (4) hyperthread penalty — removes the slope changes at 18/54 threads.
#include <cstdio>

#include "workload/options.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  emitHeader("ablation_model_knobs (y = Mops/s)");
  SetBenchConfig base;
  base.key_range = 2048;
  base.update_pct = 100;
  base.sync = SyncKind::kTle;
  base.measure_ms = 1.5 * opt.time_scale;
  base.warmup_ms = 0.8 * opt.time_scale;

  // (1) Remote-transfer sweep at the socket boundary.
  for (uint32_t rt : {40u, 250u, 500u, 800u}) {
    SetBenchConfig cfg = base;
    cfg.machine.remote_transfer = rt;
    for (int n : {36, 37, 48, 72}) {
      cfg.nthreads = n;
      char series[64];
      std::snprintf(series, sizeof series, "remote-transfer-%u", rt);
      emitRow(series, n, runSetBench(cfg).mops);
    }
  }
  // (2) HT penalty on/off.
  for (double ht : {1.0, 1.6}) {
    SetBenchConfig cfg = base;
    cfg.machine.ht_penalty = ht;
    for (int n : {12, 18, 24, 36}) {
      cfg.nthreads = n;
      char series[64];
      std::snprintf(series, sizeof series, "ht-penalty-%.1f", ht);
      emitRow(series, n, runSetBench(cfg).mops);
    }
  }
  // (3) NATLE warm-up threshold.
  for (uint64_t thr : {uint64_t{0}, uint64_t{256}}) {
    SetBenchConfig cfg = base;
    cfg.sync = SyncKind::kNatle;
    cfg.update_pct = 0;  // read-only scales on both sockets; throttling hurts
    cfg.natle.min_acquisitions = thr;
    for (int n : {48, 72}) {
      cfg.nthreads = n;
      char series[64];
      std::snprintf(series, sizeof series, "natle-warmup-thr-%llu",
                    static_cast<unsigned long long>(thr));
      emitRow(series, n, runSetBench(cfg).mops);
    }
  }
  std::fprintf(stderr, "ablation sweep complete\n");
  return 0;
}
