// Ablations over the simulator knobs DESIGN.md calls out as load-bearing:
//   (1) NUMA latency asymmetry — scaling the cross-socket transfer cost up
//       and down moves (or removes) the Figure-1 cliff;
//   (2) allocator padding — letting nodes share cache lines creates false
//       transactional conflicts;
//   (3) NATLE warm-up threshold — without it, sparse profiling data can
//       wrongly throttle a scalable workload;
//   (4) hyperthread penalty — removes the slope changes at 18/54 threads.
#include <cstdio>
#include <memory>

#include "exp/exp.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

namespace {

void planAblation(const BenchOptions& opt, exp::Plan& plan) {
  auto sweep = std::make_shared<exp::SetSweep>(opt, 1);
  SetBenchConfig base;
  base.key_range = 2048;
  base.update_pct = 100;
  base.sync = SyncKind::kTle;
  base.measure_ms = 1.5 * opt.time_scale;
  base.warmup_ms = 0.8 * opt.time_scale;

  // (1) Remote-transfer sweep at the socket boundary.
  for (uint32_t rt : {40u, 250u, 500u, 800u}) {
    SetBenchConfig cfg = base;
    cfg.machine.remote_transfer = rt;
    char series[64];
    std::snprintf(series, sizeof series, "remote-transfer-%u", rt);
    for (int n : {36, 37, 48, 72}) {
      cfg.nthreads = n;
      sweep->point(plan, series, n, cfg);
    }
  }
  // (2) HT penalty on/off.
  for (double ht : {1.0, 1.6}) {
    SetBenchConfig cfg = base;
    cfg.machine.ht_penalty = ht;
    char series[64];
    std::snprintf(series, sizeof series, "ht-penalty-%.1f", ht);
    for (int n : {12, 18, 24, 36}) {
      cfg.nthreads = n;
      sweep->point(plan, series, n, cfg);
    }
  }
  // (3) NATLE warm-up threshold.
  for (uint64_t thr : {uint64_t{0}, uint64_t{256}}) {
    SetBenchConfig cfg = base;
    cfg.sync = SyncKind::kNatle;
    cfg.update_pct = 0;  // read-only scales on both sockets; throttling hurts
    cfg.natle.min_acquisitions = thr;
    char series[64];
    std::snprintf(series, sizeof series, "natle-warmup-thr-%llu",
                  static_cast<unsigned long long>(thr));
    for (int n : {48, 72}) {
      cfg.nthreads = n;
      sweep->point(plan, series, n, cfg);
    }
  }
  plan.emit = [sweep](const std::vector<exp::PointData>& results) {
    std::vector<exp::Record> rows;
    for (const auto& p : sweep->aggregate(results)) {
      rows.push_back({p.series, p.x, p.r.mops});
    }
    return rows;
  };
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    ablation, "ablation_model_knobs",
    "Simulator-knob ablations: remote transfer, HT penalty, NATLE warm-up",
    "DESIGN.md ablations", "y = Mops/s", planAblation);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("ablation_model_knobs", argc, argv);
}
#endif
