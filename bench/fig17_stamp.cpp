// Figure 17: the STAMP suite (Ruan et al. revision) with every transaction
// run as a critical section on one global lock, elided with TLE or NATLE.
// Nine charts (bayes omitted for variance, as in the paper); y is total
// runtime in simulated milliseconds — lower is better. The paper's headline:
// in 7 of 9 charts TLE's runtime skyrockets past 36 threads while NATLE
// stays roughly flat.
#include <cstdio>
#include <vector>

#include "apps/stamp/stamp.hpp"
#include "exp/exp.hpp"
#include "workload/json.hpp"

using namespace natle;
using namespace natle::apps::stamp;
using namespace natle::workload;

namespace {

void planFig17(const BenchOptions& opt, exp::Plan& plan) {
  StampConfig base;
  base.scale = 1.0 * opt.time_scale;
  const std::vector<int> axis =
      opt.full ? std::vector<int>{1, 2, 4, 8, 12, 18, 24, 30, 36, 40, 44,
                                  48, 54, 63, 72}
               : std::vector<int>{1, 4, 12, 18, 36, 40, 48, 72};
  for (const auto& k : kernels()) {
    for (bool natle : {false, true}) {
      for (int n : axis) {
        StampConfig cfg = base;
        cfg.nthreads = n;
        cfg.natle = natle;
        cfg.seed = 17 + static_cast<uint64_t>(n);
        char series[64];
        std::snprintf(series, sizeof series, "%s-%s", k.name,
                      natle ? "natle" : "tle");
        exp::Job j;
        j.series = series;
        j.x = n;
        j.seed = cfg.seed;
        JsonWriter w;
        w.beginObject();
        w.key("kernel").value(k.name);
        w.key("nthreads").value(n);
        w.key("natle").value(natle);
        w.key("scale").value(cfg.scale);
        w.key("seed").value(cfg.seed);
        w.endObject();
        j.config_json = w.take();
        const KernelFn fn = k.fn;
        j.run = [fn, cfg] {
          const StampResult r = fn(cfg);
          exp::PointData p;
          p.value = r.sim_ms;
          p.aux = {{"tx_commits", static_cast<double>(r.tx_commits)},
                   {"tx_aborts", static_cast<double>(r.tx_aborts)},
                   {"lock_acquires", static_cast<double>(r.lock_acquires)}};
          return p;
        };
        plan.jobs.push_back(std::move(j));
      }
    }
  }
  // Default emit: one (series, x, sim_ms) row per job.
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    fig17, "fig17_stamp",
    "Nine STAMP kernels on one elided global lock, TLE vs NATLE",
    "Figure 17", "y = runtime in simulated ms; lower is better", planFig17);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("fig17_stamp", argc, argv);
}
#endif
