// Figure 17: the STAMP suite (Ruan et al. revision) with every transaction
// run as a critical section on one global lock, elided with TLE or NATLE.
// Nine charts (bayes omitted for variance, as in the paper); y is total
// runtime in simulated milliseconds — lower is better. The paper's headline:
// in 7 of 9 charts TLE's runtime skyrockets past 36 threads while NATLE
// stays roughly flat.
#include <cstdio>

#include "apps/stamp/stamp.hpp"
#include "workload/options.hpp"

using namespace natle;
using namespace natle::apps::stamp;
using namespace natle::workload;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  emitHeader("fig17_stamp (y = runtime in simulated ms; lower is better)");
  StampConfig cfg;
  cfg.scale = 1.0 * opt.time_scale;
  const std::vector<int> axis =
      opt.full ? std::vector<int>{1, 2, 4, 8, 12, 18, 24, 30, 36, 40, 44,
                                  48, 54, 63, 72}
               : std::vector<int>{1, 4, 12, 18, 36, 40, 48, 72};
  for (const auto& k : kernels()) {
    for (bool natle : {false, true}) {
      for (int n : axis) {
        cfg.nthreads = n;
        cfg.natle = natle;
        cfg.seed = 17 + n;
        const StampResult r = k.fn(cfg);
        char series[64];
        std::snprintf(series, sizeof series, "%s-%s", k.name,
                      natle ? "natle" : "tle");
        emitRow(series, n, r.sim_ms);
        std::fprintf(stderr, "%s n=%d ms=%.3f commits=%llu aborts=%llu locks=%llu\n",
                     series, n, r.sim_ms,
                     static_cast<unsigned long long>(r.tx_commits),
                     static_cast<unsigned long long>(r.tx_aborts),
                     static_cast<unsigned long long>(r.lock_acquires));
      }
    }
  }
  return 0;
}
