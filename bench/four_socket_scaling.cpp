// Scaling on the speculative 4-socket ring machine (Section 6): 144 hardware
// threads across four sockets where opposite sockets are two interconnect
// hops apart. Reruns the paper's sharpest NUMA workloads — search-and-replace
// on a small key range (Figure 4's cliff) and the AVL update workload under
// TLE and NATLE — to see whether the 2-socket cliff at the socket boundary
// repeats at each additional socket crossing.
#include <memory>
#include <vector>

#include "exp/exp.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

namespace {

std::vector<int> fourSocketAxis(const sim::MachineConfig& m, bool full) {
  if (full) return threadAxis(m, true);
  // Sparse axis dense around the three socket boundaries (36/72/108).
  std::vector<int> axis;
  const int total = m.totalThreads();
  for (int i : {1, 4, 9, 18, 30, 36, 40, 54, 70, 72, 76, 90, 106, 108, 112,
                126, 144}) {
    if (i >= 1 && i <= total && (axis.empty() || i > axis.back())) {
      axis.push_back(i);
    }
  }
  return axis;
}

void planFourSocket(const BenchOptions& opt, exp::Plan& plan) {
  auto sweep = std::make_shared<exp::SetSweep>(opt);
  SetBenchConfig base;
  base.machine = sim::FourSocketRing();
  base.measure_ms = 1.5 * opt.time_scale;
  base.warmup_ms = 0.6 * opt.time_scale;
  const auto axis = fourSocketAxis(base.machine, opt.full);

  SetBenchConfig sr = base;
  sr.key_range = 4096;
  sr.search_replace = true;
  sr.sync = SyncKind::kTle;
  for (int n : axis) {
    sr.nthreads = n;
    sweep->point(plan, "tle-sr-4096", n, sr);
  }

  SetBenchConfig avl = base;
  avl.key_range = 2048;
  avl.update_pct = 100;
  for (int n : axis) {
    avl.nthreads = n;
    avl.sync = SyncKind::kTle;
    sweep->point(plan, "tle-avl-2048", n, avl);
    avl.sync = SyncKind::kNatle;
    sweep->point(plan, "natle-avl-2048", n, avl);
  }

  plan.emit = [sweep](const std::vector<exp::PointData>& results) {
    std::vector<exp::Record> rows;
    for (const auto& p : sweep->aggregate(results)) {
      rows.push_back({p.series, p.x, p.r.mops});
      rows.push_back({p.series + "-abort-rate", p.x, p.r.abort_rate});
    }
    return rows;
  };
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    four_socket, "four_socket_scaling",
    "Search-replace and AVL workloads on the 4-socket ring (144 threads)",
    "Section 6", "y = Mops/s; -abort-rate = aborts per tx begin",
    planFourSocket);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("four_socket_scaling", argc, argv);
}
#endif
