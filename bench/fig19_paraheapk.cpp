// Figure 19: paraheap-k (heap-based parallel k-means over galactic data).
//   (a) with pinning: worker threads are re-created and re-pinned twice per
//       iteration, and that overhead eats most of NATLE's benefit;
//   (b) without pinning: NATLE's advantage is much larger and appears from
//       18 threads.
#include <cstdio>

#include <vector>

#include "apps/paraheapk/paraheapk.hpp"
#include "workload/options.hpp"

using namespace natle;
using namespace natle::apps::paraheapk;
using namespace natle::workload;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  emitHeader("fig19_paraheapk (y = processing runtime in simulated ms)");
  ParaheapConfig cfg;
  cfg.scale = 0.5 * opt.time_scale;
  const std::vector<int> axis =
      opt.full ? std::vector<int>{1, 2, 4, 8, 12, 18, 24, 30, 36, 40, 48, 54,
                                  63, 72}
               : std::vector<int>{1, 4, 12, 18, 36, 40, 48, 72};
  for (bool pin : {true, false}) {
    cfg.pin_threads = pin;
    for (bool natle : {false, true}) {
      cfg.natle = natle;
      for (int n : axis) {
        cfg.nthreads = n;
        cfg.seed = 19 + n;
        const ParaheapResult r = runParaheapK(cfg);
        char series[64];
        std::snprintf(series, sizeof series, "%s-%s",
                      pin ? "pinned" : "unpinned", natle ? "natle" : "tle");
        emitRow(series, n, r.sim_ms);
        std::fprintf(stderr, "%s n=%d ms=%.3f\n", series, n, r.sim_ms);
      }
    }
  }
  return 0;
}
