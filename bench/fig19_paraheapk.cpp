// Figure 19: paraheap-k (heap-based parallel k-means over galactic data).
//   (a) with pinning: worker threads are re-created and re-pinned twice per
//       iteration, and that overhead eats most of NATLE's benefit;
//   (b) without pinning: NATLE's advantage is much larger and appears from
//       18 threads.
#include <cstdio>
#include <vector>

#include "apps/paraheapk/paraheapk.hpp"
#include "exp/exp.hpp"
#include "workload/json.hpp"

using namespace natle;
using namespace natle::apps::paraheapk;
using namespace natle::workload;

namespace {

void planFig19(const BenchOptions& opt, exp::Plan& plan) {
  const std::vector<int> axis =
      opt.full ? std::vector<int>{1, 2, 4, 8, 12, 18, 24, 30, 36, 40, 48, 54,
                                  63, 72}
               : std::vector<int>{1, 4, 12, 18, 36, 40, 48, 72};
  for (bool pin : {true, false}) {
    for (bool natle : {false, true}) {
      for (int n : axis) {
        ParaheapConfig cfg;
        cfg.scale = 0.5 * opt.time_scale;
        cfg.pin_threads = pin;
        cfg.natle = natle;
        cfg.nthreads = n;
        cfg.seed = 19 + static_cast<uint64_t>(n);
        char series[64];
        std::snprintf(series, sizeof series, "%s-%s",
                      pin ? "pinned" : "unpinned", natle ? "natle" : "tle");
        exp::Job j;
        j.series = series;
        j.x = n;
        j.seed = cfg.seed;
        JsonWriter w;
        w.beginObject();
        w.key("nthreads").value(n);
        w.key("natle").value(natle);
        w.key("pin_threads").value(pin);
        w.key("scale").value(cfg.scale);
        w.key("seed").value(cfg.seed);
        w.endObject();
        j.config_json = w.take();
        j.run = [cfg] {
          const ParaheapResult r = runParaheapK(cfg);
          exp::PointData p;
          p.value = r.sim_ms;
          p.aux = {{"iterations", static_cast<double>(r.iterations)}};
          return p;
        };
        plan.jobs.push_back(std::move(j));
      }
    }
  }
  // Default emit: one (series, x, sim_ms) row per job.
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    fig19, "fig19_paraheapk",
    "paraheap-k: thread re-pinning overhead vs NATLE's benefit",
    "Figure 19", "y = processing runtime in simulated ms", planFig19);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("fig19_paraheapk", argc, argv);
}
#endif
