// Data-placement shootout (Section 6 speculation): the same AVL workload
// under each allocator placement policy. First-touch keeps a thread's nodes
// on its own socket, interleave stripes lines round-robin, allocator-socket
// piles everything onto socket 0, and adversarial-remote homes every
// allocation on the farthest socket from the allocator. Placement shifts the
// cross-socket share of both memory traffic and conflict aborts, so every
// point runs traced and the emit hook derives those shares from the abort
// attribution.
#include <memory>
#include <string>
#include <vector>

#include "exp/exp.hpp"
#include "mem/alloc.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

namespace {

void planMallocPlacement(const BenchOptions& opt, exp::Plan& plan) {
  static const mem::PlacePolicy kPolicies[] = {
      mem::PlacePolicy::kFirstTouch,
      mem::PlacePolicy::kInterleave,
      mem::PlacePolicy::kAllocatorSocket,
      mem::PlacePolicy::kAdversarialRemote,
  };
  // Attribution (the cross-socket abort split) is the point of this
  // experiment, so tracing is always on regardless of --trace.
  BenchOptions topt = opt;
  topt.trace = true;
  auto sweep = std::make_shared<exp::SetSweep>(topt);
  SetBenchConfig cfg;
  cfg.key_range = 65536;
  cfg.update_pct = 100;
  cfg.sync = SyncKind::kTle;
  cfg.tle = sync::Tle20();
  cfg.measure_ms = 2.0 * opt.time_scale;
  cfg.warmup_ms = 0.8 * opt.time_scale;
  for (mem::PlacePolicy p : kPolicies) {
    cfg.placement = p;
    for (int n : {1, 2, 4, 8, 18, 36, 54, 72}) {
      cfg.nthreads = n;
      sweep->point(plan, mem::toString(p), n, cfg);
    }
  }
  plan.emit = [sweep](const std::vector<exp::PointData>& results) {
    std::vector<exp::Record> rows;
    for (const auto& p : sweep->aggregate(results)) {
      rows.push_back({p.series, p.x, p.r.mops});
      rows.push_back({p.series + "-abort-rate", p.x, p.r.abort_rate});
      const auto& s = p.r.stats;
      const uint64_t accesses =
          s.l1_hits + s.local_hits + s.remote_transfers + s.dram_misses;
      rows.push_back({p.series + "-remote-transfer-share", p.x,
                      accesses > 0 ? static_cast<double>(s.remote_transfers) /
                                         static_cast<double>(accesses)
                                   : 0});
      const auto& at = p.r.attribution;
      const uint64_t attributed =
          at.crossSocketAborts() + at.intraSocketAborts();
      rows.push_back({p.series + "-cross-socket-abort-share", p.x,
                      attributed > 0
                          ? static_cast<double>(at.crossSocketAborts()) /
                                static_cast<double>(attributed)
                          : 0});
    }
    return rows;
  };
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    malloc_placement, "malloc_placement",
    "AVL, 100% updates, keys [0,65536): TLE-20 under each placement policy",
    "Section 6", "y = Mops/s; -abort-rate, -remote-transfer-share, "
    "-cross-socket-abort-share = fractions",
    planMallocPlacement);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("malloc_placement", argc, argv);
}
#endif
