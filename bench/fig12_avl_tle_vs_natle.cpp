// Figure 12: AVL trees, key range [0, 2048), TLE vs NATLE, six panels:
// update fractions {0, 20, 100}% crossed with {no external work, external
// work drawn from [0, 256) units}. NATLE pays a profiling tax on workloads
// that scale across sockets (read-only) but holds near-peak throughput on
// workloads that collapse under TLE.
#include <cstdio>

#include "workload/options.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  emitHeader("fig12_avl_tle_vs_natle (y = Mops/s)");
  SetBenchConfig cfg;
  cfg.key_range = 2048;
  cfg.measure_ms = 2.0 * opt.time_scale;
  cfg.warmup_ms = 1.0 * opt.time_scale;
  cfg.trials = opt.full ? 3 : 1;
  for (bool ext : {false, true}) {
    cfg.ext.max_units = ext ? 256 : 0;
    for (int upd : {0, 20, 100}) {
      cfg.update_pct = upd;
      for (SyncKind sync : {SyncKind::kTle, SyncKind::kNatle}) {
        cfg.sync = sync;
        char series[64];
        std::snprintf(series, sizeof series, "%s-upd%d-%s", toString(sync), upd,
                      ext ? "extwork" : "nowork");
        for (int n : threadAxis(cfg.machine, opt.full)) {
          cfg.nthreads = n;
          const SetBenchResult r = runSetBench(cfg);
          emitRow(series, n, r.mops);
          std::fprintf(stderr, "%s n=%d mops=%.3f abort=%.3f locks=%llu\n",
                       series, n, r.mops, r.abort_rate,
                       static_cast<unsigned long long>(r.stats.lock_acquires));
        }
      }
    }
  }
  return 0;
}
