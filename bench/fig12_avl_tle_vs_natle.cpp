// Figure 12: AVL trees, key range [0, 2048), TLE vs NATLE, six panels:
// update fractions {0, 20, 100}% crossed with {no external work, external
// work drawn from [0, 256) units}. NATLE pays a profiling tax on workloads
// that scale across sockets (read-only) but holds near-peak throughput on
// workloads that collapse under TLE.
#include <cstdio>
#include <memory>

#include "exp/exp.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

namespace {

void planFig12(const BenchOptions& opt, exp::Plan& plan) {
  auto sweep = std::make_shared<exp::SetSweep>(opt);
  SetBenchConfig cfg;
  cfg.key_range = 2048;
  cfg.measure_ms = 2.0 * opt.time_scale;
  cfg.warmup_ms = 1.0 * opt.time_scale;
  for (bool ext : {false, true}) {
    cfg.ext.max_units = ext ? 256 : 0;
    for (int upd : {0, 20, 100}) {
      cfg.update_pct = upd;
      for (SyncKind sync : {SyncKind::kTle, SyncKind::kNatle}) {
        cfg.sync = sync;
        char series[64];
        std::snprintf(series, sizeof series, "%s-upd%d-%s", toString(sync),
                      upd, ext ? "extwork" : "nowork");
        for (int n : threadAxis(cfg.machine, opt.full)) {
          cfg.nthreads = n;
          sweep->point(plan, series, n, cfg);
        }
      }
    }
  }
  plan.emit = [sweep](const std::vector<exp::PointData>& results) {
    std::vector<exp::Record> rows;
    for (const auto& p : sweep->aggregate(results)) {
      rows.push_back({p.series, p.x, p.r.mops});
    }
    return rows;
  };
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    fig12, "fig12_avl_tle_vs_natle",
    "AVL, TLE vs NATLE across update fraction x external work panels",
    "Figure 12", "y = Mops/s", planFig12);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("fig12_avl_tle_vs_natle", argc, argv);
}
#endif
