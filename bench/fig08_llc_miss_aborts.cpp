// Section 3.2's in-text experiment (no figure number): a single thread
// iterates over a large byte array, and for every third cache line starts a
// transaction, reads one word, and commits (skipping two lines between reads
// defeats the adjacent-line prefetcher; the simulator has no prefetcher, but
// we keep the access pattern). Almost every read misses the LLC, yet there
// are almost no transactional aborts — proving LLC misses do not abort
// transactions. A second variant reads memory homed on the *other* socket
// to rule out cross-socket LLC misses as an abort cause.
//
// Paper numbers: ~2^23 LLC misses, fewer than 100 aborts. We use a smaller
// array by default (512 MiB of address space is unnecessary to make the
// point); --full uses the paper's 1 GiB.
#include <memory>
#include <string>

#include "exp/exp.hpp"
#include "htm/env.hpp"
#include "workload/json.hpp"

using namespace natle;
using namespace natle::htm;
using namespace natle::workload;

namespace {

exp::PointData runVariant(int reader_thread_index, size_t array_bytes) {
  sim::MachineConfig mc = sim::LargeMachine();
  Env env(mc);
  // Home the array on socket 0; the reader is on socket 0 (local variant) or
  // socket 1 (cross-socket variant).
  char* array = static_cast<char*>(env.allocShared(array_bytes, 0));
  uint64_t aborts = 0;
  uint64_t txs = 0;
  env.spawnWorker(
      [&](ThreadCtx& ctx) {
        for (size_t off = 0; off + 8 <= array_bytes; off += 192) {
          unsigned s;
          NATLE_TX_BEGIN(ctx, s);
          if (s == kTxStarted) {
            (void)ctx.load(*reinterpret_cast<int64_t*>(array + off));
            ctx.txCommit();
            ++txs;
          } else {
            ++aborts;
          }
        }
      },
      sim::placeThread(mc, sim::PinPolicy::kFillSocketFirst,
                       reader_thread_index));
  env.run();
  exp::PointData p;
  p.stats = env.totals();
  p.has_stats = true;
  p.value = static_cast<double>(p.stats.dram_misses);
  p.aux = {{"tx_reads", static_cast<double>(txs)},
           {"tx_aborts", static_cast<double>(aborts)}};
  return p;
}

void planFig08(const BenchOptions& opt, exp::Plan& plan) {
  const size_t bytes = opt.full ? (1ull << 30) : (128ull << 20);
  const struct {
    const char* series;
    int reader;
  } variants[] = {{"local", 0}, {"cross-socket", 40}};
  for (const auto& v : variants) {
    exp::Job j;
    j.series = v.series;
    j.x = 0;
    j.seed = 1;
    JsonWriter w;
    w.beginObject();
    w.key("array_bytes").value(static_cast<uint64_t>(bytes));
    w.key("reader_thread_index").value(v.reader);
    w.endObject();
    j.config_json = w.take();
    const int reader = v.reader;
    j.run = [reader, bytes] { return runVariant(reader, bytes); };
    plan.jobs.push_back(std::move(j));
  }
  plan.emit = [](const std::vector<exp::PointData>& results) {
    const char* names[] = {"local", "cross-socket"};
    std::vector<exp::Record> rows;
    for (size_t i = 0; i < results.size(); ++i) {
      rows.push_back({std::string(names[i]) + "-llc-misses", 0,
                      static_cast<double>(results[i].stats.dram_misses)});
      rows.push_back(
          {std::string(names[i]) + "-aborts", 0, results[i].aux[1].second});
    }
    return rows;
  };
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    fig08, "fig08_llc_miss_aborts",
    "Single-threaded LLC-miss sweep: misses do not abort transactions",
    "Section 3.2", "in-text experiment, Section 3.2", planFig08);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("fig08_llc_miss_aborts", argc, argv);
}
#endif
