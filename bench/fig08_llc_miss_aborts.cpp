// Section 3.2's in-text experiment (no figure number): a single thread
// iterates over a large byte array, and for every third cache line starts a
// transaction, reads one word, and commits (skipping two lines between reads
// defeats the adjacent-line prefetcher; the simulator has no prefetcher, but
// we keep the access pattern). Almost every read misses the LLC, yet there
// are almost no transactional aborts — proving LLC misses do not abort
// transactions. A second variant reads memory homed on the *other* socket
// to rule out cross-socket LLC misses as an abort cause.
//
// Paper numbers: ~2^23 LLC misses, fewer than 100 aborts. We use a smaller
// array by default (512 MiB of address space is unnecessary to make the
// point); --full uses the paper's 1 GiB.
#include <cstdio>

#include "htm/env.hpp"
#include "workload/options.hpp"

using namespace natle;
using namespace natle::htm;
using namespace natle::workload;

namespace {

void runVariant(const char* series, int reader_thread_index, size_t array_bytes) {
  sim::MachineConfig mc = sim::LargeMachine();
  Env env(mc);
  // Home the array on socket 0; the reader is on socket 0 (local variant) or
  // socket 1 (cross-socket variant).
  char* array = static_cast<char*>(env.allocShared(array_bytes, 0));
  uint64_t aborts = 0;
  uint64_t txs = 0;
  env.spawnWorker(
      [&](ThreadCtx& ctx) {
        for (size_t off = 0; off + 8 <= array_bytes; off += 192) {
          unsigned s;
          NATLE_TX_BEGIN(ctx, s);
          if (s == kTxStarted) {
            (void)ctx.load(*reinterpret_cast<int64_t*>(array + off));
            ctx.txCommit();
            ++txs;
          } else {
            ++aborts;
          }
        }
      },
      sim::placeThread(mc, sim::PinPolicy::kFillSocketFirst,
                       reader_thread_index));
  env.run();
  const TxStats t = env.totals();
  emitRow(std::string(series) + "-llc-misses", 0,
          static_cast<double>(t.dram_misses));
  emitRow(std::string(series) + "-aborts", 0, static_cast<double>(aborts));
  std::fprintf(stderr,
               "%s: reads=%llu llc_misses=%llu aborts=%llu (paper: misses ~= "
               "reads, aborts < 100)\n",
               series, static_cast<unsigned long long>(txs),
               static_cast<unsigned long long>(t.dram_misses),
               static_cast<unsigned long long>(aborts));
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  emitHeader("fig08_llc_miss_aborts (in-text experiment, Section 3.2)");
  const size_t bytes = opt.full ? (1ull << 30) : (128ull << 20);
  runVariant("local", 0, bytes);
  runVariant("cross-socket", 40, bytes);
  return 0;
}
