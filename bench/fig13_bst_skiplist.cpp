// Figure 13: unbalanced (leaf-oriented) BSTs and skip lists, key range
// [0, 2048), with external work — TLE vs NATLE. The BST's updates modify
// only nodes near the leaves, so TLE is not prone to the NUMA effect and
// NATLE chooses both sockets; the skip list behaves like the AVL tree.
#include <cstdio>

#include "workload/options.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  emitHeader("fig13_bst_skiplist (y = Mops/s)");
  SetBenchConfig cfg;
  cfg.key_range = 2048;
  cfg.ext.max_units = 256;
  cfg.measure_ms = 2.0 * opt.time_scale;
  cfg.warmup_ms = 1.0 * opt.time_scale;
  cfg.trials = opt.full ? 3 : 1;
  for (DsKind ds : {DsKind::kLeafBst, DsKind::kSkipList}) {
    cfg.ds = ds;
    for (int upd : {20, 100}) {
      cfg.update_pct = upd;
      for (SyncKind sync : {SyncKind::kTle, SyncKind::kNatle}) {
        cfg.sync = sync;
        char series[64];
        std::snprintf(series, sizeof series, "%s-%s-upd%d", toString(ds),
                      toString(sync), upd);
        for (int n : threadAxis(cfg.machine, opt.full)) {
          cfg.nthreads = n;
          const SetBenchResult r = runSetBench(cfg);
          emitRow(series, n, r.mops);
          std::fprintf(stderr, "%s n=%d mops=%.3f abort=%.3f\n", series, n,
                       r.mops, r.abort_rate);
        }
      }
    }
  }
  return 0;
}
