// Figure 13: unbalanced (leaf-oriented) BSTs and skip lists, key range
// [0, 2048), with external work — TLE vs NATLE. The BST's updates modify
// only nodes near the leaves, so TLE is not prone to the NUMA effect and
// NATLE chooses both sockets; the skip list behaves like the AVL tree.
#include <cstdio>
#include <memory>

#include "exp/exp.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

namespace {

void planFig13(const BenchOptions& opt, exp::Plan& plan) {
  auto sweep = std::make_shared<exp::SetSweep>(opt);
  SetBenchConfig cfg;
  cfg.key_range = 2048;
  cfg.ext.max_units = 256;
  cfg.measure_ms = 2.0 * opt.time_scale;
  cfg.warmup_ms = 1.0 * opt.time_scale;
  for (DsKind ds : {DsKind::kLeafBst, DsKind::kSkipList}) {
    cfg.ds = ds;
    for (int upd : {20, 100}) {
      cfg.update_pct = upd;
      for (SyncKind sync : {SyncKind::kTle, SyncKind::kNatle}) {
        cfg.sync = sync;
        char series[64];
        std::snprintf(series, sizeof series, "%s-%s-upd%d", toString(ds),
                      toString(sync), upd);
        for (int n : threadAxis(cfg.machine, opt.full)) {
          cfg.nthreads = n;
          sweep->point(plan, series, n, cfg);
        }
      }
    }
  }
  plan.emit = [sweep](const std::vector<exp::PointData>& results) {
    std::vector<exp::Record> rows;
    for (const auto& p : sweep->aggregate(results)) {
      rows.push_back({p.series, p.x, p.r.mops});
    }
    return rows;
  };
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    fig13, "fig13_bst_skiplist",
    "Leaf-BST and skip list under TLE vs NATLE with external work",
    "Figure 13", "y = Mops/s", planFig13);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("fig13_bst_skiplist", argc, argv);
}
#endif
