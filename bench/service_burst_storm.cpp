// Tail latency under a mid-run abort storm (traffic engine + fault
// injection): two tenant classes — latency-sensitive point requests and
// heavier range scans — arrive open-loop at a rate the service comfortably
// sustains, while the storm fault channel periodically raises the
// spurious-abort hazard on socket 0 only (a noisy co-scheduled neighbor, an
// interrupt storm). Under TLE the stormed socket's threads burn their retry
// budgets and grab the global fallback lock, whose subscription aborts every
// concurrent elision — the convoy drags the clean socket down with it and
// the point class's p999 blows up. NATLE's mode scheduler measures the
// stormed socket as slow and routes quanta to the clean socket, so its tail
// stays bounded. The time-bucketed latency series in the JSON records
// localizes the blowup to the storm windows.
#include <memory>
#include <string>
#include <vector>

#include "exp/exp.hpp"
#include "traffic/plan.hpp"

using namespace natle;
using workload::BenchOptions;

namespace {

double auxVal(const exp::PointData& p, const std::string& key) {
  for (const auto& [k, v] : p.aux) {
    if (k == key) return v;
  }
  return 0;
}

void planServiceBurstStorm(const BenchOptions& opt, exp::Plan& plan) {
  auto sweep = std::make_shared<traffic::ServiceSweep>(opt);
  traffic::ServiceConfig cfg;
  cfg.model = traffic::ClientModel::kOpen;
  cfg.nthreads = 72;  // both sockets serving; the storm hits only socket 0
  cfg.key_range = 65536;
  cfg.ds = workload::DsKind::kAvl;
  cfg.warmup_ms = 0.5 * opt.time_scale;
  // Long enough past the storm's onset (~1 ms in) that NATLE's reaction —
  // one profiling phase later — pays off inside the measured window.
  cfg.measure_ms = 4.0 * opt.time_scale;

  traffic::ClassSpec point;
  point.name = "point";
  point.kind = traffic::RequestKind::kPoint;
  point.arrival.kind = traffic::ArrivalKind::kPoisson;
  point.arrival.rate = 20000;
  point.update_pct = 50;
  point.slo_us = 100;

  traffic::ClassSpec scan;
  scan.name = "scan";
  scan.kind = traffic::RequestKind::kScan;
  scan.arrival.kind = traffic::ArrivalKind::kPoisson;
  scan.arrival.rate = 500;
  scan.scan_len = 64;
  scan.slo_us = 400;

  cfg.classes = {point, scan};

  // x axis: storm intensity (extra spurious-abort hazard per cycle inside
  // the window; 1e-2 aborts a ~300-cycle transaction with p ~ 0.95, enough
  // to exhaust a 20-attempt retry budget). One sustained window opens
  // mid-measurement (~1 simulated ms in) and lasts to the end of the run —
  // long enough for NATLE's next profiling phase to measure the stormed
  // socket as slow and route quanta away from it, which a storm shorter
  // than the ~1.5 ms profiling+quanta cycle would never give it.
  std::vector<double> storm_rates = {0, 2e-3, 1e-2};
  if (opt.full) storm_rates = {0, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2};

  for (workload::SyncKind sync :
       {workload::SyncKind::kTle, workload::SyncKind::kNatle}) {
    cfg.sync = sync;
    for (double rate : storm_rates) {
      cfg.fault = fault::FaultSpec{};
      if (rate > 0) {
        cfg.fault.storm.period_ms = 1.0 * opt.time_scale;
        cfg.fault.storm.duration_ms = 4.0 * opt.time_scale;
        cfg.fault.storm.jitter = 0.1;
        cfg.fault.storm_rate = rate;
        cfg.fault.storm_socket = 0;
        cfg.fault.seed = 7;
      }
      sweep->point(plan, workload::toString(sync), rate, cfg);
    }
  }

  plan.emit = [sweep](const std::vector<exp::PointData>& results) {
    std::vector<exp::Record> rows;
    for (const auto& e : sweep->points()) {
      const exp::PointData& p = results.at(e.job);
      if (p.status != exp::PointStatus::kOk) continue;
      rows.push_back({e.series, e.x, auxVal(p, "point_p999_us")});
      rows.push_back({e.series + "-p99", e.x, auxVal(p, "point_p99_us")});
      rows.push_back(
          {e.series + "-scan-p999", e.x, auxVal(p, "scan_p999_us")});
      rows.push_back({e.series + "-slo-violations", e.x,
                      auxVal(p, "point_slo_violations") +
                          auxVal(p, "scan_slo_violations")});
      rows.push_back({e.series + "-krps", e.x, p.value});
      if (p.has_stats) {
        rows.push_back({e.series + "-lock-acquires", e.x,
                        static_cast<double>(p.stats.lock_acquires)});
      }
    }
    return rows;
  };
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    service_burst_storm, "service_burst_storm",
    "point+scan tenants, mid-run abort storm on one socket: TLE tail blowup "
    "vs NATLE",
    "new (service)",
    "y = point p999 latency (us); -p99/-scan-p999 = quantiles (us); "
    "-slo-violations = requests over SLO; -krps = completed throughput; "
    "-lock-acquires = fallback serializations",
    planServiceBurstStorm);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("service_burst_storm", argc, argv);
}
#endif
