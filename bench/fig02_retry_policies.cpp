// Figure 2: retry policies on the large machine. AVL tree, 100% updates,
// key range [0, 131072).
//   (a) throughput for TLE-{5,20}{,-hint-bit,-count-lock}
//   (b) percent of TLE-20 transactions that commit after at least one
//       failure with the hint bit clear
#include <cstdio>
#include <utility>
#include <vector>

#include "workload/options.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  emitHeader("fig02_retry_policies (a: y = Mops/s; b: y = % commits)");

  const std::vector<std::pair<const char*, sync::TlePolicy>> policies = {
      {"TLE-20", sync::Tle20()},
      {"TLE-5", sync::Tle5()},
      {"TLE-20-hint-bit", sync::Tle20HintBit()},
      {"TLE-5-hint-bit", sync::Tle5HintBit()},
      {"TLE-20-count-lock", sync::Tle20CountLock()},
      {"TLE-5-count-lock", sync::Tle5CountLock()},
  };

  SetBenchConfig cfg;
  cfg.key_range = 131072;
  cfg.update_pct = 100;
  cfg.sync = SyncKind::kTle;
  cfg.measure_ms = 2.0 * opt.time_scale;
  cfg.warmup_ms = 0.8 * opt.time_scale;
  cfg.trials = opt.full ? 3 : 1;

  const auto axis = threadAxis(cfg.machine, opt.full);
  for (const auto& [name, pol] : policies) {
    cfg.tle = pol;
    for (int n : axis) {
      cfg.nthreads = n;
      const SetBenchResult r = runSetBench(cfg);
      emitRow(name, n, r.mops);
      if (std::string(name) == "TLE-20") {
        emitRow("TLE-20-pct-commit-after-hintclear", n, r.hintclear_commit_pct);
      }
      std::fprintf(stderr, "%s n=%d mops=%.3f hintclear%%=%.2f locks=%llu\n",
                   name, n, r.mops, r.hintclear_commit_pct,
                   static_cast<unsigned long long>(r.stats.lock_acquires));
    }
  }
  return 0;
}
