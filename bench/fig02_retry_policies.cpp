// Figure 2: retry policies on the large machine. AVL tree, 100% updates,
// key range [0, 131072).
//   (a) throughput for TLE-{5,20}{,-hint-bit,-count-lock}
//   (b) percent of TLE-20 transactions that commit after at least one
//       failure with the hint bit clear
#include <memory>
#include <utility>
#include <vector>

#include "exp/exp.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

namespace {

void planFig02(const BenchOptions& opt, exp::Plan& plan) {
  const std::vector<std::pair<const char*, sync::TlePolicy>> policies = {
      {"TLE-20", sync::Tle20()},
      {"TLE-5", sync::Tle5()},
      {"TLE-20-hint-bit", sync::Tle20HintBit()},
      {"TLE-5-hint-bit", sync::Tle5HintBit()},
      {"TLE-20-count-lock", sync::Tle20CountLock()},
      {"TLE-5-count-lock", sync::Tle5CountLock()},
  };
  auto sweep = std::make_shared<exp::SetSweep>(opt);
  SetBenchConfig cfg;
  cfg.key_range = 131072;
  cfg.update_pct = 100;
  cfg.sync = SyncKind::kTle;
  cfg.measure_ms = 2.0 * opt.time_scale;
  cfg.warmup_ms = 0.8 * opt.time_scale;
  const auto axis = threadAxis(cfg.machine, opt.full);
  for (const auto& [name, pol] : policies) {
    cfg.tle = pol;
    for (int n : axis) {
      cfg.nthreads = n;
      sweep->point(plan, name, n, cfg);
    }
  }
  plan.emit = [sweep](const std::vector<exp::PointData>& results) {
    std::vector<exp::Record> rows;
    for (const auto& p : sweep->aggregate(results)) {
      rows.push_back({p.series, p.x, p.r.mops});
      if (p.series == "TLE-20") {
        rows.push_back({"TLE-20-pct-commit-after-hintclear", p.x,
                        p.r.hintclear_commit_pct});
      }
    }
    return rows;
  };
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    fig02, "fig02_retry_policies",
    "AVL, 100% updates, keys [0,131072): TLE retry-policy shootout",
    "Figure 2", "a: y = Mops/s; b: y = % commits", planFig02);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("fig02_retry_policies", argc, argv);
}
#endif
