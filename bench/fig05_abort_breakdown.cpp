// Figure 5: abort-rate breakdown for the TLE curve of Figure 4 (search-and-
// replace, key range [0, 4096)). Series: total abort fraction and the
// fraction aborting for each hardware-reported cause. The paper's headline:
// the abort rate jumps from ~10% at 36 threads to ~33% at 42, almost all of
// it data conflicts.
#include <memory>
#include <string>

#include "exp/exp.hpp"
#include "htm/abort.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

namespace {

void planFig05(const BenchOptions& opt, exp::Plan& plan) {
  auto sweep = std::make_shared<exp::SetSweep>(opt);
  SetBenchConfig cfg;
  cfg.key_range = 4096;
  cfg.search_replace = true;
  cfg.sync = SyncKind::kTle;
  cfg.measure_ms = 2.0 * opt.time_scale;
  cfg.warmup_ms = 0.8 * opt.time_scale;
  for (int n : threadAxis(cfg.machine, opt.full)) {
    cfg.nthreads = n;
    sweep->point(plan, "tle", n, cfg);
  }
  plan.emit = [sweep](const std::vector<exp::PointData>& results) {
    std::vector<exp::Record> rows;
    for (const auto& p : sweep->aggregate(results)) {
      const auto& s = p.r.stats;
      const double begins =
          s.tx_begins > 0 ? static_cast<double>(s.tx_begins) : 1.0;
      rows.push_back(
          {"abort-total", p.x, static_cast<double>(s.totalAborts()) / begins});
      for (int reason = 1; reason < htm::kAbortReasonCount; ++reason) {
        rows.push_back({std::string("abort-") +
                            htm::toString(static_cast<htm::AbortReason>(reason)),
                        p.x,
                        static_cast<double>(s.tx_aborts[reason]) / begins});
      }
    }
    return rows;
  };
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    fig05, "fig05_abort_breakdown",
    "Abort-cause breakdown for the Figure 4 TLE curve", "Figure 5",
    "y = fraction of tx attempts", planFig05);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("fig05_abort_breakdown", argc, argv);
}
#endif
