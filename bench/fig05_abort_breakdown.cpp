// Figure 5: abort-rate breakdown for the TLE curve of Figure 4 (search-and-
// replace, key range [0, 4096)). Series: total abort fraction and the
// fraction aborting for each hardware-reported cause. The paper's headline:
// the abort rate jumps from ~10% at 36 threads to ~33% at 42, almost all of
// it data conflicts.
#include <cstdio>

#include "workload/options.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  emitHeader("fig05_abort_breakdown (y = fraction of tx attempts)");
  SetBenchConfig cfg;
  cfg.key_range = 4096;
  cfg.search_replace = true;
  cfg.sync = SyncKind::kTle;
  cfg.measure_ms = 2.0 * opt.time_scale;
  cfg.warmup_ms = 0.8 * opt.time_scale;
  cfg.trials = opt.full ? 3 : 1;
  for (int n : threadAxis(cfg.machine, opt.full)) {
    cfg.nthreads = n;
    const SetBenchResult r = runSetBench(cfg);
    const auto& s = r.stats;
    const double begins =
        s.tx_begins > 0 ? static_cast<double>(s.tx_begins) : 1.0;
    emitRow("abort-total", n, static_cast<double>(s.totalAborts()) / begins);
    for (int reason = 1; reason < htm::kAbortReasonCount; ++reason) {
      emitRow(std::string("abort-") +
                  htm::toString(static_cast<htm::AbortReason>(reason)),
              n, static_cast<double>(s.tx_aborts[reason]) / begins);
    }
    std::fprintf(stderr, "n=%d abort_rate=%.3f conflict_frac=%.3f\n", n,
                 r.abort_rate, r.conflict_abort_fraction);
  }
  return 0;
}
