// Robustness experiment: Figure 2's retry policies re-run under escalating
// injected adversity on the large machine. The paper's policy ranking is
// measured on a quiet machine; this sweep asks which retry policy degrades
// gracefully when the environment misbehaves:
//
//   x = 0  no faults (matches the quiet-machine baseline)
//   x = 1  bursty spurious-abort storms pinned to socket 1
//   x = 2  + transient L1 way squeezes and interconnect latency spikes
//   x = 3  + lock-holder stalls (preempted fallback-lock holder)
//
// Every point runs with the livelock watchdog armed, so a policy that
// collapses into a lemming cascade under a stall burst is recorded as a
// structured "failed" point rather than hanging the sweep.
//
// Setting NATLE_ADVERSITY_HANG=1 adds a deliberately livelocked point (an
// always-on multi-millisecond lock-holder stall, far beyond the watchdog
// budget) used by CI to prove the watchdog converts hangs into failures.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "exp/exp.hpp"
#include "fault/fault.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

namespace {

// Parses a built-in spec and scales its burst windows by NATLE_SIM_SCALE:
// the measurement window shrinks with the scale, and unscaled ~0.5ms fault
// periods would land entirely outside a scaled-down trial.
fault::FaultSpec specOf(const char* text, double time_scale) {
  fault::FaultSpec spec;
  std::string err;
  if (!fault::FaultSpec::parse(text, &spec, &err)) {
    std::fprintf(stderr, "adversity: bad built-in fault spec %s: %s\n", text,
                 err.c_str());
    std::abort();
  }
  for (fault::BurstCfg* b :
       {&spec.storm, &spec.squeeze, &spec.link, &spec.stall}) {
    b->period_ms *= time_scale;
    b->duration_ms *= time_scale;
  }
  return spec;
}

void planAdversity(const BenchOptions& opt, exp::Plan& plan) {
  const std::vector<std::pair<const char*, sync::TlePolicy>> policies = {
      {"TLE-20", sync::Tle20()},
      {"TLE-5", sync::Tle5()},
      {"TLE-20-hint-bit", sync::Tle20HintBit()},
      {"TLE-20-count-lock", sync::Tle20CountLock()},
  };
  // Escalating adversity levels. Rates/periods are simulated-time; every
  // channel is windowed so quiet stretches separate the bursts.
  const std::vector<std::pair<double, const char*>> levels = {
      {0, ""},
      {1, "storm:rate=2e-4,period_ms=0.5,duration_ms=0.1,socket=1;seed=9"},
      {2,
       "storm:rate=2e-4,period_ms=0.5,duration_ms=0.1,socket=1;"
       "squeeze:ways=6,period_ms=0.7,duration_ms=0.15;"
       "link:extra=300,period_ms=0.9,duration_ms=0.2;seed=9"},
      {3,
       "storm:rate=2e-4,period_ms=0.5,duration_ms=0.1,socket=1;"
       "squeeze:ways=6,period_ms=0.7,duration_ms=0.15;"
       "link:extra=300,period_ms=0.9,duration_ms=0.2;"
       "stall:cycles=40000,period_ms=1.1,duration_ms=0.05;seed=9"},
  };
  auto sweep = std::make_shared<exp::SetSweep>(opt);
  SetBenchConfig cfg;
  cfg.key_range = 2048;
  cfg.update_pct = 100;
  cfg.sync = SyncKind::kTle;
  cfg.nthreads = 48;  // cross-socket: both sockets active, storms asymmetric
  cfg.measure_ms = 1.0 * opt.time_scale;
  cfg.warmup_ms = 0.4 * opt.time_scale;
  cfg.watchdog_ms = 2.0;
  for (const auto& [name, pol] : policies) {
    cfg.tle = pol;
    for (const auto& [level, spec_text] : levels) {
      cfg.fault = spec_text[0] != '\0' ? specOf(spec_text, opt.time_scale)
                                       : fault::FaultSpec{};
      sweep->point(plan, name, level, cfg);
    }
  }
  if (const char* hang = std::getenv("NATLE_ADVERSITY_HANG");
      hang != nullptr && hang[0] == '1') {
    // An always-on ~10ms lock-holder stall against a 2ms progress budget:
    // every thread piles behind the held fallback lock and the watchdog must
    // convert the hang into a deterministic failed point.
    SetBenchConfig h = cfg;
    h.tle = sync::Tle20();
    h.nthreads = 8;
    h.fault = specOf(
        "stall:cycles=23000000,period_ms=0.01,duration_ms=50;seed=1",
        opt.time_scale);
    sweep->point(plan, "hang-livelock", 99, h);
  }
  plan.emit = [sweep](const std::vector<exp::PointData>& results) {
    std::vector<exp::Record> rows;
    for (const auto& p : sweep->aggregate(results)) {
      rows.push_back({p.series, p.x, p.r.mops});
      rows.push_back({std::string(p.series) + "-abort-rate", p.x,
                      p.r.abort_rate});
    }
    return rows;
  };
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    adversity, "adversity_retry_policies",
    "TLE retry policies under injected abort storms, cache squeezes, link "
    "spikes and lock-holder stalls; watchdog armed",
    "Section 3.1 (robustness)", "y = Mops/s; -abort-rate: aborts/begin",
    planAdversity);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("adversity_retry_policies", argc, argv);
}
#endif
