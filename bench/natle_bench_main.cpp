// natle-bench: single CLI over every registered experiment.
//
//   natle-bench list                         # what can run, one line each
//   natle-bench run --all -j8                # everything, 8 worker threads
//   natle-bench run --filter 'fig0?' --full  # glob (or prefix) selection
//
// `run` writes bench_results/<name>.csv + <name>.json per experiment plus a
// manifest.json (git SHA, NATLE_SIM_SCALE, simulated machine shape, per-
// experiment timing) and prints a timing summary table. All output except
// the wall_ms fields is byte-identical for any --jobs value.
#include <signal.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "exp/exp.hpp"
#include "fault/fault.hpp"
#include "mem/alloc.hpp"
#include "sim/config.hpp"
#include "traffic/arrival.hpp"
#include "workload/json.hpp"

using namespace natle;
using natle::workload::BenchOptions;
using natle::workload::JsonWriter;

namespace {

// SIGINT/SIGTERM request a graceful stop: in-flight points finish (thread
// mode) or are killed and left not-run (isolate mode), completed points are
// flushed to disk, and --resume picks the sweep back up.
exp::StopToken g_stop;

void onStopSignal(int) { g_stop.request(); }

void installStopHandlers() {
  struct sigaction sa{};
  sa.sa_handler = onStopSignal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

void printUsage(std::FILE* to) {
  std::fputs(
      "usage: natle-bench <command> [options]\n"
      "commands:\n"
      "  list                     list registered experiments\n"
      "  run [options]            run experiments, write CSV/JSON results\n"
      "  trace EXPERIMENT [opts]  dump raw transaction event streams (JSONL)\n"
      "run options:\n"
      "  --all                    run every registered experiment\n"
      "  --filter GLOB            run experiments matching GLOB (* and ?;\n"
      "                           a bare prefix like fig01 also matches);\n"
      "                           repeatable, union of matches\n"
      "  --jobs N, -j N           worker threads (default 1; 0 = all host\n"
      "                           cores). Output is identical for any N.\n"
      "  --full                   denser axes, longer trials, 3 trials/point\n"
      "  --trace                  record transaction events; per-point abort\n"
      "                           attribution (killer matrix, hot lines,\n"
      "                           fallback episodes) lands in the JSON records\n"
      "  --progress               per-data-point completion lines on stderr\n"
      "  --out-dir DIR            result directory (default bench_results)\n"
      "  --fault SPEC             inject a deterministic fault schedule into\n"
      "                           every point, e.g.\n"
      "                           'storm:rate=2e-4,period_ms=1,duration_ms=0.2;"
      "seed=7'\n"
      "  --placement P            data-placement policy for shared\n"
      "                           allocations: first-touch (default),\n"
      "                           interleave, allocator-socket,\n"
      "                           adversarial-remote\n"
      "  --watchdog-ms N          fail any point making no progress for N\n"
      "                           simulated ms (records it, keeps sweeping)\n"
      "  --arrival SPEC           traffic experiments (service_*): arrival\n"
      "                           process for every request class, e.g.\n"
      "                           'poisson:rate=300' or 'burst:rate=200,"
      "on_ms=0.3,\n"
      "                           off_ms=0.7,mult=4'\n"
      "  --duration-ms N          traffic experiments: simulated measurement\n"
      "                           window in ms\n"
      "  --slo-us N               traffic experiments: per-class latency SLO\n"
      "                           threshold in us\n"
      "  --isolate                fork each point into its own process;\n"
      "                           crashes/timeouts become failed records\n"
      "  --point-timeout S        wall-clock seconds per point before an\n"
      "                           isolated child is killed (needs --isolate)\n"
      "  --retry-transient N      retry a failed point up to N times with a\n"
      "                           reseeded config before recording failure\n"
      "  --resume                 skip points already present in the output\n"
      "                           files under --out-dir (byte-identical\n"
      "                           splice of prior records)\n"
      "  --help, -h               this text\n"
      "trace options:\n"
      "  --series S               only jobs of series S\n"
      "  --x N                    only jobs at x = N\n"
      "  --trial N                only trial N\n"
      "  --full                   the experiment's --full plan\n"
      "environment:\n"
      "  NATLE_SIM_SCALE=<float>  scale simulated trial length\n",
      to);
}

int cmdList() {
  for (const exp::Experiment* e : exp::Registry::instance().all()) {
    std::printf("%-24s %-12s %s\n", e->name, e->paper_ref, e->description);
  }
  return 0;
}

std::string gitSha() {
  std::string sha = "unknown";
  if (std::FILE* p = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof buf, p) != nullptr) {
      for (char* c = buf; *c != '\0'; ++c) {
        if (*c == '\n') *c = '\0';
      }
      if (buf[0] != '\0') sha = buf;
    }
    ::pclose(p);
  }
  return sha;
}

std::string utcNow() {
  const std::time_t t =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

bool writeFile(const std::filesystem::path& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "natle-bench: cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "natle-bench: short write to %s\n",
                        path.c_str());
  return ok;
}

// Reads a whole file; empty optional-style: ok=false when unreadable.
bool readFile(const std::filesystem::path& path, std::string* body) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char buf[1 << 16];
  size_t n;
  body->clear();
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) body->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

std::string renderManifest(const BenchOptions& opt, int jobs_requested,
                           const std::vector<exp::ExperimentOutput>& outs,
                           double total_wall_ms, bool interrupted) {
  JsonWriter w;
  w.beginObject();
  w.key("tool").value("natle-bench");
  w.key("created_utc").value(utcNow());
  w.key("git_sha").value(gitSha());
  const char* scale_env = std::getenv("NATLE_SIM_SCALE");
  w.key("natle_sim_scale_env").value(scale_env != nullptr ? scale_env : "");
  w.key("sim_scale").value(opt.time_scale);
  w.key("full").value(opt.full);
  w.key("jobs").value(jobs_requested);
  w.key("workers").value(exp::resolveWorkers(jobs_requested));
  w.key("machine");
  workload::appendJson(w, sim::LargeMachine());
  w.key("experiments");
  w.beginArray().newline();
  for (const exp::ExperimentOutput& o : outs) {
    w.beginObject();
    w.key("name").value(o.experiment->name);
    w.key("paper_ref").value(o.experiment->paper_ref);
    w.key("data_points").value(static_cast<uint64_t>(o.n_jobs));
    w.key("csv_rows").value(static_cast<uint64_t>(o.n_records));
    w.key("failed").value(static_cast<uint64_t>(o.n_failed));
    w.key("not_run").value(static_cast<uint64_t>(o.n_not_run));
    w.key("resumed").value(static_cast<uint64_t>(o.n_resumed));
    w.key("csv").value(std::string(o.experiment->name) + ".csv");
    w.key("json").value(std::string(o.experiment->name) + ".json");
    w.key("job_wall_ms").value(o.job_wall_ms);
    w.endObject().newline();
  }
  w.endArray();
  w.key("interrupted").value(interrupted);
  w.key("total_wall_ms").value(total_wall_ms);
  w.endObject().newline();
  return w.take();
}

int cmdRun(int argc, char** argv) {
  bool all = false;
  bool resume = false;
  std::vector<std::string> filters;
  BenchOptions opt;
  exp::RunnerOptions ropt;
  std::filesystem::path out_dir = "bench_results";
  for (int i = 0; i < argc; ++i) {
    const char* a = argv[i];
    auto needValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "natle-bench: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--all") == 0) {
      all = true;
    } else if (std::strcmp(a, "--filter") == 0) {
      filters.push_back(needValue(a));
    } else if (std::strcmp(a, "--jobs") == 0 || std::strcmp(a, "-j") == 0 ||
               std::strncmp(a, "--jobs=", 7) == 0 ||
               (std::strncmp(a, "-j", 2) == 0 && a[2] != '\0')) {
      // Accept the make/ninja spellings too: -j8, --jobs=8.
      const char* v = std::strncmp(a, "--jobs=", 7) == 0 ? a + 7
                      : a[1] == 'j' && a[2] != '\0'      ? a + 2
                                                         : needValue(a);
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n < 0 || n > 4096) {
        std::fprintf(stderr, "natle-bench: invalid --jobs value: %s\n", v);
        return 2;
      }
      ropt.jobs = static_cast<int>(n);
    } else if (std::strcmp(a, "--full") == 0) {
      opt.full = true;
    } else if (std::strcmp(a, "--trace") == 0) {
      opt.trace = true;
    } else if (std::strcmp(a, "--progress") == 0) {
      ropt.progress = true;
    } else if (std::strcmp(a, "--out-dir") == 0) {
      out_dir = needValue(a);
    } else if (std::strcmp(a, "--fault") == 0) {
      opt.fault_spec = needValue(a);
    } else if (std::strncmp(a, "--fault=", 8) == 0) {
      opt.fault_spec = a + 8;
    } else if (std::strcmp(a, "--placement") == 0) {
      opt.placement = needValue(a);
    } else if (std::strncmp(a, "--placement=", 12) == 0) {
      opt.placement = a + 12;
    } else if (std::strcmp(a, "--watchdog-ms") == 0 ||
               std::strncmp(a, "--watchdog-ms=", 14) == 0) {
      const char* v = a[13] == '=' ? a + 14 : needValue(a);
      if (!BenchOptions::parseScale(v, &opt.watchdog_ms)) {
        std::fprintf(stderr, "natle-bench: invalid --watchdog-ms value: %s\n",
                     v);
        return 2;
      }
    } else if (std::strcmp(a, "--arrival") == 0) {
      opt.arrival_spec = needValue(a);
    } else if (std::strncmp(a, "--arrival=", 10) == 0) {
      opt.arrival_spec = a + 10;
    } else if (std::strcmp(a, "--duration-ms") == 0 ||
               std::strncmp(a, "--duration-ms=", 14) == 0) {
      const char* v = a[13] == '=' ? a + 14 : needValue(a);
      if (!BenchOptions::parseScale(v, &opt.duration_ms)) {
        std::fprintf(stderr, "natle-bench: invalid --duration-ms value: %s\n",
                     v);
        return 2;
      }
    } else if (std::strcmp(a, "--slo-us") == 0 ||
               std::strncmp(a, "--slo-us=", 9) == 0) {
      const char* v = a[8] == '=' ? a + 9 : needValue(a);
      if (!BenchOptions::parseScale(v, &opt.slo_us)) {
        std::fprintf(stderr, "natle-bench: invalid --slo-us value: %s\n", v);
        return 2;
      }
    } else if (std::strcmp(a, "--isolate") == 0) {
      ropt.isolate = true;
    } else if (std::strcmp(a, "--point-timeout") == 0 ||
               std::strncmp(a, "--point-timeout=", 16) == 0) {
      const char* v = a[15] == '=' ? a + 16 : needValue(a);
      if (!BenchOptions::parseScale(v, &ropt.point_timeout_s)) {
        std::fprintf(stderr,
                     "natle-bench: invalid --point-timeout value: %s\n", v);
        return 2;
      }
    } else if (std::strcmp(a, "--retry-transient") == 0 ||
               std::strncmp(a, "--retry-transient=", 18) == 0) {
      const char* v = a[17] == '=' ? a + 18 : needValue(a);
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n < 0 || n > 100) {
        std::fprintf(stderr,
                     "natle-bench: invalid --retry-transient value: %s\n", v);
        return 2;
      }
      ropt.transient_retries = static_cast<int>(n);
    } else if (std::strcmp(a, "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      printUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "natle-bench: unknown argument: %s\n", a);
      printUsage(stderr);
      return 2;
    }
  }
  if (ropt.point_timeout_s > 0 && !ropt.isolate) {
    std::fprintf(stderr, "natle-bench: --point-timeout requires --isolate\n");
    return 2;
  }
  if (!opt.fault_spec.empty()) {
    fault::FaultSpec spec;
    std::string err;
    if (!fault::FaultSpec::parse(opt.fault_spec, &spec, &err)) {
      std::fprintf(stderr, "natle-bench: invalid --fault spec: %s\n",
                   err.c_str());
      return 2;
    }
  }
  if (!opt.placement.empty()) {
    mem::PlacePolicy p;
    if (!mem::parsePlacePolicy(opt.placement, &p)) {
      std::fprintf(stderr,
                   "natle-bench: invalid --placement value: \"%s\" (want "
                   "first-touch, interleave, allocator-socket, or "
                   "adversarial-remote)\n",
                   opt.placement.c_str());
      return 2;
    }
  }
  if (!opt.arrival_spec.empty()) {
    traffic::ArrivalSpec spec;
    std::string err;
    if (!traffic::ArrivalSpec::parse(opt.arrival_spec, &spec, &err)) {
      std::fprintf(stderr, "natle-bench: invalid --arrival spec: %s\n",
                   err.c_str());
      return 2;
    }
  }
  if (const char* s = std::getenv("NATLE_SIM_SCALE")) {
    if (!BenchOptions::parseScale(s, &opt.time_scale)) {
      std::fprintf(stderr,
                   "natle-bench: invalid NATLE_SIM_SCALE value: \"%s\" "
                   "(want a finite number > 0)\n",
                   s);
      return 2;
    }
  }
  if (!all && filters.empty()) {
    std::fprintf(stderr,
                 "natle-bench: run needs --all or at least one --filter\n");
    return 2;
  }

  // Union of filter matches, name-sorted (Registry returns sorted lists).
  std::vector<const exp::Experiment*> selected;
  if (all) {
    selected = exp::Registry::instance().all();
  } else {
    for (const std::string& f : filters) {
      for (const exp::Experiment* e : exp::Registry::instance().match(f)) {
        bool dup = false;
        for (const exp::Experiment* s : selected) dup |= (s == e);
        if (!dup) selected.push_back(e);
      }
    }
    std::sort(selected.begin(), selected.end(),
              [](const exp::Experiment* a, const exp::Experiment* b) {
                return std::strcmp(a->name, b->name) < 0;
              });
    for (const std::string& f : filters) {
      if (exp::Registry::instance().match(f).empty()) {
        std::fprintf(stderr, "natle-bench: --filter %s matched nothing\n",
                     f.c_str());
        return 1;
      }
    }
  }
  if (selected.empty()) {
    std::fprintf(stderr, "natle-bench: no experiments selected\n");
    return 1;
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "natle-bench: cannot create %s: %s\n",
                 out_dir.c_str(), ec.message().c_str());
    return 1;
  }

  // --resume: harvest completed points from the existing result files so
  // only the missing/failed ones rerun. Prior records are spliced into the
  // new files byte-for-byte.
  std::map<std::string, std::map<std::string, exp::ResumePoint>> resume_maps;
  if (resume) {
    for (const exp::Experiment* e : selected) {
      std::string body;
      if (!readFile(out_dir / (std::string(e->name) + ".json"), &body)) {
        continue;
      }
      std::map<std::string, exp::ResumePoint> pts;
      std::string prior_name, err;
      if (!exp::loadResumeFile(body, &pts, &prior_name, &err)) {
        std::fprintf(stderr,
                     "natle-bench: ignoring unparseable %s.json: %s\n",
                     e->name, err.c_str());
        continue;
      }
      if (!prior_name.empty() && prior_name != e->name) continue;
      if (!pts.empty()) resume_maps[e->name] = std::move(pts);
    }
    ropt.resume = &resume_maps;
  }
  installStopHandlers();
  ropt.stop = &g_stop;

  std::fprintf(stderr, "natle-bench: %zu experiment(s), %d worker(s)%s\n",
               selected.size(), exp::resolveWorkers(ropt.jobs),
               ropt.isolate ? ", crash-isolated" : "");
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<exp::ExperimentOutput> outs =
      exp::runExperiments(selected, opt, ropt);
  const double total_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  const bool interrupted = g_stop.stopped();

  for (const exp::ExperimentOutput& o : outs) {
    if (!writeFile(out_dir / (std::string(o.experiment->name) + ".csv"),
                   o.csv) ||
        !writeFile(out_dir / (std::string(o.experiment->name) + ".json"),
                   o.json)) {
      return 1;
    }
  }
  if (!writeFile(
          out_dir / "manifest.json",
          renderManifest(opt, ropt.jobs, outs, total_wall_ms, interrupted))) {
    return 1;
  }

  std::printf("%-24s %8s %8s %8s %12s\n", "experiment", "points", "rows",
              "failed", "job-wall(s)");
  double sum_job_wall = 0;
  size_t total_failed = 0, total_not_run = 0, total_resumed = 0;
  for (const exp::ExperimentOutput& o : outs) {
    std::printf("%-24s %8zu %8zu %8zu %12.2f\n", o.experiment->name, o.n_jobs,
                o.n_records, o.n_failed, o.job_wall_ms / 1e3);
    sum_job_wall += o.job_wall_ms;
    total_failed += o.n_failed;
    total_not_run += o.n_not_run;
    total_resumed += o.n_resumed;
  }
  // job-wall / elapsed is average in-flight concurrency, not speedup: on a
  // timeshared core per-job wall times inflate and the ratio stays ~N.
  std::printf("%-24s %8s %8s %8zu %12.2f  (elapsed %.2fs, concurrency %.2fx)\n",
              "total", "", "", total_failed, sum_job_wall / 1e3,
              total_wall_ms / 1e3,
              total_wall_ms > 0 ? sum_job_wall / total_wall_ms : 0.0);
  if (total_resumed > 0) {
    std::printf("resumed: %zu point(s) reused from prior results\n",
                total_resumed);
  }
  for (const exp::ExperimentOutput& o : outs) {
    exp::printFailureSummary(o, stderr);
  }
  if (interrupted) {
    std::fprintf(stderr,
                 "natle-bench: interrupted; %zu point(s) not run. Completed "
                 "points were flushed; rerun with --resume to finish.\n",
                 total_not_run);
  }
  std::printf("results: %s\n", out_dir.c_str());
  if (interrupted) return 130;
  return total_failed > 0 ? 1 : 0;
}

// `natle-bench trace <experiment>`: expand the experiment's plan and print
// each selected job's raw event stream, one JSON object per line, separated
// by `# job ...` comment headers. Jobs re-run serially with raw event
// retention; output is deterministic (line ids are ASLR-independent).
int cmdTrace(int argc, char** argv) {
  if (argc < 1 || argv[0][0] == '-') {
    std::fprintf(stderr, "natle-bench: trace needs an experiment name\n");
    return 2;
  }
  const std::string name = argv[0];
  BenchOptions opt;
  std::string series_filter;
  bool have_x = false, have_trial = false;
  double x_filter = 0;
  long trial_filter = 0;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto needValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "natle-bench: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--full") == 0) {
      opt.full = true;
    } else if (std::strcmp(a, "--series") == 0) {
      series_filter = needValue(a);
    } else if (std::strcmp(a, "--x") == 0) {
      x_filter = std::atof(needValue(a));
      have_x = true;
    } else if (std::strcmp(a, "--trial") == 0) {
      trial_filter = std::atol(needValue(a));
      have_trial = true;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      printUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "natle-bench: unknown trace argument: %s\n", a);
      return 2;
    }
  }
  if (const char* s = std::getenv("NATLE_SIM_SCALE")) {
    if (!BenchOptions::parseScale(s, &opt.time_scale)) {
      std::fprintf(stderr, "natle-bench: invalid NATLE_SIM_SCALE value: %s\n",
                   s);
      return 2;
    }
  }
  const exp::Experiment* e = exp::Registry::instance().find(name);
  if (e == nullptr) {
    const auto matches = exp::Registry::instance().match(name);
    if (matches.size() == 1) {
      e = matches[0];
    } else {
      std::fprintf(stderr, "natle-bench: %s experiment: %s\n",
                   matches.empty() ? "unknown" : "ambiguous", name.c_str());
      return 1;
    }
  }
  exp::Plan plan;
  e->plan(opt, plan);
  size_t dumped = 0, untraceable = 0;
  for (const exp::Job& j : plan.jobs) {
    if (!series_filter.empty() && j.series != series_filter) continue;
    if (have_x && j.x != x_filter) continue;
    if (have_trial && j.trial != trial_filter) continue;
    if (!j.dump_trace) {
      untraceable++;
      continue;
    }
    std::printf("# job experiment=%s series=%s x=%g trial=%d seed=%llu\n",
                e->name, j.series.c_str(), j.x, j.trial,
                static_cast<unsigned long long>(j.seed));
    const std::string stream = j.dump_trace();
    std::fwrite(stream.data(), 1, stream.size(), stdout);
    dumped++;
  }
  if (dumped == 0) {
    std::fprintf(stderr, "natle-bench: no jobs matched%s\n",
                 untraceable > 0 ? " (matching jobs do not support tracing)"
                                 : "");
    return 1;
  }
  if (untraceable > 0) {
    std::fprintf(stderr, "natle-bench: %zu job(s) do not support tracing\n",
                 untraceable);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    printUsage(stderr);
    return 2;
  }
  if (std::strcmp(argv[1], "list") == 0 ||
      std::strcmp(argv[1], "--list") == 0) {
    return cmdList();
  }
  if (std::strcmp(argv[1], "run") == 0) {
    return cmdRun(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "trace") == 0) {
    return cmdTrace(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0) {
    printUsage(stdout);
    return 0;
  }
  std::fprintf(stderr, "natle-bench: unknown command: %s\n", argv[1]);
  printUsage(stderr);
  return 2;
}
