// natle-bench: single CLI over every registered experiment.
//
//   natle-bench list                         # what can run, one line each
//   natle-bench run --all -j8                # everything, 8 worker threads
//   natle-bench run --filter 'fig0?' --full  # glob (or prefix) selection
//
// `run` writes bench_results/<name>.csv + <name>.json per experiment plus a
// manifest.json (git SHA, NATLE_SIM_SCALE, simulated machine shape, per-
// experiment timing) and prints a timing summary table. All output except
// the wall_ms fields is byte-identical for any --jobs value.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <string>
#include <vector>

#include "exp/exp.hpp"
#include "sim/config.hpp"
#include "workload/json.hpp"

using namespace natle;
using natle::workload::BenchOptions;
using natle::workload::JsonWriter;

namespace {

void printUsage(std::FILE* to) {
  std::fputs(
      "usage: natle-bench <command> [options]\n"
      "commands:\n"
      "  list                     list registered experiments\n"
      "  run [options]            run experiments, write CSV/JSON results\n"
      "  trace EXPERIMENT [opts]  dump raw transaction event streams (JSONL)\n"
      "run options:\n"
      "  --all                    run every registered experiment\n"
      "  --filter GLOB            run experiments matching GLOB (* and ?;\n"
      "                           a bare prefix like fig01 also matches);\n"
      "                           repeatable, union of matches\n"
      "  --jobs N, -j N           worker threads (default 1; 0 = all host\n"
      "                           cores). Output is identical for any N.\n"
      "  --full                   denser axes, longer trials, 3 trials/point\n"
      "  --trace                  record transaction events; per-point abort\n"
      "                           attribution (killer matrix, hot lines,\n"
      "                           fallback episodes) lands in the JSON records\n"
      "  --progress               per-data-point completion lines on stderr\n"
      "  --out-dir DIR            result directory (default bench_results)\n"
      "  --help, -h               this text\n"
      "trace options:\n"
      "  --series S               only jobs of series S\n"
      "  --x N                    only jobs at x = N\n"
      "  --trial N                only trial N\n"
      "  --full                   the experiment's --full plan\n"
      "environment:\n"
      "  NATLE_SIM_SCALE=<float>  scale simulated trial length\n",
      to);
}

int cmdList() {
  for (const exp::Experiment* e : exp::Registry::instance().all()) {
    std::printf("%-24s %-12s %s\n", e->name, e->paper_ref, e->description);
  }
  return 0;
}

std::string gitSha() {
  std::string sha = "unknown";
  if (std::FILE* p = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof buf, p) != nullptr) {
      for (char* c = buf; *c != '\0'; ++c) {
        if (*c == '\n') *c = '\0';
      }
      if (buf[0] != '\0') sha = buf;
    }
    ::pclose(p);
  }
  return sha;
}

std::string utcNow() {
  const std::time_t t =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

bool writeFile(const std::filesystem::path& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "natle-bench: cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "natle-bench: short write to %s\n",
                        path.c_str());
  return ok;
}

std::string renderManifest(const BenchOptions& opt, int jobs_requested,
                           const std::vector<exp::ExperimentOutput>& outs,
                           double total_wall_ms) {
  JsonWriter w;
  w.beginObject();
  w.key("tool").value("natle-bench");
  w.key("created_utc").value(utcNow());
  w.key("git_sha").value(gitSha());
  const char* scale_env = std::getenv("NATLE_SIM_SCALE");
  w.key("natle_sim_scale_env").value(scale_env != nullptr ? scale_env : "");
  w.key("sim_scale").value(opt.time_scale);
  w.key("full").value(opt.full);
  w.key("jobs").value(jobs_requested);
  w.key("workers").value(exp::resolveWorkers(jobs_requested));
  w.key("machine");
  workload::appendJson(w, sim::LargeMachine());
  w.key("experiments");
  w.beginArray().newline();
  for (const exp::ExperimentOutput& o : outs) {
    w.beginObject();
    w.key("name").value(o.experiment->name);
    w.key("paper_ref").value(o.experiment->paper_ref);
    w.key("data_points").value(static_cast<uint64_t>(o.n_jobs));
    w.key("csv_rows").value(static_cast<uint64_t>(o.n_records));
    w.key("csv").value(std::string(o.experiment->name) + ".csv");
    w.key("json").value(std::string(o.experiment->name) + ".json");
    w.key("job_wall_ms").value(o.job_wall_ms);
    w.endObject().newline();
  }
  w.endArray();
  w.key("total_wall_ms").value(total_wall_ms);
  w.endObject().newline();
  return w.take();
}

int cmdRun(int argc, char** argv) {
  bool all = false;
  std::vector<std::string> filters;
  BenchOptions opt;
  exp::RunnerOptions ropt;
  std::filesystem::path out_dir = "bench_results";
  for (int i = 0; i < argc; ++i) {
    const char* a = argv[i];
    auto needValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "natle-bench: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--all") == 0) {
      all = true;
    } else if (std::strcmp(a, "--filter") == 0) {
      filters.push_back(needValue(a));
    } else if (std::strcmp(a, "--jobs") == 0 || std::strcmp(a, "-j") == 0 ||
               std::strncmp(a, "--jobs=", 7) == 0 ||
               (std::strncmp(a, "-j", 2) == 0 && a[2] != '\0')) {
      // Accept the make/ninja spellings too: -j8, --jobs=8.
      const char* v = std::strncmp(a, "--jobs=", 7) == 0 ? a + 7
                      : a[1] == 'j' && a[2] != '\0'      ? a + 2
                                                         : needValue(a);
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n < 0 || n > 4096) {
        std::fprintf(stderr, "natle-bench: invalid --jobs value: %s\n", v);
        return 2;
      }
      ropt.jobs = static_cast<int>(n);
    } else if (std::strcmp(a, "--full") == 0) {
      opt.full = true;
    } else if (std::strcmp(a, "--trace") == 0) {
      opt.trace = true;
    } else if (std::strcmp(a, "--progress") == 0) {
      ropt.progress = true;
    } else if (std::strcmp(a, "--out-dir") == 0) {
      out_dir = needValue(a);
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      printUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "natle-bench: unknown argument: %s\n", a);
      printUsage(stderr);
      return 2;
    }
  }
  if (const char* s = std::getenv("NATLE_SIM_SCALE")) {
    if (!BenchOptions::parseScale(s, &opt.time_scale)) {
      std::fprintf(stderr,
                   "natle-bench: invalid NATLE_SIM_SCALE value: \"%s\" "
                   "(want a finite number > 0)\n",
                   s);
      return 2;
    }
  }
  if (!all && filters.empty()) {
    std::fprintf(stderr,
                 "natle-bench: run needs --all or at least one --filter\n");
    return 2;
  }

  // Union of filter matches, name-sorted (Registry returns sorted lists).
  std::vector<const exp::Experiment*> selected;
  if (all) {
    selected = exp::Registry::instance().all();
  } else {
    for (const std::string& f : filters) {
      for (const exp::Experiment* e : exp::Registry::instance().match(f)) {
        bool dup = false;
        for (const exp::Experiment* s : selected) dup |= (s == e);
        if (!dup) selected.push_back(e);
      }
    }
    std::sort(selected.begin(), selected.end(),
              [](const exp::Experiment* a, const exp::Experiment* b) {
                return std::strcmp(a->name, b->name) < 0;
              });
    for (const std::string& f : filters) {
      if (exp::Registry::instance().match(f).empty()) {
        std::fprintf(stderr, "natle-bench: --filter %s matched nothing\n",
                     f.c_str());
        return 1;
      }
    }
  }
  if (selected.empty()) {
    std::fprintf(stderr, "natle-bench: no experiments selected\n");
    return 1;
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "natle-bench: cannot create %s: %s\n",
                 out_dir.c_str(), ec.message().c_str());
    return 1;
  }

  std::fprintf(stderr, "natle-bench: %zu experiment(s), %d worker(s)\n",
               selected.size(), exp::resolveWorkers(ropt.jobs));
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<exp::ExperimentOutput> outs =
      exp::runExperiments(selected, opt, ropt);
  const double total_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  for (const exp::ExperimentOutput& o : outs) {
    if (!writeFile(out_dir / (std::string(o.experiment->name) + ".csv"),
                   o.csv) ||
        !writeFile(out_dir / (std::string(o.experiment->name) + ".json"),
                   o.json)) {
      return 1;
    }
  }
  if (!writeFile(out_dir / "manifest.json",
                 renderManifest(opt, ropt.jobs, outs, total_wall_ms))) {
    return 1;
  }

  std::printf("%-24s %8s %8s %12s\n", "experiment", "points", "rows",
              "job-wall(s)");
  double sum_job_wall = 0;
  for (const exp::ExperimentOutput& o : outs) {
    std::printf("%-24s %8zu %8zu %12.2f\n", o.experiment->name, o.n_jobs,
                o.n_records, o.job_wall_ms / 1e3);
    sum_job_wall += o.job_wall_ms;
  }
  // job-wall / elapsed is average in-flight concurrency, not speedup: on a
  // timeshared core per-job wall times inflate and the ratio stays ~N.
  std::printf("%-24s %8s %8s %12.2f  (elapsed %.2fs, concurrency %.2fx)\n",
              "total", "", "", sum_job_wall / 1e3, total_wall_ms / 1e3,
              total_wall_ms > 0 ? sum_job_wall / total_wall_ms : 0.0);
  std::printf("results: %s\n", out_dir.c_str());
  return 0;
}

// `natle-bench trace <experiment>`: expand the experiment's plan and print
// each selected job's raw event stream, one JSON object per line, separated
// by `# job ...` comment headers. Jobs re-run serially with raw event
// retention; output is deterministic (line ids are ASLR-independent).
int cmdTrace(int argc, char** argv) {
  if (argc < 1 || argv[0][0] == '-') {
    std::fprintf(stderr, "natle-bench: trace needs an experiment name\n");
    return 2;
  }
  const std::string name = argv[0];
  BenchOptions opt;
  std::string series_filter;
  bool have_x = false, have_trial = false;
  double x_filter = 0;
  long trial_filter = 0;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto needValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "natle-bench: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--full") == 0) {
      opt.full = true;
    } else if (std::strcmp(a, "--series") == 0) {
      series_filter = needValue(a);
    } else if (std::strcmp(a, "--x") == 0) {
      x_filter = std::atof(needValue(a));
      have_x = true;
    } else if (std::strcmp(a, "--trial") == 0) {
      trial_filter = std::atol(needValue(a));
      have_trial = true;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      printUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "natle-bench: unknown trace argument: %s\n", a);
      return 2;
    }
  }
  if (const char* s = std::getenv("NATLE_SIM_SCALE")) {
    if (!BenchOptions::parseScale(s, &opt.time_scale)) {
      std::fprintf(stderr, "natle-bench: invalid NATLE_SIM_SCALE value: %s\n",
                   s);
      return 2;
    }
  }
  const exp::Experiment* e = exp::Registry::instance().find(name);
  if (e == nullptr) {
    const auto matches = exp::Registry::instance().match(name);
    if (matches.size() == 1) {
      e = matches[0];
    } else {
      std::fprintf(stderr, "natle-bench: %s experiment: %s\n",
                   matches.empty() ? "unknown" : "ambiguous", name.c_str());
      return 1;
    }
  }
  exp::Plan plan;
  e->plan(opt, plan);
  size_t dumped = 0, untraceable = 0;
  for (const exp::Job& j : plan.jobs) {
    if (!series_filter.empty() && j.series != series_filter) continue;
    if (have_x && j.x != x_filter) continue;
    if (have_trial && j.trial != trial_filter) continue;
    if (!j.dump_trace) {
      untraceable++;
      continue;
    }
    std::printf("# job experiment=%s series=%s x=%g trial=%d seed=%llu\n",
                e->name, j.series.c_str(), j.x, j.trial,
                static_cast<unsigned long long>(j.seed));
    const std::string stream = j.dump_trace();
    std::fwrite(stream.data(), 1, stream.size(), stdout);
    dumped++;
  }
  if (dumped == 0) {
    std::fprintf(stderr, "natle-bench: no jobs matched%s\n",
                 untraceable > 0 ? " (matching jobs do not support tracing)"
                                 : "");
    return 1;
  }
  if (untraceable > 0) {
    std::fprintf(stderr, "natle-bench: %zu job(s) do not support tracing\n",
                 untraceable);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    printUsage(stderr);
    return 2;
  }
  if (std::strcmp(argv[1], "list") == 0 ||
      std::strcmp(argv[1], "--list") == 0) {
    return cmdList();
  }
  if (std::strcmp(argv[1], "run") == 0) {
    return cmdRun(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "trace") == 0) {
    return cmdTrace(argc - 2, argv + 2);
  }
  if (std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0) {
    printUsage(stdout);
    return 0;
  }
  std::fprintf(stderr, "natle-bench: unknown command: %s\n", argv[1]);
  printUsage(stderr);
  return 2;
}
