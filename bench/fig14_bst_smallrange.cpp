// Figure 14: unbalanced BST with a tiny key range [0, 128): now update
// operations do conflict near the (shallow) leaves, TLE becomes susceptible
// to the NUMA effect, and NATLE's profiling switches to one-socket-at-a-time
// mode. Panels: (a) 40% updates, (b) 100% updates.
#include <cstdio>

#include "workload/options.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  emitHeader("fig14_bst_smallrange (y = Mops/s)");
  SetBenchConfig cfg;
  cfg.key_range = 128;
  cfg.ds = DsKind::kLeafBst;
  cfg.ext.max_units = 256;
  cfg.measure_ms = 2.0 * opt.time_scale;
  cfg.warmup_ms = 1.0 * opt.time_scale;
  cfg.trials = opt.full ? 3 : 1;
  for (int upd : {40, 100}) {
    cfg.update_pct = upd;
    for (SyncKind sync : {SyncKind::kTle, SyncKind::kNatle}) {
      cfg.sync = sync;
      char series[64];
      std::snprintf(series, sizeof series, "%s-upd%d", toString(sync), upd);
      for (int n : threadAxis(cfg.machine, opt.full)) {
        cfg.nthreads = n;
        const SetBenchResult r = runSetBench(cfg);
        emitRow(series, n, r.mops);
        std::fprintf(stderr, "%s n=%d mops=%.3f abort=%.3f\n", series, n,
                     r.mops, r.abort_rate);
      }
    }
  }
  return 0;
}
