// Figure 14: unbalanced BST with a tiny key range [0, 128): now update
// operations do conflict near the (shallow) leaves, TLE becomes susceptible
// to the NUMA effect, and NATLE's profiling switches to one-socket-at-a-time
// mode. Panels: (a) 40% updates, (b) 100% updates.
#include <cstdio>
#include <memory>

#include "exp/exp.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

namespace {

void planFig14(const BenchOptions& opt, exp::Plan& plan) {
  auto sweep = std::make_shared<exp::SetSweep>(opt);
  SetBenchConfig cfg;
  cfg.key_range = 128;
  cfg.ds = DsKind::kLeafBst;
  cfg.ext.max_units = 256;
  cfg.measure_ms = 2.0 * opt.time_scale;
  cfg.warmup_ms = 1.0 * opt.time_scale;
  for (int upd : {40, 100}) {
    cfg.update_pct = upd;
    for (SyncKind sync : {SyncKind::kTle, SyncKind::kNatle}) {
      cfg.sync = sync;
      char series[64];
      std::snprintf(series, sizeof series, "%s-upd%d", toString(sync), upd);
      for (int n : threadAxis(cfg.machine, opt.full)) {
        cfg.nthreads = n;
        sweep->point(plan, series, n, cfg);
      }
    }
  }
  plan.emit = [sweep](const std::vector<exp::PointData>& results) {
    std::vector<exp::Record> rows;
    for (const auto& p : sweep->aggregate(results)) {
      rows.push_back({p.series, p.x, p.r.mops});
    }
    return rows;
  };
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    fig14, "fig14_bst_smallrange",
    "Leaf-BST with tiny key range [0,128): NATLE throttles to one socket",
    "Figure 14", "y = Mops/s", planFig14);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("fig14_bst_smallrange", argc, argv);
}
#endif
