// Figure 7: AVL tree vs unbalanced leaf-oriented BST, 20% updates, key
// range [0, 2048). Leaf-oriented updates only touch lines near the leaves,
// so the tree top stays cached on both sockets and the structure scales
// across sockets where the AVL tree does not.
#include <cstdio>

#include "workload/options.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  emitHeader("fig07_avl_vs_leafbst (y = Mops/s)");
  SetBenchConfig cfg;
  cfg.key_range = 2048;
  cfg.update_pct = 20;
  cfg.sync = SyncKind::kTle;
  cfg.measure_ms = 2.0 * opt.time_scale;
  cfg.warmup_ms = 0.8 * opt.time_scale;
  cfg.trials = opt.full ? 3 : 1;
  for (DsKind ds : {DsKind::kAvl, DsKind::kLeafBst}) {
    cfg.ds = ds;
    const char* series = ds == DsKind::kAvl ? "AVL" : "leaf-BST";
    for (int n : threadAxis(cfg.machine, opt.full)) {
      cfg.nthreads = n;
      const SetBenchResult r = runSetBench(cfg);
      emitRow(series, n, r.mops);
      std::fprintf(stderr, "%s n=%d mops=%.3f abort=%.3f\n", series, n, r.mops,
                   r.abort_rate);
    }
  }
  return 0;
}
