// Figure 7: AVL tree vs unbalanced leaf-oriented BST, 20% updates, key
// range [0, 2048). Leaf-oriented updates only touch lines near the leaves,
// so the tree top stays cached on both sockets and the structure scales
// across sockets where the AVL tree does not.
#include <memory>

#include "exp/exp.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

namespace {

void planFig07(const BenchOptions& opt, exp::Plan& plan) {
  auto sweep = std::make_shared<exp::SetSweep>(opt);
  SetBenchConfig cfg;
  cfg.key_range = 2048;
  cfg.update_pct = 20;
  cfg.sync = SyncKind::kTle;
  cfg.measure_ms = 2.0 * opt.time_scale;
  cfg.warmup_ms = 0.8 * opt.time_scale;
  for (DsKind ds : {DsKind::kAvl, DsKind::kLeafBst}) {
    cfg.ds = ds;
    const char* series = ds == DsKind::kAvl ? "AVL" : "leaf-BST";
    for (int n : threadAxis(cfg.machine, opt.full)) {
      cfg.nthreads = n;
      sweep->point(plan, series, n, cfg);
    }
  }
  plan.emit = [sweep](const std::vector<exp::PointData>& results) {
    std::vector<exp::Record> rows;
    for (const auto& p : sweep->aggregate(results)) {
      rows.push_back({p.series, p.x, p.r.mops});
    }
    return rows;
  };
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    fig07, "fig07_avl_vs_leafbst",
    "AVL vs leaf-oriented BST, 20% updates: leaf updates dodge the NUMA cliff",
    "Figure 7", "y = Mops/s", planFig07);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("fig07_avl_vs_leafbst", argc, argv);
}
#endif
