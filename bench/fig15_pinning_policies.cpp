// Figure 15: alternative thread-placement policies for the AVL tree with
// 100% updates, key range [0, 2048), external work. Left: threads pinned to
// alternating sockets. Right: no pinning (the OS placement model spreads
// load and occasionally migrates threads). Both place threads on the second
// socket from the start, so NATLE's benefit appears at low thread counts.
#include <cstdio>

#include "workload/options.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  emitHeader("fig15_pinning_policies (y = Mops/s)");
  SetBenchConfig cfg;
  cfg.key_range = 2048;
  cfg.update_pct = 100;
  cfg.ext.max_units = 256;
  cfg.measure_ms = 2.0 * opt.time_scale;
  cfg.warmup_ms = 1.0 * opt.time_scale;
  cfg.trials = opt.full ? 3 : 1;
  for (sim::PinPolicy pin :
       {sim::PinPolicy::kAlternateSockets, sim::PinPolicy::kUnpinned}) {
    cfg.pin = pin;
    for (SyncKind sync : {SyncKind::kTle, SyncKind::kNatle}) {
      cfg.sync = sync;
      char series[64];
      std::snprintf(series, sizeof series, "%s-%s", toString(pin),
                    toString(sync));
      for (int n : threadAxis(cfg.machine, opt.full)) {
        cfg.nthreads = n;
        const SetBenchResult r = runSetBench(cfg);
        emitRow(series, n, r.mops);
        std::fprintf(stderr, "%s n=%d mops=%.3f abort=%.3f\n", series, n,
                     r.mops, r.abort_rate);
      }
    }
  }
  return 0;
}
