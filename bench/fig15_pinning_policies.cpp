// Figure 15: alternative thread-placement policies for the AVL tree with
// 100% updates, key range [0, 2048), external work. Left: threads pinned to
// alternating sockets. Right: no pinning (the OS placement model spreads
// load and occasionally migrates threads). Both place threads on the second
// socket from the start, so NATLE's benefit appears at low thread counts.
#include <cstdio>
#include <memory>

#include "exp/exp.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

namespace {

void planFig15(const BenchOptions& opt, exp::Plan& plan) {
  auto sweep = std::make_shared<exp::SetSweep>(opt);
  SetBenchConfig cfg;
  cfg.key_range = 2048;
  cfg.update_pct = 100;
  cfg.ext.max_units = 256;
  cfg.measure_ms = 2.0 * opt.time_scale;
  cfg.warmup_ms = 1.0 * opt.time_scale;
  for (sim::PinPolicy pin :
       {sim::PinPolicy::kAlternateSockets, sim::PinPolicy::kUnpinned}) {
    cfg.pin = pin;
    for (SyncKind sync : {SyncKind::kTle, SyncKind::kNatle}) {
      cfg.sync = sync;
      char series[64];
      std::snprintf(series, sizeof series, "%s-%s", toString(pin),
                    toString(sync));
      for (int n : threadAxis(cfg.machine, opt.full)) {
        cfg.nthreads = n;
        sweep->point(plan, series, n, cfg);
      }
    }
  }
  plan.emit = [sweep](const std::vector<exp::PointData>& results) {
    std::vector<exp::Record> rows;
    for (const auto& p : sweep->aggregate(results)) {
      rows.push_back({p.series, p.x, p.r.mops});
    }
    return rows;
  };
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    fig15, "fig15_pinning_policies",
    "Alternate-socket and unpinned placement: NATLE's benefit moves early",
    "Figure 15", "y = Mops/s", planFig15);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("fig15_pinning_policies", argc, argv);
}
#endif
