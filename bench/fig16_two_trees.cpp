// Figure 16: two AVL trees protected by two different locks. Half of the
// threads perform only updates on tree A; the other half perform only
// searches (plus equalizing external work) on tree B. NATLE profiles and
// throttles each lock independently: the update lock alternates sockets
// while the search lock keeps using both — so the combined throughput keeps
// scaling past 36 threads where TLE collapses.
#include <cstdio>
#include <memory>

#include "ds/avl.hpp"
#include "sync/natle.hpp"
#include "sync/tle.hpp"
#include "workload/options.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::htm;
using namespace natle::workload;

namespace {

struct TwoTreesResult {
  double update_mops = 0;
  double search_mops = 0;
};

TwoTreesResult runTwoTrees(int nthreads, bool use_natle, double measure_ms,
                           double warmup_ms, uint64_t seed) {
  sim::MachineConfig mc = sim::LargeMachine();
  mc.seed = seed;
  Env env(mc);
  ds::AvlTree tree_upd(env);
  ds::AvlTree tree_srch(env);
  constexpr int64_t kRange = 2048;
  {
    auto& sc = env.setupCtx();
    sim::Rng pre(seed ^ 0xfeed);
    std::vector<int64_t> keys(kRange);
    for (int64_t k = 0; k < kRange; ++k) keys[k] = k;
    for (size_t i = keys.size(); i > 1; --i) {
      std::swap(keys[i - 1], keys[pre.below(i)]);
    }
    for (size_t i = 0; i < keys.size() / 2; ++i) {
      tree_upd.insert(sc, keys[i]);
      tree_srch.insert(sc, keys[i]);
    }
  }
  sync::TleLock tle_upd(env), tle_srch(env);
  sync::NatleLock natle_upd(env), natle_srch(env);
  natle_upd.setActiveRows(128);
  natle_srch.setActiveRows(128);

  const uint64_t t_end = mc.msToCycles(warmup_ms + measure_ms);
  env.setStatsStart(mc.msToCycles(warmup_ms));
  std::vector<uint64_t> ops(nthreads, 0);
  std::vector<int> group(nthreads, 0);
  for (int i = 0; i < nthreads; ++i) {
    // Alternate groups so each socket block is split equally between them.
    group[i] = i % 2;
    const auto slot =
        sim::placeThread(mc, sim::PinPolicy::kFillSocketFirst, i);
    env.spawnWorker(
        [&, i, t_end](ThreadCtx& ctx) {
          auto& rng = ctx.rng();
          while (ctx.nowCycles() < t_end) {
            const int64_t key = static_cast<int64_t>(rng.below(kRange));
            const bool count = ctx.nowCycles() >= ctx.env().statsStart();
            if (group[i] == 0) {
              const bool ins = (rng.next() & 1) != 0;
              auto cs = [&] {
                if (ins) {
                  tree_upd.insert(ctx, key);
                } else {
                  tree_upd.erase(ctx, key);
                }
              };
              if (use_natle) {
                natle_upd.execute(ctx, cs);
              } else {
                tle_upd.execute(ctx, cs);
              }
            } else {
              auto cs = [&] { tree_srch.contains(ctx, key); };
              if (use_natle) {
                natle_srch.execute(ctx, cs);
              } else {
                tle_srch.execute(ctx, cs);
              }
              // Equalize with the update group: searches are faster, so add
              // external work (as the paper does).
              ctx.work(300);
            }
            if (count) ops[i]++;
            ctx.work(140);
          }
        },
        slot);
  }
  env.run();
  TwoTreesResult r;
  for (int i = 0; i < nthreads; ++i) {
    const double mops =
        static_cast<double>(ops[i]) / (measure_ms * 1e-3) / 1e6;
    (group[i] == 0 ? r.update_mops : r.search_mops) += mops;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  emitHeader("fig16_two_trees (y = Mops/s)");
  const double measure = 2.0 * opt.time_scale;
  const double warmup = 1.0 * opt.time_scale;
  for (bool use_natle : {false, true}) {
    const char* alg = use_natle ? "natle" : "tle";
    for (int n : threadAxis(sim::LargeMachine(), opt.full)) {
      if (n % 2 != 0) continue;  // the paper runs even thread counts only
      const TwoTreesResult r =
          runTwoTrees(n, use_natle, measure, warmup, 1 + n);
      emitRow(std::string(alg) + "-combined", n, r.update_mops + r.search_mops);
      emitRow(std::string(alg) + "-updates-tree", n, r.update_mops);
      emitRow(std::string(alg) + "-search-tree", n, r.search_mops);
      std::fprintf(stderr, "%s n=%d upd=%.2f srch=%.2f\n", alg, n,
                   r.update_mops, r.search_mops);
    }
  }
  return 0;
}
