// Figure 16: two AVL trees protected by two different locks. Half of the
// threads perform only updates on tree A; the other half perform only
// searches (plus equalizing external work) on tree B. NATLE profiles and
// throttles each lock independently: the update lock alternates sockets
// while the search lock keeps using both — so the combined throughput keeps
// scaling past 36 threads where TLE collapses.
#include <memory>
#include <string>
#include <vector>

#include "ds/avl.hpp"
#include "exp/exp.hpp"
#include "sync/natle.hpp"
#include "sync/tle.hpp"
#include "workload/json.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::htm;
using namespace natle::workload;

namespace {

struct TwoTreesResult {
  double update_mops = 0;
  double search_mops = 0;
};

TwoTreesResult runTwoTrees(int nthreads, bool use_natle, double measure_ms,
                           double warmup_ms, uint64_t seed) {
  sim::MachineConfig mc = sim::LargeMachine();
  mc.seed = seed;
  Env env(mc);
  ds::AvlTree tree_upd(env);
  ds::AvlTree tree_srch(env);
  constexpr int64_t kRange = 2048;
  {
    auto& sc = env.setupCtx();
    sim::Rng pre(seed ^ 0xfeed);
    std::vector<int64_t> keys(kRange);
    for (int64_t k = 0; k < kRange; ++k) keys[k] = k;
    for (size_t i = keys.size(); i > 1; --i) {
      std::swap(keys[i - 1], keys[pre.below(i)]);
    }
    for (size_t i = 0; i < keys.size() / 2; ++i) {
      tree_upd.insert(sc, keys[i]);
      tree_srch.insert(sc, keys[i]);
    }
  }
  sync::TleLock tle_upd(env), tle_srch(env);
  sync::NatleLock natle_upd(env), natle_srch(env);
  natle_upd.setActiveRows(128);
  natle_srch.setActiveRows(128);

  const uint64_t t_end = mc.msToCycles(warmup_ms + measure_ms);
  env.setStatsStart(mc.msToCycles(warmup_ms));
  std::vector<uint64_t> ops(nthreads, 0);
  std::vector<int> group(nthreads, 0);
  for (int i = 0; i < nthreads; ++i) {
    // Alternate groups so each socket block is split equally between them.
    group[i] = i % 2;
    const auto slot =
        sim::placeThread(mc, sim::PinPolicy::kFillSocketFirst, i);
    env.spawnWorker(
        [&, i, t_end](ThreadCtx& ctx) {
          auto& rng = ctx.rng();
          while (ctx.nowCycles() < t_end) {
            const int64_t key = static_cast<int64_t>(rng.below(kRange));
            const bool count = ctx.nowCycles() >= ctx.env().statsStart();
            if (group[i] == 0) {
              const bool ins = (rng.next() & 1) != 0;
              auto cs = [&] {
                if (ins) {
                  tree_upd.insert(ctx, key);
                } else {
                  tree_upd.erase(ctx, key);
                }
              };
              if (use_natle) {
                natle_upd.execute(ctx, cs);
              } else {
                tle_upd.execute(ctx, cs);
              }
            } else {
              auto cs = [&] { tree_srch.contains(ctx, key); };
              if (use_natle) {
                natle_srch.execute(ctx, cs);
              } else {
                tle_srch.execute(ctx, cs);
              }
              // Equalize with the update group: searches are faster, so add
              // external work (as the paper does).
              ctx.work(300);
            }
            if (count) ops[i]++;
            ctx.work(140);
          }
        },
        slot);
  }
  env.run();
  TwoTreesResult r;
  for (int i = 0; i < nthreads; ++i) {
    const double mops =
        static_cast<double>(ops[i]) / (measure_ms * 1e-3) / 1e6;
    (group[i] == 0 ? r.update_mops : r.search_mops) += mops;
  }
  return r;
}

void planFig16(const BenchOptions& opt, exp::Plan& plan) {
  const double measure = 2.0 * opt.time_scale;
  const double warmup = 1.0 * opt.time_scale;
  auto labels = std::make_shared<std::vector<std::pair<std::string, double>>>();
  for (bool use_natle : {false, true}) {
    const char* alg = use_natle ? "natle" : "tle";
    for (int n : threadAxis(sim::LargeMachine(), opt.full)) {
      if (n % 2 != 0) continue;  // the paper runs even thread counts only
      const uint64_t seed = 1 + static_cast<uint64_t>(n);
      exp::Job j;
      j.series = alg;
      j.x = n;
      j.seed = seed;
      JsonWriter w;
      w.beginObject();
      w.key("nthreads").value(n);
      w.key("natle").value(use_natle);
      w.key("key_range").value(int64_t{2048});
      w.key("measure_ms").value(measure);
      w.key("warmup_ms").value(warmup);
      w.endObject();
      j.config_json = w.take();
      j.run = [n, use_natle, measure, warmup, seed] {
        const TwoTreesResult r =
            runTwoTrees(n, use_natle, measure, warmup, seed);
        exp::PointData p;
        p.value = r.update_mops + r.search_mops;
        p.aux = {{"update_mops", r.update_mops},
                 {"search_mops", r.search_mops}};
        return p;
      };
      labels->push_back({alg, static_cast<double>(n)});
      plan.jobs.push_back(std::move(j));
    }
  }
  plan.emit = [labels](const std::vector<exp::PointData>& results) {
    std::vector<exp::Record> rows;
    for (size_t i = 0; i < results.size(); ++i) {
      const auto& [alg, n] = (*labels)[i];
      const double upd = results[i].aux[0].second;
      const double srch = results[i].aux[1].second;
      rows.push_back({alg + "-combined", n, upd + srch});
      rows.push_back({alg + "-updates-tree", n, upd});
      rows.push_back({alg + "-search-tree", n, srch});
    }
    return rows;
  };
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    fig16, "fig16_two_trees",
    "Two locks, two trees: NATLE throttles each lock independently",
    "Figure 16", "y = Mops/s", planFig16);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("fig16_two_trees", argc, argv);
}
#endif
