// Figure 18: the ccTSA sequence assembler.
//   (a) total runtime with the default pinning policy;
//   (b) the fraction of each quantum NATLE allocates to socket 0 in a
//       72-thread run, per cycle;
//   (c) total runtime without pinning (NATLE's benefit appears much
//       earlier because the OS spreads threads across sockets).
#include <cstdio>

#include "apps/cctsa/cctsa.hpp"
#include "workload/options.hpp"

using namespace natle;
using namespace natle::apps::cctsa;
using namespace natle::workload;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  emitHeader("fig18_cctsa (a,c: y = runtime sim-ms; b: y = socket-0 share)");
  CctsaConfig cfg;
  cfg.scale = 1.0 * opt.time_scale;
  const std::vector<int> axis =
      opt.full ? std::vector<int>{1, 2, 4, 8, 12, 18, 24, 30, 36, 40, 48, 54,
                                  63, 72}
               : std::vector<int>{1, 4, 12, 18, 36, 40, 48, 72};
  for (sim::PinPolicy pin :
       {sim::PinPolicy::kFillSocketFirst, sim::PinPolicy::kUnpinned}) {
    cfg.pin = pin;
    const char* panel =
        pin == sim::PinPolicy::kFillSocketFirst ? "pinned" : "unpinned";
    for (bool natle : {false, true}) {
      cfg.natle = natle;
      for (int n : axis) {
        cfg.nthreads = n;
        cfg.seed = 18 + n;
        const CctsaResult r = runCctsa(cfg);
        char series[64];
        std::snprintf(series, sizeof series, "%s-%s", panel,
                      natle ? "natle" : "tle");
        emitRow(series, n, r.sim_ms);
        std::fprintf(stderr, "%s n=%d ms=%.3f kmers=%llu links=%llu\n", series,
                     n, r.sim_ms,
                     static_cast<unsigned long long>(r.kmers_indexed),
                     static_cast<unsigned long long>(r.contig_links));

      }
    }
  }
  // Panel (b): socket-0 time share per NATLE cycle at 72 threads. A
  // dedicated longer run so the history spans many profiling cycles.
  {
    CctsaConfig bcfg;
    bcfg.scale = 6.0 * opt.time_scale;
    bcfg.nthreads = 72;
    bcfg.natle = true;
    bcfg.seed = 181;
    const CctsaResult r = runCctsa(bcfg);
    for (const auto& d : r.natle_history) {
      emitRow("socket0-share-72t", static_cast<double>(d.cycle_index),
              d.socket0_share);
    }
    std::fprintf(stderr, "panel-b cycles=%zu\n", r.natle_history.size());
  }
  return 0;
}
