// Figure 18: the ccTSA sequence assembler.
//   (a) total runtime with the default pinning policy;
//   (b) the fraction of each quantum NATLE allocates to socket 0 in a
//       72-thread run, per cycle;
//   (c) total runtime without pinning (NATLE's benefit appears much
//       earlier because the OS spreads threads across sockets).
#include <cstdio>
#include <vector>

#include "apps/cctsa/cctsa.hpp"
#include "exp/exp.hpp"
#include "workload/json.hpp"

using namespace natle;
using namespace natle::apps::cctsa;
using namespace natle::workload;

namespace {

std::string cctsaConfigJson(const CctsaConfig& cfg) {
  JsonWriter w;
  w.beginObject();
  w.key("nthreads").value(cfg.nthreads);
  w.key("natle").value(cfg.natle);
  w.key("pin").value(sim::toString(cfg.pin));
  w.key("scale").value(cfg.scale);
  w.key("seed").value(cfg.seed);
  w.endObject();
  return w.take();
}

void planFig18(const BenchOptions& opt, exp::Plan& plan) {
  auto labels = std::make_shared<std::vector<std::pair<std::string, double>>>();
  const std::vector<int> axis =
      opt.full ? std::vector<int>{1, 2, 4, 8, 12, 18, 24, 30, 36, 40, 48, 54,
                                  63, 72}
               : std::vector<int>{1, 4, 12, 18, 36, 40, 48, 72};
  for (sim::PinPolicy pin :
       {sim::PinPolicy::kFillSocketFirst, sim::PinPolicy::kUnpinned}) {
    const char* panel =
        pin == sim::PinPolicy::kFillSocketFirst ? "pinned" : "unpinned";
    for (bool natle : {false, true}) {
      for (int n : axis) {
        CctsaConfig cfg;
        cfg.scale = 1.0 * opt.time_scale;
        cfg.pin = pin;
        cfg.natle = natle;
        cfg.nthreads = n;
        cfg.seed = 18 + static_cast<uint64_t>(n);
        char series[64];
        std::snprintf(series, sizeof series, "%s-%s", panel,
                      natle ? "natle" : "tle");
        exp::Job j;
        j.series = series;
        j.x = n;
        j.seed = cfg.seed;
        j.config_json = cctsaConfigJson(cfg);
        j.run = [cfg] {
          const CctsaResult r = runCctsa(cfg);
          exp::PointData p;
          p.value = r.sim_ms;
          p.aux = {{"kmers_indexed", static_cast<double>(r.kmers_indexed)},
                   {"contig_links", static_cast<double>(r.contig_links)}};
          return p;
        };
        labels->push_back({series, static_cast<double>(n)});
        plan.jobs.push_back(std::move(j));
      }
    }
  }
  // Panel (b): socket-0 time share per NATLE cycle at 72 threads. A
  // dedicated longer run so the history spans many profiling cycles.
  {
    CctsaConfig bcfg;
    bcfg.scale = 6.0 * opt.time_scale;
    bcfg.nthreads = 72;
    bcfg.natle = true;
    bcfg.seed = 181;
    exp::Job j;
    j.series = "socket0-share-72t";
    j.x = 0;
    j.seed = bcfg.seed;
    j.config_json = cctsaConfigJson(bcfg);
    j.run = [bcfg] {
      const CctsaResult r = runCctsa(bcfg);
      exp::PointData p;
      p.value = r.sim_ms;
      for (const auto& d : r.natle_history) {
        p.curve.push_back(
            {static_cast<double>(d.cycle_index), d.socket0_share});
      }
      return p;
    };
    plan.jobs.push_back(std::move(j));
  }
  plan.emit = [labels](const std::vector<exp::PointData>& results) {
    std::vector<exp::Record> rows;
    // Panels (a)/(c): one row per runtime job; panel (b) is the final job's
    // history curve, expanded to one row per NATLE cycle.
    for (size_t i = 0; i < labels->size(); ++i) {
      rows.push_back({(*labels)[i].first, (*labels)[i].second,
                      results[i].value});
    }
    for (const auto& [cycle, share] : results.back().curve) {
      rows.push_back({"socket0-share-72t", cycle, share});
    }
    return rows;
  };
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    fig18, "fig18_cctsa",
    "ccTSA assembler runtime plus NATLE per-cycle socket-0 share",
    "Figure 18", "a,c: y = runtime sim-ms; b: y = socket-0 share", planFig18);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("fig18_cctsa", argc, argv);
}
#endif
