// Multi-tenant interference (traffic engine + abort attribution): three
// request classes — cheap point ops, long range scans, and bulk loads —
// share one AVL tree, under both client models. Open loop shows how much a
// bulk tenant's write sets inflate the point tenant's tail; closed loop
// shows the same mix when offered load adapts to service speed. Tracing is
// forced on so the per-class blame matrix (which tenant's transactions kill
// which victim's) lands in the attribution block of every record.
#include <memory>
#include <string>
#include <vector>

#include "exp/exp.hpp"
#include "traffic/plan.hpp"

using namespace natle;
using workload::BenchOptions;

namespace {

double auxVal(const exp::PointData& p, const std::string& key) {
  for (const auto& [k, v] : p.aux) {
    if (k == key) return v;
  }
  return 0;
}

void planServiceMultitenant(const BenchOptions& opt, exp::Plan& plan) {
  // Force per-event tracing: the point of this experiment is the per-class
  // abort blame, which only exists when the tracer runs.
  BenchOptions topt = opt;
  topt.trace = true;
  auto sweep = std::make_shared<traffic::ServiceSweep>(topt);

  traffic::ServiceConfig base;
  base.key_range = 65536;
  base.ds = workload::DsKind::kAvl;
  base.warmup_ms = 0.5 * opt.time_scale;
  base.measure_ms = 2.0 * opt.time_scale;

  traffic::ClassSpec point;
  point.name = "point";
  point.kind = traffic::RequestKind::kPoint;
  point.arrival.kind = traffic::ArrivalKind::kPoisson;
  point.arrival.rate = 10000;
  point.clients = 4;
  point.update_pct = 50;
  point.slo_us = 100;

  traffic::ClassSpec scan;
  scan.name = "scan";
  scan.kind = traffic::RequestKind::kScan;
  scan.arrival.kind = traffic::ArrivalKind::kPoisson;
  scan.arrival.rate = 300;
  scan.clients = 1;
  scan.scan_len = 64;
  scan.slo_us = 400;

  traffic::ClassSpec bulk;
  bulk.name = "bulk";
  bulk.kind = traffic::RequestKind::kBulk;
  bulk.arrival.kind = traffic::ArrivalKind::kBurst;
  bulk.arrival.rate = 40;
  bulk.arrival.on_ms = 0.25;
  bulk.arrival.off_ms = 0.75;
  bulk.clients = 1;
  bulk.bulk_n = 24;
  bulk.slo_us = 1000;

  base.classes = {point, scan, bulk};

  std::vector<int> threads = {18, 36, 72};
  if (opt.full) threads = {18, 36, 54, 72};

  for (traffic::ClientModel model :
       {traffic::ClientModel::kOpen, traffic::ClientModel::kClosed}) {
    for (workload::SyncKind sync :
         {workload::SyncKind::kTle, workload::SyncKind::kNatle}) {
      for (int n : threads) {
        traffic::ServiceConfig cfg = base;
        cfg.model = model;
        cfg.sync = sync;
        cfg.nthreads = n;
        const std::string series = std::string(workload::toString(sync)) +
                                   "-" + traffic::toString(model);
        sweep->point(plan, series, n, cfg);
      }
    }
  }

  plan.emit = [sweep](const std::vector<exp::PointData>& results) {
    std::vector<exp::Record> rows;
    for (const auto& e : sweep->points()) {
      const exp::PointData& p = results.at(e.job);
      if (p.status != exp::PointStatus::kOk) continue;
      rows.push_back({e.series, e.x, p.value});
      for (const char* cls : {"point", "scan", "bulk"}) {
        rows.push_back({e.series + "-" + cls + "-p99", e.x,
                        auxVal(p, std::string(cls) + "_p99_us")});
        rows.push_back({e.series + "-" + cls + "-slo-violations", e.x,
                        auxVal(p, std::string(cls) + "_slo_violations")});
      }
      if (p.has_attribution) {
        // Victim-side blame: how many aborts each tenant class suffered.
        const char* names[] = {"point", "scan", "bulk"};
        for (const auto& [cls, aborts] : p.attribution.victimAbortsByClass()) {
          if (cls < 0 || cls > 2) continue;
          rows.push_back({e.series + "-" + names[cls] + "-victim-aborts", e.x,
                          static_cast<double>(aborts)});
        }
      }
    }
    return rows;
  };
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    service_multitenant, "service_multitenant",
    "point/scan/bulk tenants sharing one AVL: per-class tails and abort blame",
    "new (service)",
    "y = total completed krps; -<class>-p99 = per-tenant p99 (us); "
    "-<class>-slo-violations = requests over that tenant's SLO; "
    "-<class>-victim-aborts = HTM aborts suffered by that tenant (traced)",
    planServiceMultitenant);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("service_multitenant", argc, argv);
}
#endif
