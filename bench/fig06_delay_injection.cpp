// Figure 6: the hypothesis check. 36 threads, all on one socket, AVL tree
// with key range [0, 131072), 100% updates; an artificial delay is inserted
// just before committing each transaction (the paper varies a spin loop up
// to 10K iterations, stretching transactions from ~61ns to ~43us). With
// enough delay the abort rate jumps and becomes conflict-dominated — the
// same signature as adding a second socket, supporting the widened
// window-of-contention hypothesis.
#include <cstdio>

#include "workload/options.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  emitHeader("fig06_delay_injection (x = delay loop iterations)");
  SetBenchConfig cfg;
  cfg.key_range = 131072;
  cfg.update_pct = 100;
  cfg.sync = SyncKind::kTle;
  cfg.nthreads = 36;  // single socket under the default pinning
  cfg.measure_ms = 2.0 * opt.time_scale;
  cfg.warmup_ms = 0.8 * opt.time_scale;
  cfg.trials = opt.full ? 3 : 1;
  // ~9 cycles per delay-loop iteration (small constant number of
  // instructions, per the paper's footnote).
  constexpr uint64_t kCyclesPerIter = 9;
  for (uint64_t iters : {0ull, 10ull, 30ull, 100ull, 300ull, 1000ull, 3000ull,
                         10000ull}) {
    cfg.tle.precommit_delay = iters * kCyclesPerIter;
    const SetBenchResult r = runSetBench(cfg);
    emitRow("abort-rate", static_cast<double>(iters), r.abort_rate);
    emitRow("conflict-fraction", static_cast<double>(iters),
            r.conflict_abort_fraction);
    std::fprintf(stderr, "delay=%llu abort=%.3f conflict_frac=%.3f mops=%.3f\n",
                 static_cast<unsigned long long>(iters), r.abort_rate,
                 r.conflict_abort_fraction, r.mops);
  }
  return 0;
}
