// Figure 6: the hypothesis check. 36 threads, all on one socket, AVL tree
// with key range [0, 131072), 100% updates; an artificial delay is inserted
// just before committing each transaction (the paper varies a spin loop up
// to 10K iterations, stretching transactions from ~61ns to ~43us). With
// enough delay the abort rate jumps and becomes conflict-dominated — the
// same signature as adding a second socket, supporting the widened
// window-of-contention hypothesis.
#include <memory>

#include "exp/exp.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

namespace {

void planFig06(const BenchOptions& opt, exp::Plan& plan) {
  auto sweep = std::make_shared<exp::SetSweep>(opt);
  SetBenchConfig cfg;
  cfg.key_range = 131072;
  cfg.update_pct = 100;
  cfg.sync = SyncKind::kTle;
  cfg.nthreads = 36;  // single socket under the default pinning
  cfg.measure_ms = 2.0 * opt.time_scale;
  cfg.warmup_ms = 0.8 * opt.time_scale;
  // ~9 cycles per delay-loop iteration (small constant number of
  // instructions, per the paper's footnote).
  constexpr uint64_t kCyclesPerIter = 9;
  for (uint64_t iters :
       {0ull, 10ull, 30ull, 100ull, 300ull, 1000ull, 3000ull, 10000ull}) {
    cfg.tle.precommit_delay = iters * kCyclesPerIter;
    sweep->point(plan, "delay", static_cast<double>(iters), cfg);
  }
  plan.emit = [sweep](const std::vector<exp::PointData>& results) {
    std::vector<exp::Record> rows;
    for (const auto& p : sweep->aggregate(results)) {
      rows.push_back({"abort-rate", p.x, p.r.abort_rate});
      rows.push_back({"conflict-fraction", p.x, p.r.conflict_abort_fraction});
    }
    return rows;
  };
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    fig06, "fig06_delay_injection",
    "36 threads on one socket, pre-commit delay sweep (hypothesis check)",
    "Figure 6", "x = delay loop iterations", planFig06);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("fig06_delay_injection", argc, argv);
}
#endif
