// Figure 1: AVL tree, 100% updates, key range [0, 2048), TLE-20.
// Left panel: the large two-socket machine (speedup collapses as soon as a
// thread runs on the second socket). Right panel: the small single-socket
// machine (scales to saturation).
#include <cstdio>

#include "workload/options.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

namespace {

void runMachine(const char* series, const sim::MachineConfig& mc,
                const BenchOptions& opt) {
  SetBenchConfig cfg;
  cfg.machine = mc;
  cfg.key_range = 2048;
  cfg.update_pct = 100;
  cfg.sync = SyncKind::kTle;
  cfg.measure_ms = 2.5 * opt.time_scale;
  cfg.warmup_ms = 1.0 * opt.time_scale;
  cfg.trials = opt.full ? 3 : 1;

  double base = 0;
  for (int n : threadAxis(mc, opt.full)) {
    cfg.nthreads = n;
    const SetBenchResult r = runSetBench(cfg);
    if (n == 1) base = r.mops;
    emitRow(series, n, base > 0 ? r.mops / base : 0);
    std::fprintf(stderr, "%s n=%d mops=%.3f speedup=%.2f abort=%.3f\n", series,
                 n, r.mops, base > 0 ? r.mops / base : 0, r.abort_rate);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  emitHeader("fig01_avl_two_machines (y = speedup over 1 thread)");
  runMachine("large-tle20", sim::LargeMachine(), opt);
  runMachine("small-tle20", sim::SmallMachine(), opt);
  return 0;
}
