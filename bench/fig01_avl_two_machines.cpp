// Figure 1: AVL tree, 100% updates, key range [0, 2048), TLE-20.
// Left panel: the large two-socket machine (speedup collapses as soon as a
// thread runs on the second socket). Right panel: the small single-socket
// machine (scales to saturation).
#include <memory>
#include <utility>

#include "exp/exp.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

namespace {

void planFig01(const BenchOptions& opt, exp::Plan& plan) {
  auto sweep = std::make_shared<exp::SetSweep>(opt);
  const std::pair<const char*, sim::MachineConfig> machines[] = {
      {"large-tle20", sim::LargeMachine()},
      {"small-tle20", sim::SmallMachine()},
  };
  for (const auto& [series, mc] : machines) {
    SetBenchConfig cfg;
    cfg.machine = mc;
    cfg.key_range = 2048;
    cfg.update_pct = 100;
    cfg.sync = SyncKind::kTle;
    cfg.measure_ms = 2.5 * opt.time_scale;
    cfg.warmup_ms = 1.0 * opt.time_scale;
    for (int n : threadAxis(mc, opt.full)) {
      cfg.nthreads = n;
      sweep->point(plan, series, n, cfg);
    }
  }
  plan.emit = [sweep](const std::vector<exp::PointData>& results) {
    std::vector<exp::Record> rows;
    // Each series is normalized to its own 1-thread point (the first x).
    std::string cur;
    double base = 0;
    for (const auto& p : sweep->aggregate(results)) {
      if (p.series != cur) {
        cur = p.series;
        base = p.r.mops;
      }
      rows.push_back({p.series, p.x, base > 0 ? p.r.mops / base : 0});
    }
    return rows;
  };
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    fig01, "fig01_avl_two_machines",
    "AVL, 100% updates, keys [0,2048), TLE-20: speedup on both machines",
    "Figure 1", "y = speedup over 1 thread", planFig01);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("fig01_avl_two_machines", argc, argv);
}
#endif
