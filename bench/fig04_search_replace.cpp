// Figure 4: search-and-replace on an AVL tree with key range [0, 4096),
// TLE vs no synchronization. The operation is semantically a no-op write, so
// it needs no synchronization — comparing the two isolates how much HTM
// amplifies NUMA effects (the paper: no-sync loses 26% from 36->72 threads,
// TLE loses 75%).
#include <memory>

#include "exp/exp.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

namespace {

void planFig04(const BenchOptions& opt, exp::Plan& plan) {
  auto sweep = std::make_shared<exp::SetSweep>(opt);
  SetBenchConfig cfg;
  cfg.key_range = 4096;
  cfg.search_replace = true;
  cfg.measure_ms = 2.0 * opt.time_scale;
  cfg.warmup_ms = 0.8 * opt.time_scale;
  for (SyncKind sync : {SyncKind::kTle, SyncKind::kNone}) {
    cfg.sync = sync;
    const char* series = sync == SyncKind::kTle ? "TLE" : "no-sync";
    for (int n : threadAxis(cfg.machine, opt.full)) {
      cfg.nthreads = n;
      sweep->point(plan, series, n, cfg);
    }
  }
  plan.emit = [sweep](const std::vector<exp::PointData>& results) {
    std::vector<exp::Record> rows;
    std::string cur;
    double base = 0;
    for (const auto& p : sweep->aggregate(results)) {
      if (p.series != cur) {
        cur = p.series;
        base = p.r.mops;
      }
      rows.push_back({p.series, p.x, base > 0 ? p.r.mops / base : 0});
    }
    return rows;
  };
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    fig04, "fig04_search_replace",
    "Search-and-replace, keys [0,4096): TLE vs no-sync NUMA amplification",
    "Figure 4", "y = speedup over 1 thread", planFig04);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("fig04_search_replace", argc, argv);
}
#endif
