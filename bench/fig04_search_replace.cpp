// Figure 4: search-and-replace on an AVL tree with key range [0, 4096),
// TLE vs no synchronization. The operation is semantically a no-op write, so
// it needs no synchronization — comparing the two isolates how much HTM
// amplifies NUMA effects (the paper: no-sync loses 26% from 36->72 threads,
// TLE loses 75%).
#include <cstdio>

#include "workload/options.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  emitHeader("fig04_search_replace (y = speedup over 1 thread)");
  SetBenchConfig cfg;
  cfg.key_range = 4096;
  cfg.search_replace = true;
  cfg.measure_ms = 2.0 * opt.time_scale;
  cfg.warmup_ms = 0.8 * opt.time_scale;
  cfg.trials = opt.full ? 3 : 1;
  for (SyncKind sync : {SyncKind::kTle, SyncKind::kNone}) {
    cfg.sync = sync;
    const char* series = sync == SyncKind::kTle ? "TLE" : "no-sync";
    double base = 0;
    for (int n : threadAxis(cfg.machine, opt.full)) {
      cfg.nthreads = n;
      const SetBenchResult r = runSetBench(cfg);
      if (n == 1) base = r.mops;
      emitRow(series, n, base > 0 ? r.mops / base : 0);
      std::fprintf(stderr, "%s n=%d mops=%.3f speedup=%.2f abort=%.3f\n",
                   series, n, r.mops, base > 0 ? r.mops / base : 0,
                   r.abort_rate);
    }
  }
  return 0;
}
