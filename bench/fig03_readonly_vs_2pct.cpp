// Figure 3: AVL tree, key range [0, 2048), TLE-20. Read-only scales to all
// 72 threads; just 2% updates flattens the curve after 36 threads.
#include <memory>

#include "exp/exp.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

namespace {

void planFig03(const BenchOptions& opt, exp::Plan& plan) {
  auto sweep = std::make_shared<exp::SetSweep>(opt);
  SetBenchConfig cfg;
  cfg.key_range = 2048;
  cfg.sync = SyncKind::kTle;
  cfg.measure_ms = 2.0 * opt.time_scale;
  cfg.warmup_ms = 0.8 * opt.time_scale;
  for (int upd : {0, 2}) {
    cfg.update_pct = upd;
    const char* series = upd == 0 ? "100%-lookup" : "2%-updates";
    for (int n : threadAxis(cfg.machine, opt.full)) {
      cfg.nthreads = n;
      sweep->point(plan, series, n, cfg);
    }
  }
  plan.emit = [sweep](const std::vector<exp::PointData>& results) {
    std::vector<exp::Record> rows;
    for (const auto& p : sweep->aggregate(results)) {
      rows.push_back({p.series, p.x, p.r.mops});
    }
    return rows;
  };
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    fig03, "fig03_readonly_vs_2pct",
    "AVL, keys [0,2048), TLE-20: read-only scales, 2% updates flattens",
    "Figure 3", "y = Mops/s", planFig03);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("fig03_readonly_vs_2pct", argc, argv);
}
#endif
