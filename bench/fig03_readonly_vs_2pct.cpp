// Figure 3: AVL tree, key range [0, 2048), TLE-20. Read-only scales to all
// 72 threads; just 2% updates flattens the curve after 36 threads.
#include <cstdio>

#include "workload/options.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  emitHeader("fig03_readonly_vs_2pct (y = Mops/s)");
  SetBenchConfig cfg;
  cfg.key_range = 2048;
  cfg.sync = SyncKind::kTle;
  cfg.measure_ms = 2.0 * opt.time_scale;
  cfg.warmup_ms = 0.8 * opt.time_scale;
  cfg.trials = opt.full ? 3 : 1;
  for (int upd : {0, 2}) {
    cfg.update_pct = upd;
    const std::string series =
        upd == 0 ? "100%-lookup" : "2%-updates";
    for (int n : threadAxis(cfg.machine, opt.full)) {
      cfg.nthreads = n;
      const SetBenchResult r = runSetBench(cfg);
      emitRow(series, n, r.mops);
      std::fprintf(stderr, "%s n=%d mops=%.3f abort=%.3f\n", series.c_str(), n,
                   r.mops, r.abort_rate);
    }
  }
  return 0;
}
