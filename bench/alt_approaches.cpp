// Section 4.1's considered-and-rejected alternatives, head to head with
// NATLE on the Figure-1 workload (AVL, 100% updates, keys [0, 2048)):
//
//   * remote-socket backoff — helps only when so long that socket 1 starves;
//   * delegation by key range — locality gains are eaten by coordination
//     overhead unless operations are batched into one critical section.
//
// Series: tle, natle, backoff-<cycles>, delegation-b<batch>.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "ds/avl.hpp"
#include "exp/exp.hpp"
#include "sync/backoff_tle.hpp"
#include "sync/delegation.hpp"
#include "sync/natle.hpp"
#include "workload/json.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::htm;
using namespace natle::workload;

namespace {

constexpr int64_t kRange = 2048;

void prefill(Env& env, ds::AvlTree& tree, uint64_t seed) {
  auto& sc = env.setupCtx();
  sim::Rng pre(seed ^ 0xfeed);
  std::vector<int64_t> keys(kRange);
  for (int64_t k = 0; k < kRange; ++k) keys[k] = k;
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[pre.below(i)]);
  }
  for (size_t i = 0; i < keys.size() / 2; ++i) tree.insert(sc, keys[i]);
}

// Backoff variant of the set bench (the generic driver covers tle/natle).
double runBackoff(int nthreads, uint64_t backoff, double measure_ms,
                  double warmup_ms) {
  sim::MachineConfig mc = sim::LargeMachine();
  mc.seed = 7 + nthreads;
  Env env(mc);
  ds::AvlTree tree(env);
  prefill(env, tree, mc.seed);
  sync::BackoffTleLock lock(env, backoff);
  const uint64_t t_end = mc.msToCycles(warmup_ms + measure_ms);
  env.setStatsStart(mc.msToCycles(warmup_ms));
  for (int i = 0; i < nthreads; ++i) {
    env.spawnWorker(
        [&, t_end](ThreadCtx& ctx) {
          auto& rng = ctx.rng();
          while (ctx.nowCycles() < t_end) {
            const int64_t k = static_cast<int64_t>(rng.below(kRange));
            const bool ins = (rng.next() & 1) != 0;  // decide outside the CS:
            // a retried section must re-run the *same* operation
            const bool count = ctx.nowCycles() >= env.statsStart();
            lock.execute(ctx, [&] {
              if (ins) {
                tree.insert(ctx, k);
              } else {
                tree.erase(ctx, k);
              }
            });
            if (count) ctx.stats().ops++;
            ctx.work(140);
          }
        },
        sim::placeThread(mc, sim::PinPolicy::kFillSocketFirst, i));
  }
  env.run();
  return static_cast<double>(env.totals().ops) / (measure_ms * 1e-3) / 1e6;
}

double runDelegation(int nclients, int batch, double measure_ms,
                     double warmup_ms) {
  sim::MachineConfig mc = sim::LargeMachine();
  mc.seed = 7 + nclients;
  Env env(mc);
  ds::AvlTree tree(env);
  prefill(env, tree, mc.seed);
  sync::TleLock lock(env);
  sync::DelegationFabric fabric(env, lock, nclients, mc.sockets, kRange / 2,
                                batch);
  auto exec = [&](ThreadCtx& ctx, int64_t op, int64_t key) -> int64_t {
    switch (op) {
      case sync::DelegationFabric::kInsert: return tree.insert(ctx, key);
      case sync::DelegationFabric::kErase: return tree.erase(ctx, key);
      default: return tree.contains(ctx, key);
    }
  };
  const uint64_t t_end = mc.msToCycles(warmup_ms + measure_ms);
  env.setStatsStart(mc.msToCycles(warmup_ms));
  // One server per socket, on dedicated cores (threads 0 and 36).
  auto* finished = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *finished = 0;
  for (int s = 0; s < mc.sockets; ++s) {
    env.spawnWorker(
        [&, s](ThreadCtx& ctx) { fabric.serve(ctx, s, exec); },
        sim::placeThread(mc, sim::PinPolicy::kFillSocketFirst, s * 36));
  }
  for (int i = 0; i < nclients; ++i) {
    // Clients avoid the server cores.
    const int hw = 1 + (i % 35) + (i / 35) * 36;
    env.spawnWorker(
        [&, i, t_end](ThreadCtx& ctx) {
          auto& rng = ctx.rng();
          while (ctx.nowCycles() < t_end) {
            const int64_t k = static_cast<int64_t>(rng.below(kRange));
            const bool count = ctx.nowCycles() >= env.statsStart();
            const auto op = (rng.next() & 1) != 0
                                ? sync::DelegationFabric::kInsert
                                : sync::DelegationFabric::kErase;
            fabric.request(ctx, i, op, k);
            if (count) ctx.stats().ops++;
            ctx.work(140);
          }
          if (ctx.fetchAdd(*finished, int64_t{1}) + 1 == nclients) {
            fabric.stop(ctx);
          }
        },
        sim::placeThread(mc, sim::PinPolicy::kFillSocketFirst, hw % 72));
  }
  env.run();
  return static_cast<double>(env.totals().ops) / (measure_ms * 1e-3) / 1e6;
}

std::string altConfigJson(const char* variant, int nthreads, uint64_t param,
                          double measure, double warmup) {
  JsonWriter w;
  w.beginObject();
  w.key("variant").value(variant);
  w.key("nthreads").value(nthreads);
  w.key("param").value(param);
  w.key("measure_ms").value(measure);
  w.key("warmup_ms").value(warmup);
  w.endObject();
  return w.take();
}

void planAlt(const BenchOptions& opt, exp::Plan& plan) {
  const double measure = 1.5 * opt.time_scale;
  const double warmup = 0.8 * opt.time_scale;
  const std::vector<int> axis = {18, 36, 48, 72};

  auto sweep = std::make_shared<exp::SetSweep>(opt, 1);
  SetBenchConfig cfg;
  cfg.key_range = kRange;
  cfg.update_pct = 100;
  cfg.measure_ms = measure;
  cfg.warmup_ms = warmup;
  for (SyncKind sync : {SyncKind::kTle, SyncKind::kNatle}) {
    cfg.sync = sync;
    for (int n : axis) {
      cfg.nthreads = n;
      sweep->point(plan, toString(sync), n, cfg);
    }
  }
  const size_t n_sweep_jobs = plan.jobs.size();

  auto labels = std::make_shared<std::vector<std::pair<std::string, double>>>();
  for (uint64_t backoff : {1000ull, 10000ull, 100000ull}) {
    for (int n : axis) {
      char series[48];
      std::snprintf(series, sizeof series, "backoff-%llu",
                    static_cast<unsigned long long>(backoff));
      exp::Job j;
      j.series = series;
      j.x = n;
      j.seed = 7 + static_cast<uint64_t>(n);
      j.config_json = altConfigJson("backoff", n, backoff, measure, warmup);
      j.run = [n, backoff, measure, warmup] {
        exp::PointData p;
        p.value = runBackoff(n, backoff, measure, warmup);
        return p;
      };
      labels->push_back({series, static_cast<double>(n)});
      plan.jobs.push_back(std::move(j));
    }
  }
  for (int batch : {1, 8}) {
    for (int n : axis) {
      const int clients = n > 2 ? n - 2 : 1;  // two cores serve
      char series[48];
      std::snprintf(series, sizeof series, "delegation-b%d", batch);
      exp::Job j;
      j.series = series;
      j.x = n;
      j.seed = 7 + static_cast<uint64_t>(clients);
      j.config_json = altConfigJson("delegation", n,
                                    static_cast<uint64_t>(batch), measure,
                                    warmup);
      j.run = [clients, batch, measure, warmup] {
        exp::PointData p;
        p.value = runDelegation(clients, batch, measure, warmup);
        return p;
      };
      labels->push_back({series, static_cast<double>(n)});
      plan.jobs.push_back(std::move(j));
    }
  }

  plan.emit = [sweep, labels,
               n_sweep_jobs](const std::vector<exp::PointData>& results) {
    std::vector<exp::Record> rows;
    for (const auto& p : sweep->aggregate(results)) {
      rows.push_back({p.series, p.x, p.r.mops});
    }
    for (size_t i = 0; i < labels->size(); ++i) {
      rows.push_back({(*labels)[i].first, (*labels)[i].second,
                      results[n_sweep_jobs + i].value});
    }
    return rows;
  };
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(
    alt, "alt_approaches",
    "Section 4.1 alternatives: remote-socket backoff and key-range delegation",
    "Section 4.1", "y = Mops/s; Section 4.1 alternatives", planAlt);

#ifndef NATLE_EXP_NO_MAIN
int main(int argc, char** argv) {
  return natle::exp::standaloneMain("alt_approaches", argc, argv);
}
#endif
