// Simulator-throughput microbenchmark: how many simulated cycles the
// discrete-event core retires per wall-clock second. Runs one fixed Figure 2
// data point (AVL, 100% updates, keys [0,131072), TLE-20, 36 threads) and
// reports simulated thread-cycles per wall second, the capacity-planning
// number for sweep runtimes. Wall-clock timing makes this inherently
// machine-dependent, so it is a standalone binary only — never registered
// with the experiment registry, whose outputs must be byte-deterministic.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "workload/json.hpp"
#include "workload/options.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

namespace {

void printUsage(const char* prog, std::FILE* to) {
  std::fprintf(to,
               "usage: %s [--threads N] [--out FILE] [--help]\n"
               "  --threads N  simulated thread count (default 36)\n"
               "  --out FILE   JSON result path (default "
               "BENCH_simthroughput.json)\n"
               "environment:\n"
               "  NATLE_SIM_SCALE=<float>  scale simulated trial length\n",
               prog);
}

}  // namespace

int main(int argc, char** argv) {
  const char* prog = argc > 0 ? argv[0] : "sim_throughput";
  std::string out_path = "BENCH_simthroughput.json";
  int nthreads = 36;
  double time_scale = 1.0;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--threads") == 0 && i + 1 < argc) {
      nthreads = std::atoi(argv[++i]);
      if (nthreads < 1 || nthreads > 72) {
        std::fprintf(stderr, "invalid --threads value (want 1..72)\n");
        return 2;
      }
    } else if (std::strcmp(a, "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      printUsage(prog, stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a);
      printUsage(prog, stderr);
      return 2;
    }
  }
  if (const char* s = std::getenv("NATLE_SIM_SCALE")) {
    if (!BenchOptions::parseScale(s, &time_scale)) {
      std::fprintf(stderr, "invalid NATLE_SIM_SCALE value: \"%s\"\n", s);
      return 2;
    }
  }

  SetBenchConfig cfg;
  cfg.key_range = 131072;
  cfg.update_pct = 100;
  cfg.sync = SyncKind::kTle;
  cfg.tle = sync::Tle20();
  cfg.nthreads = nthreads;
  cfg.measure_ms = 2.0 * time_scale;
  cfg.warmup_ms = 0.8 * time_scale;

  const auto t0 = std::chrono::steady_clock::now();
  const SetBenchResult r = runSetBench(cfg);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Every simulated thread advances through the full warmup+measure window,
  // so the work retired is (window cycles) x (thread count).
  const double window_cycles =
      static_cast<double>(cfg.machine.msToCycles(cfg.warmup_ms +
                                                 cfg.measure_ms));
  const double thread_cycles = window_cycles * nthreads;
  const double cycles_per_s = wall_s > 0 ? thread_cycles / wall_s : 0;

  JsonWriter w;
  w.beginObject();
  w.key("bench").value("sim_throughput");
  w.key("nthreads").value(nthreads);
  w.key("sim_scale").value(time_scale);
  w.key("window_ms").value(cfg.warmup_ms + cfg.measure_ms);
  w.key("thread_cycles").value(thread_cycles);
  w.key("wall_s").value(wall_s);
  w.key("thread_cycles_per_wall_s").value(cycles_per_s);
  w.key("mops").value(r.mops);
  w.key("abort_rate").value(r.abort_rate);
  w.endObject().newline();
  const std::string body = w.take();

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);

  std::printf("threads=%d wall=%.2fs thread-cycles=%.3g -> %.3g "
              "simulated thread-cycles/s (%.2f Mops/s simulated)\n",
              nthreads, wall_s, thread_cycles, cycles_per_s, r.mops);
  std::printf("results: %s\n", out_path.c_str());
  return 0;
}
