file(REMOVE_RECURSE
  "CMakeFiles/natle_workload.dir/setbench.cpp.o"
  "CMakeFiles/natle_workload.dir/setbench.cpp.o.d"
  "libnatle_workload.a"
  "libnatle_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/natle_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
