file(REMOVE_RECURSE
  "libnatle_workload.a"
)
