# Empty dependencies file for natle_workload.
# This may be replaced when dependencies are built.
