file(REMOVE_RECURSE
  "CMakeFiles/natle_paraheapk.dir/paraheapk/paraheapk.cpp.o"
  "CMakeFiles/natle_paraheapk.dir/paraheapk/paraheapk.cpp.o.d"
  "libnatle_paraheapk.a"
  "libnatle_paraheapk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/natle_paraheapk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
