file(REMOVE_RECURSE
  "libnatle_paraheapk.a"
)
