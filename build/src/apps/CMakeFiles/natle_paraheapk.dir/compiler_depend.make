# Empty compiler generated dependencies file for natle_paraheapk.
# This may be replaced when dependencies are built.
