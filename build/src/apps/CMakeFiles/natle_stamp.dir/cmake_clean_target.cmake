file(REMOVE_RECURSE
  "libnatle_stamp.a"
)
