file(REMOVE_RECURSE
  "CMakeFiles/natle_stamp.dir/stamp/genome.cpp.o"
  "CMakeFiles/natle_stamp.dir/stamp/genome.cpp.o.d"
  "CMakeFiles/natle_stamp.dir/stamp/intruder.cpp.o"
  "CMakeFiles/natle_stamp.dir/stamp/intruder.cpp.o.d"
  "CMakeFiles/natle_stamp.dir/stamp/kernels.cpp.o"
  "CMakeFiles/natle_stamp.dir/stamp/kernels.cpp.o.d"
  "CMakeFiles/natle_stamp.dir/stamp/kmeans.cpp.o"
  "CMakeFiles/natle_stamp.dir/stamp/kmeans.cpp.o.d"
  "CMakeFiles/natle_stamp.dir/stamp/labyrinth.cpp.o"
  "CMakeFiles/natle_stamp.dir/stamp/labyrinth.cpp.o.d"
  "CMakeFiles/natle_stamp.dir/stamp/ssca2.cpp.o"
  "CMakeFiles/natle_stamp.dir/stamp/ssca2.cpp.o.d"
  "CMakeFiles/natle_stamp.dir/stamp/vacation.cpp.o"
  "CMakeFiles/natle_stamp.dir/stamp/vacation.cpp.o.d"
  "CMakeFiles/natle_stamp.dir/stamp/yada.cpp.o"
  "CMakeFiles/natle_stamp.dir/stamp/yada.cpp.o.d"
  "libnatle_stamp.a"
  "libnatle_stamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/natle_stamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
