# Empty dependencies file for natle_stamp.
# This may be replaced when dependencies are built.
