# Empty compiler generated dependencies file for natle_cctsa.
# This may be replaced when dependencies are built.
