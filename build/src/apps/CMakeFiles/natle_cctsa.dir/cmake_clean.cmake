file(REMOVE_RECURSE
  "CMakeFiles/natle_cctsa.dir/cctsa/assembler.cpp.o"
  "CMakeFiles/natle_cctsa.dir/cctsa/assembler.cpp.o.d"
  "libnatle_cctsa.a"
  "libnatle_cctsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/natle_cctsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
