file(REMOVE_RECURSE
  "libnatle_cctsa.a"
)
