file(REMOVE_RECURSE
  "libnatle_htm.a"
)
