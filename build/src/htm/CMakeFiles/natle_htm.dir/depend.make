# Empty dependencies file for natle_htm.
# This may be replaced when dependencies are built.
