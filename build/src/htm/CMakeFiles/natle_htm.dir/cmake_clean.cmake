file(REMOVE_RECURSE
  "CMakeFiles/natle_htm.dir/env.cpp.o"
  "CMakeFiles/natle_htm.dir/env.cpp.o.d"
  "libnatle_htm.a"
  "libnatle_htm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/natle_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
