file(REMOVE_RECURSE
  "libnatle_mem.a"
)
