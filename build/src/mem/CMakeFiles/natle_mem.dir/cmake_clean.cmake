file(REMOVE_RECURSE
  "CMakeFiles/natle_mem.dir/alloc.cpp.o"
  "CMakeFiles/natle_mem.dir/alloc.cpp.o.d"
  "libnatle_mem.a"
  "libnatle_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/natle_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
