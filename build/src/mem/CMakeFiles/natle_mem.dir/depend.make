# Empty dependencies file for natle_mem.
# This may be replaced when dependencies are built.
