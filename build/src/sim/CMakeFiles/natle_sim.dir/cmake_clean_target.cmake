file(REMOVE_RECURSE
  "libnatle_sim.a"
)
