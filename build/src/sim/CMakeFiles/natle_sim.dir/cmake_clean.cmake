file(REMOVE_RECURSE
  "CMakeFiles/natle_sim.dir/fiber.cpp.o"
  "CMakeFiles/natle_sim.dir/fiber.cpp.o.d"
  "CMakeFiles/natle_sim.dir/fiber_switch.S.o"
  "CMakeFiles/natle_sim.dir/machine.cpp.o"
  "CMakeFiles/natle_sim.dir/machine.cpp.o.d"
  "CMakeFiles/natle_sim.dir/topology.cpp.o"
  "CMakeFiles/natle_sim.dir/topology.cpp.o.d"
  "libnatle_sim.a"
  "libnatle_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/natle_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
