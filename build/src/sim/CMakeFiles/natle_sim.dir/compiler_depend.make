# Empty compiler generated dependencies file for natle_sim.
# This may be replaced when dependencies are built.
