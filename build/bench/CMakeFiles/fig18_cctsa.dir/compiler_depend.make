# Empty compiler generated dependencies file for fig18_cctsa.
# This may be replaced when dependencies are built.
