file(REMOVE_RECURSE
  "CMakeFiles/fig18_cctsa.dir/fig18_cctsa.cpp.o"
  "CMakeFiles/fig18_cctsa.dir/fig18_cctsa.cpp.o.d"
  "fig18_cctsa"
  "fig18_cctsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_cctsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
