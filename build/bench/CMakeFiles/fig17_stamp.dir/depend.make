# Empty dependencies file for fig17_stamp.
# This may be replaced when dependencies are built.
