file(REMOVE_RECURSE
  "CMakeFiles/fig17_stamp.dir/fig17_stamp.cpp.o"
  "CMakeFiles/fig17_stamp.dir/fig17_stamp.cpp.o.d"
  "fig17_stamp"
  "fig17_stamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_stamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
