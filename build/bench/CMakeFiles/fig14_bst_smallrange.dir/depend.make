# Empty dependencies file for fig14_bst_smallrange.
# This may be replaced when dependencies are built.
