file(REMOVE_RECURSE
  "CMakeFiles/fig14_bst_smallrange.dir/fig14_bst_smallrange.cpp.o"
  "CMakeFiles/fig14_bst_smallrange.dir/fig14_bst_smallrange.cpp.o.d"
  "fig14_bst_smallrange"
  "fig14_bst_smallrange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_bst_smallrange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
