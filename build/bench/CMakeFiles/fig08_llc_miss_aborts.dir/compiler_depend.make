# Empty compiler generated dependencies file for fig08_llc_miss_aborts.
# This may be replaced when dependencies are built.
