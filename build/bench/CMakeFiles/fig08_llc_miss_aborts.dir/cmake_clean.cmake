file(REMOVE_RECURSE
  "CMakeFiles/fig08_llc_miss_aborts.dir/fig08_llc_miss_aborts.cpp.o"
  "CMakeFiles/fig08_llc_miss_aborts.dir/fig08_llc_miss_aborts.cpp.o.d"
  "fig08_llc_miss_aborts"
  "fig08_llc_miss_aborts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_llc_miss_aborts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
