file(REMOVE_RECURSE
  "CMakeFiles/fig04_search_replace.dir/fig04_search_replace.cpp.o"
  "CMakeFiles/fig04_search_replace.dir/fig04_search_replace.cpp.o.d"
  "fig04_search_replace"
  "fig04_search_replace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_search_replace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
