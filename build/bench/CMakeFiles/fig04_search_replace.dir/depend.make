# Empty dependencies file for fig04_search_replace.
# This may be replaced when dependencies are built.
