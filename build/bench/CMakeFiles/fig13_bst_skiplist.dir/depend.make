# Empty dependencies file for fig13_bst_skiplist.
# This may be replaced when dependencies are built.
