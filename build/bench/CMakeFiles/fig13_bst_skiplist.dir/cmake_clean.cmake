file(REMOVE_RECURSE
  "CMakeFiles/fig13_bst_skiplist.dir/fig13_bst_skiplist.cpp.o"
  "CMakeFiles/fig13_bst_skiplist.dir/fig13_bst_skiplist.cpp.o.d"
  "fig13_bst_skiplist"
  "fig13_bst_skiplist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_bst_skiplist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
