file(REMOVE_RECURSE
  "CMakeFiles/ablation_model_knobs.dir/ablation_model_knobs.cpp.o"
  "CMakeFiles/ablation_model_knobs.dir/ablation_model_knobs.cpp.o.d"
  "ablation_model_knobs"
  "ablation_model_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_model_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
