# Empty dependencies file for fig06_delay_injection.
# This may be replaced when dependencies are built.
