file(REMOVE_RECURSE
  "CMakeFiles/fig06_delay_injection.dir/fig06_delay_injection.cpp.o"
  "CMakeFiles/fig06_delay_injection.dir/fig06_delay_injection.cpp.o.d"
  "fig06_delay_injection"
  "fig06_delay_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_delay_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
