# Empty compiler generated dependencies file for alt_approaches.
# This may be replaced when dependencies are built.
