file(REMOVE_RECURSE
  "CMakeFiles/alt_approaches.dir/alt_approaches.cpp.o"
  "CMakeFiles/alt_approaches.dir/alt_approaches.cpp.o.d"
  "alt_approaches"
  "alt_approaches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_approaches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
