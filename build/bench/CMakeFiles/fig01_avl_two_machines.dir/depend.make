# Empty dependencies file for fig01_avl_two_machines.
# This may be replaced when dependencies are built.
