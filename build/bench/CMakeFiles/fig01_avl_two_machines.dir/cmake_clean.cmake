file(REMOVE_RECURSE
  "CMakeFiles/fig01_avl_two_machines.dir/fig01_avl_two_machines.cpp.o"
  "CMakeFiles/fig01_avl_two_machines.dir/fig01_avl_two_machines.cpp.o.d"
  "fig01_avl_two_machines"
  "fig01_avl_two_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_avl_two_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
