file(REMOVE_RECURSE
  "CMakeFiles/fig12_avl_tle_vs_natle.dir/fig12_avl_tle_vs_natle.cpp.o"
  "CMakeFiles/fig12_avl_tle_vs_natle.dir/fig12_avl_tle_vs_natle.cpp.o.d"
  "fig12_avl_tle_vs_natle"
  "fig12_avl_tle_vs_natle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_avl_tle_vs_natle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
