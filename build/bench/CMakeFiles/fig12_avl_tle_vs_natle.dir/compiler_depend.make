# Empty compiler generated dependencies file for fig12_avl_tle_vs_natle.
# This may be replaced when dependencies are built.
