# Empty dependencies file for fig19_paraheapk.
# This may be replaced when dependencies are built.
