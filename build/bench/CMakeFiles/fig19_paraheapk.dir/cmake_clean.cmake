file(REMOVE_RECURSE
  "CMakeFiles/fig19_paraheapk.dir/fig19_paraheapk.cpp.o"
  "CMakeFiles/fig19_paraheapk.dir/fig19_paraheapk.cpp.o.d"
  "fig19_paraheapk"
  "fig19_paraheapk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_paraheapk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
