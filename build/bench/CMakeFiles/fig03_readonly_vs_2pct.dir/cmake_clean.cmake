file(REMOVE_RECURSE
  "CMakeFiles/fig03_readonly_vs_2pct.dir/fig03_readonly_vs_2pct.cpp.o"
  "CMakeFiles/fig03_readonly_vs_2pct.dir/fig03_readonly_vs_2pct.cpp.o.d"
  "fig03_readonly_vs_2pct"
  "fig03_readonly_vs_2pct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_readonly_vs_2pct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
