# Empty dependencies file for fig03_readonly_vs_2pct.
# This may be replaced when dependencies are built.
