file(REMOVE_RECURSE
  "CMakeFiles/fig07_avl_vs_leafbst.dir/fig07_avl_vs_leafbst.cpp.o"
  "CMakeFiles/fig07_avl_vs_leafbst.dir/fig07_avl_vs_leafbst.cpp.o.d"
  "fig07_avl_vs_leafbst"
  "fig07_avl_vs_leafbst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_avl_vs_leafbst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
