# Empty compiler generated dependencies file for fig07_avl_vs_leafbst.
# This may be replaced when dependencies are built.
