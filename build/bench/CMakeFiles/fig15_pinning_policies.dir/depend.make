# Empty dependencies file for fig15_pinning_policies.
# This may be replaced when dependencies are built.
