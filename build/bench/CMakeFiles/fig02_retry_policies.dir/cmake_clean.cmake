file(REMOVE_RECURSE
  "CMakeFiles/fig02_retry_policies.dir/fig02_retry_policies.cpp.o"
  "CMakeFiles/fig02_retry_policies.dir/fig02_retry_policies.cpp.o.d"
  "fig02_retry_policies"
  "fig02_retry_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_retry_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
