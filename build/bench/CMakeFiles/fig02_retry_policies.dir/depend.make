# Empty dependencies file for fig02_retry_policies.
# This may be replaced when dependencies are built.
