# Empty dependencies file for fig16_two_trees.
# This may be replaced when dependencies are built.
