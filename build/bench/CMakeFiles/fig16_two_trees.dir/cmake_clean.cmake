file(REMOVE_RECURSE
  "CMakeFiles/fig16_two_trees.dir/fig16_two_trees.cpp.o"
  "CMakeFiles/fig16_two_trees.dir/fig16_two_trees.cpp.o.d"
  "fig16_two_trees"
  "fig16_two_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_two_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
