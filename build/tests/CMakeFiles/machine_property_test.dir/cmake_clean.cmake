file(REMOVE_RECURSE
  "CMakeFiles/machine_property_test.dir/machine_property_test.cpp.o"
  "CMakeFiles/machine_property_test.dir/machine_property_test.cpp.o.d"
  "machine_property_test"
  "machine_property_test.pdb"
  "machine_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
