
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_test.cpp" "tests/CMakeFiles/apps_test.dir/apps_test.cpp.o" "gcc" "tests/CMakeFiles/apps_test.dir/apps_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/natle_stamp.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/natle_cctsa.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/natle_paraheapk.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/natle_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/natle_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/natle_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/natle_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
