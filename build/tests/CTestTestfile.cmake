# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/htm_test[1]_include.cmake")
include("/root/repo/build/tests/sync_test[1]_include.cmake")
include("/root/repo/build/tests/ds_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/regression_test[1]_include.cmake")
include("/root/repo/build/tests/machine_property_test[1]_include.cmake")
include("/root/repo/build/tests/alternatives_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
