file(REMOVE_RECURSE
  "CMakeFiles/two_locks_natle.dir/two_locks_natle.cpp.o"
  "CMakeFiles/two_locks_natle.dir/two_locks_natle.cpp.o.d"
  "two_locks_natle"
  "two_locks_natle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_locks_natle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
