# Empty compiler generated dependencies file for two_locks_natle.
# This may be replaced when dependencies are built.
