file(REMOVE_RECURSE
  "CMakeFiles/assembler_demo.dir/assembler_demo.cpp.o"
  "CMakeFiles/assembler_demo.dir/assembler_demo.cpp.o.d"
  "assembler_demo"
  "assembler_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assembler_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
