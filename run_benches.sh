#!/bin/bash
# Thin wrapper over the natle-bench CLI: run every registered experiment and
# write bench_results/<name>.{csv,json} plus bench_results/manifest.json.
#
#   ./run_benches.sh                 # everything, one worker
#   ./run_benches.sh -j8 --progress  # extra flags pass straight through
#
# See `natle-bench --help` (or EXPERIMENTS.md) for the full flag list.
set -euo pipefail
cd "$(dirname "$0")"
BIN=build/bench/natle-bench
if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built (cmake -B build -S . && cmake --build build)" >&2
  exit 1
fi
exec "$BIN" run --all "$@"
