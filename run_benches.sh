#!/bin/bash
# Run every bench binary, teeing each output to bench_results/<name>.csv
mkdir -p /root/repo/bench_results
for b in /root/repo/build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  case "$b" in *cmake*|*CMakeFiles*|*CTestTestfile*) continue;; esac
  name=$(basename "$b")
  echo "=== $name ==="
  "$b" > "/root/repo/bench_results/$name.csv" 2>"/root/repo/bench_results/$name.log"
  echo "rc=$?"
done
