#!/bin/bash
# Thin wrapper over the natle-bench CLI: run experiments and write
# bench_results/<name>.{csv,json} plus bench_results/manifest.json.
#
#   ./run_benches.sh                          # everything, one worker
#   ./run_benches.sh -j8 --progress           # extra flags pass straight through
#   ./run_benches.sh --filter 'service_*' -j4 # your selection, no --all added
#
# Every flag is forwarded to `natle-bench run` verbatim; --all is injected
# only when the caller didn't already pick a selection via --filter/--all.
# See `natle-bench --help` (or EXPERIMENTS.md) for the full flag list.
set -euo pipefail
cd "$(dirname "$0")"
BIN=build/bench/natle-bench
if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built (cmake -B build -S . && cmake --build build)" >&2
  exit 1
fi
want_all=1
for arg in "$@"; do
  case "$arg" in
    --all|--filter|--filter=*) want_all=0 ;;
  esac
done
if [ "$want_all" = 1 ]; then
  exec "$BIN" run --all "$@"
fi
exec "$BIN" run "$@"
