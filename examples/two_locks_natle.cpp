// NATLE making *per-lock* decisions: one lock protects an update-heavy AVL
// tree (does not scale across sockets), another protects a read-only tree
// (scales fine). With 72 threads split across both, NATLE throttles the
// first lock to one socket at a time while leaving the second unthrottled —
// the paper's Figure 16 scenario, visible through the per-cycle decision
// history.
#include <cstdio>

#include "ds/avl.hpp"
#include "htm/env.hpp"
#include "sync/natle.hpp"

using namespace natle;

int main() {
  sim::MachineConfig mc = sim::LargeMachine();
  mc.seed = 7;
  htm::Env env(mc);

  ds::AvlTree tree_upd(env), tree_read(env);
  {
    auto& setup = env.setupCtx();
    for (int64_t k = 0; k < 2048; k += 2) {
      tree_upd.insert(setup, k);
      tree_read.insert(setup, k);
    }
  }
  sync::NatleConfig ncfg;
  ncfg.profiling_ms = 0.1;
  sync::NatleLock lock_upd(env, sync::TlePolicy{}, ncfg);
  sync::NatleLock lock_read(env, sync::TlePolicy{}, ncfg);
  lock_upd.setActiveRows(128);
  lock_read.setActiveRows(128);

  const uint64_t t_end = mc.msToCycles(6.0);
  for (int i = 0; i < 72; ++i) {
    const bool updater = i % 2 == 0;
    env.spawnWorker(
        [&, updater, t_end](htm::ThreadCtx& ctx) {
          auto& rng = ctx.rng();
          while (ctx.nowCycles() < t_end) {
            const int64_t key = static_cast<int64_t>(rng.below(2048));
            if (updater) {
              const bool ins = (rng.next() & 1) != 0;
              lock_upd.execute(ctx, [&] {
                if (ins) {
                  tree_upd.insert(ctx, key);
                } else {
                  tree_upd.erase(ctx, key);
                }
              });
            } else {
              lock_read.execute(ctx, [&] { tree_read.contains(ctx, key); });
              ctx.work(250);
            }
            ctx.work(140);
          }
        },
        sim::placeThread(mc, sim::PinPolicy::kFillSocketFirst, i));
  }
  env.run();

  auto describe = [](const char* name, const sync::NatleLock& lock) {
    std::printf("%s decisions per profiling cycle:\n", name);
    for (const auto& d : lock.history()) {
      std::printf("  cycle %3llu: fastest mode %d (slice %.2f) -> %s\n",
                  static_cast<unsigned long long>(d.cycle_index),
                  d.fastest_mode, d.fastest_slice,
                  d.fastest_mode == 2 ? "both sockets"
                                      : "alternate sockets");
    }
  };
  describe("update-tree lock", lock_upd);
  describe("read-tree lock", lock_read);
  return 0;
}
