// Run the ccTSA-style assembler on a synthetic genome at several thread
// counts, comparing plain TLE against NATLE — a miniature of the paper's
// Figure 18 experiment, runnable in a few seconds.
#include <cstdio>

#include "apps/cctsa/cctsa.hpp"

using namespace natle;
using namespace natle::apps::cctsa;

int main() {
  CctsaConfig cfg;
  cfg.scale = 0.4;
  std::printf("%8s %12s %12s\n", "threads", "TLE (ms)", "NATLE (ms)");
  for (int n : {1, 18, 36, 48, 72}) {
    cfg.nthreads = n;
    cfg.natle = false;
    const CctsaResult tle = runCctsa(cfg);
    cfg.natle = true;
    const CctsaResult natle = runCctsa(cfg);
    std::printf("%8d %12.3f %12.3f\n", n, tle.sim_ms, natle.sim_ms);
  }
  std::printf("\n(lower is better; NATLE avoids the cross-socket blow-up "
              "past 36 threads)\n");
  return 0;
}
