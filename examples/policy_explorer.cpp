// Explore TLE retry policies (the paper's Section 3.1) on one workload: how
// many attempts to allow, whether to trust the hardware hint bit, and
// whether lock-held waits count toward the budget. Prints a small table of
// throughput and fallback counts at 36 threads.
#include <cstdio>
#include <utility>
#include <vector>

#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

int main() {
  SetBenchConfig cfg;
  cfg.key_range = 131072;
  cfg.update_pct = 100;
  cfg.sync = SyncKind::kTle;
  cfg.nthreads = 36;
  cfg.measure_ms = 1.5;
  cfg.warmup_ms = 0.6;

  const std::vector<std::pair<const char*, sync::TlePolicy>> policies = {
      {"TLE-20 (paper default)", sync::Tle20()},
      {"TLE-5", sync::Tle5()},
      {"TLE-20-hint-bit", sync::Tle20HintBit()},
      {"TLE-5-hint-bit", sync::Tle5HintBit()},
      {"TLE-20-count-lock", sync::Tle20CountLock()},
      {"TLE-5-count-lock", sync::Tle5CountLock()},
  };
  std::printf("%-24s %10s %10s %14s\n", "policy", "Mops/s", "abort%",
              "lock acquires");
  for (const auto& [name, pol] : policies) {
    cfg.tle = pol;
    const SetBenchResult r = runSetBench(cfg);
    std::printf("%-24s %10.2f %9.1f%% %14llu\n", name, r.mops,
                100.0 * r.abort_rate,
                static_cast<unsigned long long>(r.stats.lock_acquires));
  }
  return 0;
}
