// Quickstart: simulate a two-socket HTM machine, protect an AVL tree with a
// single TLE-elided lock, run 8 threads against it, and inspect the
// transaction statistics.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "ds/avl.hpp"
#include "htm/env.hpp"
#include "sync/tle.hpp"

using namespace natle;

int main() {
  // 1. A machine: two sockets x 18 cores x 2 hyperthreads (the paper's
  //    Oracle X5-2). SmallMachine() gives the 4-core comparison box.
  sim::MachineConfig mc = sim::LargeMachine();
  mc.seed = 42;
  htm::Env env(mc);

  // 2. Shared data: an AVL tree, prefilled through the free setup context.
  ds::AvlTree tree(env);
  {
    auto& setup = env.setupCtx();
    for (int64_t k = 0; k < 1024; k += 2) tree.insert(setup, k);
  }

  // 3. One lock, elided with hardware transactions (TLE-20 policy).
  sync::TleLock lock(env);

  // 4. Eight simulated threads hammer the tree. The first four land on
  //    socket 0, the rest on socket 0's other cores (fill-socket-first).
  for (int i = 0; i < 8; ++i) {
    env.spawnWorker(
        [&](htm::ThreadCtx& ctx) {
          auto& rng = ctx.rng();
          for (int op = 0; op < 2000; ++op) {
            const int64_t key = static_cast<int64_t>(rng.below(1024));
            const bool insert = (rng.next() & 1) != 0;
            lock.execute(ctx, [&] {
              if (insert) {
                tree.insert(ctx, key);
              } else {
                tree.erase(ctx, key);
              }
            });
          }
        },
        sim::placeThread(mc, sim::PinPolicy::kFillSocketFirst, i));
  }
  env.run();

  // 5. What happened?
  const htm::TxStats t = env.totals();
  std::printf("committed transactions : %llu\n",
              static_cast<unsigned long long>(t.tx_commits));
  std::printf("aborts (conflict)      : %llu\n",
              static_cast<unsigned long long>(
                  t.tx_aborts[static_cast<int>(htm::AbortReason::kConflict)]));
  std::printf("aborts (capacity)      : %llu\n",
              static_cast<unsigned long long>(
                  t.tx_aborts[static_cast<int>(htm::AbortReason::kCapacity)]));
  std::printf("fallback lock acquires : %llu\n",
              static_cast<unsigned long long>(t.lock_acquires));
  std::printf("simulated runtime      : %.3f ms\n",
              static_cast<double>(env.machine().maxFinishClock()) /
                  (mc.ghz * 1e6));
  auto& check = env.setupCtx();
  std::printf("final tree size %zu, valid=%d\n", tree.size(check),
              tree.validate(check) ? 1 : 0);
  return 0;
}
