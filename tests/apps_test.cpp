// Application smoke and property tests: every STAMP kernel, the assembler
// and paraheap-k must run to completion under TLE and NATLE, produce
// plausible runtimes (more threads != slower within a socket), and be
// deterministic for a fixed seed.
#include <gtest/gtest.h>

#include "apps/cctsa/cctsa.hpp"
#include "apps/paraheapk/paraheapk.hpp"
#include "apps/stamp/stamp.hpp"
#include "sim/barrier.hpp"
#include "sim/machine.hpp"

using namespace natle;
using namespace natle::apps;

namespace {

struct KernelParam {
  const char* name;
  stamp::KernelFn fn;
};

class StampKernels : public ::testing::TestWithParam<KernelParam> {};

}  // namespace

TEST_P(StampKernels, RunsUnderBothLocksAndScalesInSocket) {
  const KernelParam p = GetParam();
  stamp::StampConfig cfg;
  cfg.scale = 0.12;
  for (bool natle : {false, true}) {
    cfg.natle = natle;
    cfg.nthreads = 1;
    const stamp::StampResult one = p.fn(cfg);
    EXPECT_GT(one.sim_ms, 0.0);
    EXPECT_GT(one.tx_commits, 0u);
    cfg.nthreads = 12;
    const stamp::StampResult twelve = p.fn(cfg);
    EXPECT_LT(twelve.sim_ms, one.sim_ms)
        << p.name << (natle ? "/natle" : "/tle")
        << ": 12 threads should beat 1 within a socket";
  }
}

TEST_P(StampKernels, StableWorkAcrossReruns) {
  // Exact timing repeats only in a fresh process (cache-line identities come
  // from real heap addresses), but the committed work is invariant: every
  // critical section retires exactly once, via a transaction or the lock.
  const KernelParam p = GetParam();
  stamp::StampConfig cfg;
  cfg.scale = 0.08;
  cfg.nthreads = 8;
  cfg.seed = 5;
  const stamp::StampResult a = p.fn(cfg);
  const stamp::StampResult b = p.fn(cfg);
  EXPECT_EQ(a.tx_commits + a.lock_acquires, b.tx_commits + b.lock_acquires)
      << p.name;
  EXPECT_NEAR(a.sim_ms, b.sim_ms, 0.15 * a.sim_ms) << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, StampKernels,
    ::testing::Values(KernelParam{"genome", stamp::runGenome},
                      KernelParam{"intruder", stamp::runIntruder},
                      KernelParam{"kmeans_low", stamp::runKmeansLow},
                      KernelParam{"kmeans_high", stamp::runKmeansHigh},
                      KernelParam{"labyrinth", stamp::runLabyrinth},
                      KernelParam{"ssca2", stamp::runSsca2},
                      KernelParam{"vacation_low", stamp::runVacationLow},
                      KernelParam{"vacation_high", stamp::runVacationHigh},
                      KernelParam{"yada", stamp::runYada}),
    [](const ::testing::TestParamInfo<KernelParam>& i) {
      return std::string(i.param.name);
    });

TEST(Cctsa, IndexesKmersAndScales) {
  cctsa::CctsaConfig cfg;
  cfg.scale = 0.1;
  cfg.nthreads = 1;
  const cctsa::CctsaResult one = runCctsa(cfg);
  EXPECT_GT(one.kmers_indexed, 100u);
  cfg.nthreads = 12;
  const cctsa::CctsaResult twelve = runCctsa(cfg);
  EXPECT_LT(twelve.sim_ms, one.sim_ms);
  // Same input, same result regardless of parallelism.
  EXPECT_EQ(twelve.kmers_indexed, one.kmers_indexed);
  EXPECT_EQ(twelve.contig_links, one.contig_links);
}

TEST(Cctsa, NatleRecordsHistoryAt72Threads) {
  cctsa::CctsaConfig cfg;
  cfg.scale = 0.25;
  cfg.nthreads = 72;
  cfg.natle = true;
  const cctsa::CctsaResult r = runCctsa(cfg);
  EXPECT_FALSE(r.natle_history.empty());
  for (const auto& d : r.natle_history) {
    EXPECT_GE(d.socket0_share, 0.0);
    EXPECT_LE(d.socket0_share, 1.0);
  }
}

TEST(ParaheapK, PinnedCostsMoreThanUnpinnedToCreateThreads) {
  paraheapk::ParaheapConfig cfg;
  cfg.scale = 0.08;
  cfg.nthreads = 8;
  cfg.pin_threads = true;
  const double pinned = runParaheapK(cfg).sim_ms;
  cfg.pin_threads = false;
  const double unpinned = runParaheapK(cfg).sim_ms;
  EXPECT_GT(pinned, 0.0);
  EXPECT_GT(unpinned, 0.0);
  // Pinning charges extra per created worker (24 creations x 8 workers).
  EXPECT_GT(pinned, unpinned * 0.9);
}

TEST(ParaheapK, RunsAtFullMachineWidth) {
  paraheapk::ParaheapConfig cfg;
  cfg.scale = 0.05;
  cfg.nthreads = 72;
  cfg.natle = true;
  const paraheapk::ParaheapResult r = runParaheapK(cfg);
  EXPECT_GT(r.sim_ms, 0.0);
  EXPECT_EQ(r.iterations, 12);
}

TEST(Barrier, ReleasesAllAtMaxClock) {
  sim::MachineConfig mc = sim::LargeMachine();
  sim::Machine m(mc);
  sim::Barrier barrier(m, 3);
  uint64_t resumed_at[3] = {};
  for (int i = 0; i < 3; ++i) {
    m.spawn(
        [&, i](sim::SimThread& t) {
          m.charge(t, 100 * (i + 1));  // arrive at 100/200/300
          m.maybeYield(t);
          barrier.arrive(t);
          resumed_at[i] = t.clock;
        },
        sim::placeThread(mc, sim::PinPolicy::kFillSocketFirst, i));
  }
  m.run();
  for (int i = 0; i < 3; ++i) EXPECT_GE(resumed_at[i], 300u);
}

TEST(Barrier, Reusable) {
  sim::MachineConfig mc = sim::LargeMachine();
  sim::Machine m(mc);
  sim::Barrier barrier(m, 2);
  int rounds_done[2] = {};
  for (int i = 0; i < 2; ++i) {
    m.spawn(
        [&, i](sim::SimThread& t) {
          for (int round = 0; round < 5; ++round) {
            m.charge(t, (i + 1) * 50);
            m.maybeYield(t);
            barrier.arrive(t);
            rounds_done[i] = round + 1;
          }
        },
        sim::placeThread(mc, sim::PinPolicy::kFillSocketFirst, i));
  }
  m.run();
  EXPECT_EQ(rounds_done[0], 5);
  EXPECT_EQ(rounds_done[1], 5);
}
