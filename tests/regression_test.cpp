// Regression and failure-injection tests for bugs found during development
// plus adversarial scenarios (abort storms, hostile lock holders, thread
// migration under NATLE).
#include <gtest/gtest.h>

#include "ds/avl.hpp"
#include "sync/natle.hpp"
#include "sync/tle.hpp"

using namespace natle;
using namespace natle::htm;

namespace {

sim::HwSlot slotFor(const sim::MachineConfig& cfg, int i) {
  return sim::placeThread(cfg, sim::PinPolicy::kFillSocketFirst, i);
}

}  // namespace

// Regression: ctx.free() while a cross-thread abort is pending must NOT
// free (the unlink stores were rolled back, so the block is still
// reachable). This was the root cause of tree corruption under contention:
// a node landed on the free list while still linked, was recycled, and was
// overwritten in place.
TEST(Regression, FreeWithPendingAbortIsDiscarded) {
  Env env(sim::LargeMachine());
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 1;
  void* node = env.allocShared(64);
  const size_t live_before = env.allocator().liveBytes();
  bool aborted = false;
  env.spawnWorker(
      [&](ThreadCtx& ctx) {
        unsigned s;
        NATLE_TX_BEGIN(ctx, s);
        if (s == kTxStarted) {
          (void)ctx.load(*x);   // join the conflict set
          ctx.work(100000);     // the adversary's write lands in this window
          ctx.free(node);       // pending abort MUST preempt this free
          ctx.txCommit();
          FAIL() << "transaction should have aborted";
        }
        aborted = true;
        EXPECT_EQ(env.allocator().liveBytes(), live_before)
            << "free of a reachable block leaked through an abort";
      },
      slotFor(env.cfg(), 0));
  env.spawnWorker(
      [&](ThreadCtx& ctx) {
        ctx.work(5000);
        ctx.store(*x, int64_t{2});
      },
      slotFor(env.cfg(), 1));
  env.run();
  EXPECT_TRUE(aborted);
}

// Regression: same hazard for ctx.alloc() — an allocation made after the
// abort landed would escape the tx_allocs rollback log.
TEST(Regression, AllocWithPendingAbortIsDiscarded) {
  Env env(sim::LargeMachine());
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 1;
  const size_t live_before = env.allocator().liveBytes();
  env.spawnWorker(
      [&](ThreadCtx& ctx) {
        unsigned s;
        NATLE_TX_BEGIN(ctx, s);
        if (s == kTxStarted) {
          (void)ctx.load(*x);
          ctx.work(100000);
          void* p = ctx.alloc(64);  // must longjmp before allocating
          (void)p;
          ctx.txCommit();
          FAIL() << "transaction should have aborted";
        }
      },
      slotFor(env.cfg(), 0));
  env.spawnWorker(
      [&](ThreadCtx& ctx) {
        ctx.work(5000);
        ctx.store(*x, int64_t{2});
      },
      slotFor(env.cfg(), 1));
  env.run();
  EXPECT_EQ(env.allocator().liveBytes(), live_before);
}

// Regression: a single thread using a NATLE lock must terminate — the
// epoch-stamp encoding once made cycle 0 unclaimable and startProfiling
// spun forever.
TEST(Regression, NatleCycleZeroIsClaimable) {
  Env env(sim::LargeMachine());
  sync::NatleLock lock(env);
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 0;
  env.spawnWorker(
      [&](ThreadCtx& ctx) {
        for (int i = 0; i < 50; ++i) {
          lock.execute(ctx, [&] { ctx.store(*x, ctx.load(*x) + 1); });
        }
      },
      slotFor(env.cfg(), 0));
  env.run();
  EXPECT_EQ(*x, 50);
}

// Regression: a transactional read hitting the shared L1 must not observe a
// sibling hyperthread transaction's uncommitted write.
TEST(Regression, SiblingHyperthreadDirtyReadAbortsWriter) {
  sim::MachineConfig cfg = sim::LargeMachine();
  Env env(cfg);
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 1;
  // Threads 0 and 18 share core 0 (fill-socket-first).
  bool writer_aborted = false;
  int64_t reader_saw = 0;
  env.spawnWorker(
      [&](ThreadCtx& ctx) {
        unsigned s;
        NATLE_TX_BEGIN(ctx, s);
        if (s == kTxStarted) {
          ctx.store(*x, int64_t{99});
          ctx.work(100000);
          ctx.txCommit();
          return;
        }
        writer_aborted = true;
      },
      slotFor(cfg, 0));
  env.spawnWorker(
      [&](ThreadCtx& ctx) {
        ctx.work(5000);
        reader_saw = ctx.load(*x);  // plain read on the sibling hyperthread
      },
      slotFor(cfg, 18));
  env.run();
  EXPECT_TRUE(writer_aborted);
  EXPECT_EQ(reader_saw, 1) << "observed an uncommitted transactional value";
}

// Failure injection: a hostile thread that takes the fallback lock and sits
// on it. Elision must stall but correctness and progress must survive.
TEST(FailureInjection, HostileLockHolder) {
  Env env(sim::LargeMachine());
  sync::TleLock lock(env);
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 0;
  env.spawnWorker(
      [&](ThreadCtx& ctx) {
        lock.execute(ctx, [&] {
          ctx.store(*x, ctx.load(*x) + 1);
          ctx.work(400000);  // hog the critical section
        });
      },
      slotFor(env.cfg(), 0));
  for (int i = 1; i < 6; ++i) {
    env.spawnWorker(
        [&](ThreadCtx& ctx) {
          ctx.work(1000);
          for (int r = 0; r < 10; ++r) {
            lock.execute(ctx, [&] { ctx.store(*x, ctx.load(*x) + 1); });
          }
        },
        slotFor(env.cfg(), i));
  }
  env.run();
  EXPECT_EQ(*x, 1 + 5 * 10);
}

// Failure injection: abort storm — an adversary plain-writes the hottest
// line as fast as it can while victims transact over it; every committed
// increment must still be exact.
TEST(FailureInjection, AbortStormPreservesAtomicity) {
  Env env(sim::LargeMachine());
  sync::TleLock lock(env);
  auto* hot = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  auto* victim_sum = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *hot = 0;
  *victim_sum = 0;
  bool stop = false;
  for (int i = 0; i < 4; ++i) {
    env.spawnWorker(
        [&](ThreadCtx& ctx) {
          for (int r = 0; r < 60; ++r) {
            lock.execute(ctx, [&] {
              (void)ctx.load(*hot);
              ctx.work(500);  // widen the window
              ctx.store(*victim_sum, ctx.load(*victim_sum) + 1);
            });
          }
        },
        slotFor(env.cfg(), i));
  }
  env.spawnWorker(
      [&](ThreadCtx& ctx) {
        // Adversary on the other socket.
        for (int r = 0; r < 3000 && !stop; ++r) {
          ctx.store(*hot, static_cast<int64_t>(r));
          ctx.work(300);
        }
      },
      slotFor(env.cfg(), 40));
  env.run();
  stop = true;
  EXPECT_EQ(*victim_sum, 4 * 60);
}

// NATLE under thread migration: unpinned threads move between sockets while
// using a throttled lock; the cached-socket staleness must only ever affect
// performance, never correctness.
TEST(FailureInjection, NatleWithMigratingThreads) {
  sim::MachineConfig mc = sim::LargeMachine();
  Env env(mc);
  sync::NatleLock lock(env);
  lock.setActiveRows(128);
  ds::AvlTree tree(env);
  {
    auto& sc = env.setupCtx();
    for (int64_t k = 0; k < 256; k += 2) tree.insert(sc, k);
  }
  for (int i = 0; i < 16; ++i) {
    env.spawnWorker(
        [&](ThreadCtx& ctx) {
          auto& rng = ctx.rng();
          for (int r = 0; r < 150; ++r) {
            ctx.opBoundary();  // may migrate
            const int64_t k = static_cast<int64_t>(rng.below(256));
            const bool ins = (rng.next() & 1) != 0;
            lock.execute(ctx, [&] {
              if (ins) {
                tree.insert(ctx, k);
              } else {
                tree.erase(ctx, k);
              }
            });
            ctx.work(2000);
          }
        },
        sim::placeThread(mc, sim::PinPolicy::kUnpinned, i), /*pinned=*/false);
  }
  env.run();
  auto& sc = env.setupCtx();
  EXPECT_TRUE(tree.validate(sc));
}
