// Tests for the traffic subsystem: exact nearest-rank quantile math, arrival
// spec parsing and process determinism, the service engine's accounting
// invariants under both client models, and the harness-level contract that a
// traffic experiment's output is byte-identical for any --jobs value.
#include <gtest/gtest.h>

#include <map>
#include <regex>
#include <string>
#include <vector>

#include "exp/exp.hpp"
#include "traffic/arrival.hpp"
#include "traffic/latency.hpp"
#include "traffic/plan.hpp"
#include "traffic/service.hpp"

using namespace natle;
using namespace natle::traffic;

// --- quantile math --------------------------------------------------------

TEST(Latency, EmptyAccumIsAllZero) {
  LatencyAccum a(1.0);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.quantileCycles(500), 0u);
  const LatencySummary s = a.summary(10);
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean_us, 0);
  EXPECT_EQ(s.p999_us, 0);
  EXPECT_EQ(s.slo_violations, 0u);
}

TEST(Latency, SingleSampleIsEveryQuantile) {
  LatencyAccum a(1.0);
  a.add(7000);
  for (uint64_t permille : {1u, 500u, 950u, 990u, 999u, 1000u}) {
    EXPECT_EQ(a.quantileCycles(permille), 7000u) << permille;
  }
  const LatencySummary s = a.summary(0);
  EXPECT_EQ(s.p50_us, 7.0);
  EXPECT_EQ(s.max_us, 7.0);
  EXPECT_EQ(s.mean_us, 7.0);
}

TEST(Latency, AllEqualSamples) {
  LatencyAccum a(1.0);
  for (int i = 0; i < 100; ++i) a.add(500);
  for (uint64_t permille : {1u, 500u, 990u, 999u, 1000u}) {
    EXPECT_EQ(a.quantileCycles(permille), 500u) << permille;
  }
}

TEST(Latency, ExactSmallN) {
  // Nearest-rank over {10, 20, 30, 40}: rank = ceil(p * 4), so p50 -> rank 2
  // and everything from p76 up -> rank 4.
  LatencyAccum a(1.0);
  for (uint64_t v : {40u, 10u, 30u, 20u}) a.add(v);  // unsorted on purpose
  EXPECT_EQ(a.quantileCycles(250), 10u);
  EXPECT_EQ(a.quantileCycles(500), 20u);
  EXPECT_EQ(a.quantileCycles(750), 30u);
  EXPECT_EQ(a.quantileCycles(751), 40u);
  EXPECT_EQ(a.quantileCycles(999), 40u);
  EXPECT_EQ(a.quantileCycles(1000), 40u);
}

TEST(Latency, GoldenSequenceOneToThousand) {
  // With samples 1..1000 the nearest-rank quantile in permille is the
  // identity — any off-by-one or FP boundary bug shows up immediately.
  LatencyAccum a(1.0);
  for (uint64_t v = 1000; v >= 1; --v) a.add(v);
  EXPECT_EQ(a.quantileCycles(1), 1u);
  EXPECT_EQ(a.quantileCycles(500), 500u);
  EXPECT_EQ(a.quantileCycles(950), 950u);
  EXPECT_EQ(a.quantileCycles(990), 990u);
  EXPECT_EQ(a.quantileCycles(999), 999u);
  EXPECT_EQ(a.quantileCycles(1000), 1000u);
}

TEST(Latency, SloViolationsAreStrictlyAbove) {
  LatencyAccum a(1.0);  // 1 GHz: 1000 cycles = 1 us
  a.add(500);
  a.add(1000);  // exactly at the SLO: not a violation
  a.add(1500);
  a.add(2500);
  const LatencySummary s = a.summary(1.0);
  EXPECT_EQ(s.slo_violations, 2u);
  EXPECT_EQ(a.summary(0).slo_violations, 0u);  // slo <= 0 disables
}

// --- arrival specs --------------------------------------------------------

TEST(Arrival, ParseRoundTrips) {
  for (const char* spec :
       {"fixed:rate=500", "poisson:rate=2e3",
        "burst:rate=200,on_ms=0.3,off_ms=0.7,mult=4",
        "diurnal:rate=500,period_ms=2,amp=0.8"}) {
    ArrivalSpec a;
    std::string err;
    ASSERT_TRUE(ArrivalSpec::parse(spec, &a, &err)) << spec << ": " << err;
    ArrivalSpec b;
    ASSERT_TRUE(ArrivalSpec::parse(a.toSpecString(), &b, &err))
        << a.toSpecString() << ": " << err;
    EXPECT_EQ(a.toSpecString(), b.toSpecString());
  }
}

TEST(Arrival, ParseRejectsBadSpecs) {
  ArrivalSpec s;
  std::string err;
  EXPECT_FALSE(ArrivalSpec::parse("weibull:rate=5", &s, &err));
  EXPECT_NE(err.find("unknown arrival kind"), std::string::npos);
  EXPECT_FALSE(ArrivalSpec::parse("poisson", &s, &err));          // no rate
  EXPECT_FALSE(ArrivalSpec::parse("poisson:rate=0", &s, &err));   // rate 0
  EXPECT_FALSE(ArrivalSpec::parse("poisson:rate=-3", &s, &err));  // negative
  EXPECT_FALSE(ArrivalSpec::parse("poisson:rate=abc", &s, &err));
  EXPECT_FALSE(ArrivalSpec::parse("poisson:mult=2,rate=5", &s, &err));
  EXPECT_FALSE(ArrivalSpec::parse("fixed:rate=5,on_ms=1", &s, &err));
  EXPECT_FALSE(ArrivalSpec::parse("burst:rate=5,mult=0.5", &s, &err));
  EXPECT_FALSE(ArrivalSpec::parse("diurnal:rate=5,amp=1", &s, &err));
}

TEST(Arrival, FixedRateHasExactGaps) {
  ArrivalSpec s;
  ASSERT_TRUE(ArrivalSpec::parse("fixed:rate=4", &s, nullptr));
  ArrivalProcess p(s, 1.0, 42);  // 1 GHz: 1 ms = 1e6 cycles
  EXPECT_EQ(p.next(), 250000u);
  EXPECT_EQ(p.next(), 500000u);
  EXPECT_EQ(p.next(), 750000u);
  EXPECT_EQ(p.next(), 1000000u);
}

TEST(Arrival, SameSeedSameTrace) {
  for (const char* spec :
       {"poisson:rate=800", "burst:rate=300,on_ms=0.2,off_ms=0.4,mult=6",
        "diurnal:rate=400,period_ms=1,amp=0.5"}) {
    ArrivalSpec s;
    ASSERT_TRUE(ArrivalSpec::parse(spec, &s, nullptr));
    ArrivalProcess a(s, 2.3, 12345);
    ArrivalProcess b(s, 2.3, 12345);
    ArrivalProcess c(s, 2.3, 54321);
    bool any_diff = false;
    uint64_t prev = 0;
    for (int i = 0; i < 500; ++i) {
      const uint64_t va = a.next();
      EXPECT_EQ(va, b.next()) << spec << " i=" << i;
      if (va != c.next()) any_diff = true;
      // Strict monotonicity even at rates that collapse ms-domain gaps.
      EXPECT_GT(va, prev) << spec << " i=" << i;
      prev = va;
    }
    EXPECT_TRUE(any_diff) << spec << ": different seeds gave the same trace";
  }
}

TEST(Arrival, DisabledProcessNeverFires) {
  ArrivalSpec s;  // default rate = 0
  ArrivalProcess p(s, 2.3, 1);
  EXPECT_EQ(p.next(), ArrivalProcess::kNever);
}

// --- service engine invariants --------------------------------------------

namespace {

ServiceConfig tinyServiceConfig() {
  ServiceConfig cfg;
  cfg.nthreads = 4;
  cfg.key_range = 512;
  cfg.warmup_ms = 0.1;
  cfg.measure_ms = 0.3;
  cfg.latency_buckets = 4;
  ClassSpec point;
  point.name = "point";
  point.kind = RequestKind::kPoint;
  point.arrival.kind = ArrivalKind::kPoisson;
  point.arrival.rate = 2000;
  point.update_pct = 50;
  point.slo_us = 50;
  ClassSpec scan;
  scan.name = "scan";
  scan.kind = RequestKind::kScan;
  scan.arrival.kind = ArrivalKind::kPoisson;
  scan.arrival.rate = 100;
  scan.scan_len = 16;
  scan.slo_us = 200;
  cfg.classes = {point, scan};
  return cfg;
}

void checkAccounting(const ServiceResult& r) {
  uint64_t backlog = 0;
  for (const ClassMetrics& m : r.classes) {
    EXPECT_GE(m.offered, m.completed) << m.name;
    EXPECT_EQ(m.latency.count, m.completed) << m.name;
    backlog += m.offered - m.completed;
    double bucket_total = 0;
    for (const auto& row : m.series) bucket_total += row[1];
    EXPECT_EQ(static_cast<uint64_t>(bucket_total), m.completed) << m.name;
    EXPECT_GE(m.slo_violations, m.latency.slo_violations) << m.name;
  }
  EXPECT_EQ(r.backlog_end, backlog);
}

}  // namespace

TEST(Service, OpenLoopAccountingInvariants) {
  ServiceConfig cfg = tinyServiceConfig();
  const ServiceResult r = runService(cfg);
  ASSERT_EQ(r.classes.size(), 2u);
  EXPECT_GT(r.classes[0].completed, 0u);
  EXPECT_GT(r.classes[1].completed, 0u);
  EXPECT_GT(r.total_krps, 0);
  EXPECT_GT(r.peak_queue, 0u);
  checkAccounting(r);
}

TEST(Service, ClosedLoopCompletesEverythingItOffers) {
  ServiceConfig cfg = tinyServiceConfig();
  cfg.model = ClientModel::kClosed;
  cfg.classes[0].clients = 3;
  cfg.classes[1].clients = 1;
  cfg.classes[0].think_ms = 0.01;
  cfg.classes[1].think_ms = 0.01;
  const ServiceResult r = runService(cfg);
  ASSERT_EQ(r.classes.size(), 2u);
  EXPECT_GT(r.classes[0].completed, 0u);
  EXPECT_GT(r.classes[1].completed, 0u);
  // Closed loop: a request is only sampled when it completes, so there is no
  // backlog by construction.
  EXPECT_EQ(r.backlog_end, 0u);
  checkAccounting(r);
}

TEST(Service, SameConfigSameMetricsJson) {
  ServiceConfig cfg = tinyServiceConfig();
  const std::string a = metricsJson(runService(cfg));
  const std::string b = metricsJson(runService(cfg));
  EXPECT_EQ(a, b);
}

TEST(Service, OfferedTraceIdenticalAcrossSyncKinds) {
  // The arrival streams live in their own RNG domains: the offered trace
  // must not depend on which lock implementation serves it.
  ServiceConfig cfg = tinyServiceConfig();
  cfg.sync = workload::SyncKind::kTle;
  const ServiceResult tle = runService(cfg);
  cfg.sync = workload::SyncKind::kNatle;
  const ServiceResult natle = runService(cfg);
  ASSERT_EQ(tle.classes.size(), natle.classes.size());
  for (size_t i = 0; i < tle.classes.size(); ++i) {
    EXPECT_EQ(tle.classes[i].offered, natle.classes[i].offered) << i;
  }
}

TEST(Service, NatleRunsAndCompletes) {
  ServiceConfig cfg = tinyServiceConfig();
  cfg.sync = workload::SyncKind::kNatle;
  const ServiceResult r = runService(cfg);
  EXPECT_GT(r.classes[0].completed, 0u);
  checkAccounting(r);
}

// --- harness determinism across --jobs ------------------------------------

namespace {

void planTrafficTiny(const workload::BenchOptions& opt, exp::Plan& plan) {
  auto sweep = std::make_shared<ServiceSweep>(opt);
  ServiceConfig cfg = tinyServiceConfig();
  cfg.warmup_ms = 0.1 * opt.time_scale;
  cfg.measure_ms = 0.3 * opt.time_scale;
  for (workload::SyncKind sync :
       {workload::SyncKind::kTle, workload::SyncKind::kNatle}) {
    cfg.sync = sync;
    for (int n : {2, 4}) {
      cfg.nthreads = n;
      sweep->point(plan, workload::toString(sync), n, cfg);
    }
  }
  plan.emit = [sweep](const std::vector<exp::PointData>& results) {
    std::vector<exp::Record> rows;
    for (const auto& e : sweep->points()) {
      const exp::PointData& p = results.at(e.job);
      if (p.status != exp::PointStatus::kOk) continue;
      rows.push_back({e.series, e.x, p.value});
    }
    return rows;
  };
}

std::string stripWallMs(const std::string& json) {
  static const std::regex kWall(",\"wall_ms\":[-0-9.e+]+");
  return std::regex_replace(json, kWall, "");
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(traffic_tiny, "traffic_test_tiny",
                          "four-point service sweep used by traffic_test",
                          "none", "y = completed krps", planTrafficTiny);

TEST(TrafficHarness, ByteIdenticalAcrossJobCounts) {
  const exp::Experiment* e =
      exp::Registry::instance().find("traffic_test_tiny");
  ASSERT_NE(e, nullptr);
  workload::BenchOptions opt;
  exp::RunnerOptions serial;
  serial.jobs = 1;
  exp::RunnerOptions parallel;
  parallel.jobs = 4;
  const exp::ExperimentOutput a = exp::runExperiment(*e, opt, serial);
  const exp::ExperimentOutput b = exp::runExperiment(*e, opt, parallel);
  EXPECT_EQ(a.n_jobs, 4u);
  EXPECT_EQ(a.n_failed, 0u);
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(stripWallMs(a.json), stripWallMs(b.json));
  // The per-class latency series must actually be in the records.
  EXPECT_NE(a.json.find("\"service\":{"), std::string::npos);
  EXPECT_NE(a.json.find("\"series\":[["), std::string::npos);
  EXPECT_NE(a.json.find("\"slo_violations\":"), std::string::npos);
}

TEST(TrafficHarness, ArrivalOverrideChangesOfferedLoad) {
  const exp::Experiment* e =
      exp::Registry::instance().find("traffic_test_tiny");
  ASSERT_NE(e, nullptr);
  workload::BenchOptions opt;
  workload::BenchOptions heavier = opt;
  heavier.arrival_spec = "poisson:rate=4000";
  const exp::ExperimentOutput base =
      exp::runExperiment(*e, opt, exp::RunnerOptions{});
  const exp::ExperimentOutput more =
      exp::runExperiment(*e, heavier, exp::RunnerOptions{});
  EXPECT_NE(stripWallMs(base.json), stripWallMs(more.json));
  EXPECT_NE(more.json.find("poisson:rate=4000"), std::string::npos);
}
