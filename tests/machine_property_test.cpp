// Property sweeps over machine configurations: the HTM engine and the lock
// layer must preserve atomicity and the structures' invariants for any
// topology (1/2/4 sockets), L1 geometry, latency mix and hyperthread
// penalty — the knobs ablation benches turn.
#include <gtest/gtest.h>

#include <set>

#include "ds/avl.hpp"
#include "sync/natle.hpp"
#include "sync/tle.hpp"

using namespace natle;
using namespace natle::htm;

namespace {

struct MachineParam {
  const char* name;
  int sockets;
  int cores_per_socket;
  int threads_per_core;
  uint32_t l1_sets;
  uint32_t l1_ways;
  uint32_t remote_transfer;
  double ht_penalty;
};

class MachineSweep : public ::testing::TestWithParam<MachineParam> {
 protected:
  sim::MachineConfig config() const {
    sim::MachineConfig mc;
    const MachineParam p = GetParam();
    mc.sockets = p.sockets;
    mc.cores_per_socket = p.cores_per_socket;
    mc.threads_per_core = p.threads_per_core;
    mc.l1_sets = p.l1_sets;
    mc.l1_ways = p.l1_ways;
    mc.remote_transfer = p.remote_transfer;
    mc.ht_penalty = p.ht_penalty;
    mc.seed = 11;
    return mc;
  }
};

}  // namespace

TEST_P(MachineSweep, TleCounterIsExact) {
  sim::MachineConfig mc = config();
  Env env(mc);
  sync::TleLock lock(env);
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 0;
  const int nthreads = std::min(mc.totalThreads(), 16);
  for (int i = 0; i < nthreads; ++i) {
    env.spawnWorker(
        [&](ThreadCtx& ctx) {
          for (int r = 0; r < 40; ++r) {
            lock.execute(ctx, [&] { ctx.store(*x, ctx.load(*x) + 1); });
            ctx.work(200);
          }
        },
        sim::placeThread(mc, sim::PinPolicy::kFillSocketFirst,
                         i % mc.totalThreads()));
  }
  env.run();
  EXPECT_EQ(*x, nthreads * 40);
}

TEST_P(MachineSweep, AvlOracleHolds) {
  sim::MachineConfig mc = config();
  Env env(mc);
  ds::AvlTree tree(env);
  constexpr int64_t kRange = 96;
  std::set<int64_t> initial;
  {
    auto& sc = env.setupCtx();
    sim::Rng pre(3);
    for (int64_t k = 0; k < kRange; ++k) {
      if (pre.chance(0.5)) {
        tree.insert(sc, k);
        initial.insert(k);
      }
    }
  }
  sync::TleLock lock(env);
  std::vector<int64_t> net(kRange, 0);
  const int nthreads = std::min(mc.totalThreads(), 10);
  for (int i = 0; i < nthreads; ++i) {
    // Spread across the whole machine (all sockets).
    const int idx = (i * mc.totalThreads()) / nthreads;
    env.spawnWorker(
        [&](ThreadCtx& ctx) {
          auto& rng = ctx.rng();
          for (int r = 0; r < 80; ++r) {
            const int64_t k = static_cast<int64_t>(rng.below(kRange));
            const bool ins = (rng.next() & 1) != 0;
            bool ok = false;
            lock.execute(ctx, [&] {
              ok = ins ? tree.insert(ctx, k) : tree.erase(ctx, k);
            });
            if (ok) net[k] += ins ? 1 : -1;
          }
        },
        sim::placeThread(mc, sim::PinPolicy::kFillSocketFirst, idx));
  }
  env.run();
  auto& sc = env.setupCtx();
  ASSERT_TRUE(tree.validate(sc));
  for (int64_t k = 0; k < kRange; ++k) {
    const int fin = tree.contains(sc, k) ? 1 : 0;
    EXPECT_EQ(net[k], fin - (initial.count(k) ? 1 : 0)) << "key " << k;
  }
}

TEST_P(MachineSweep, NatleCounterIsExact) {
  sim::MachineConfig mc = config();
  Env env(mc);
  sync::NatleLock lock(env);
  lock.setActiveRows(128);
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 0;
  const int nthreads = std::min(mc.totalThreads(), 12);
  for (int i = 0; i < nthreads; ++i) {
    const int idx = (i * mc.totalThreads()) / nthreads;
    env.spawnWorker(
        [&](ThreadCtx& ctx) {
          for (int r = 0; r < 30; ++r) {
            lock.execute(ctx, [&] { ctx.store(*x, ctx.load(*x) + 1); });
            ctx.work(300);
          }
        },
        sim::placeThread(mc, sim::PinPolicy::kFillSocketFirst, idx));
  }
  env.run();
  EXPECT_EQ(*x, nthreads * 30);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, MachineSweep,
    ::testing::Values(
        MachineParam{"paper_large", 2, 18, 2, 64, 8, 500, 1.6},
        MachineParam{"paper_small", 1, 4, 2, 64, 8, 500, 1.6},
        MachineParam{"four_socket", 4, 8, 2, 64, 8, 500, 1.6},
        MachineParam{"single_core_ht", 1, 1, 2, 64, 8, 500, 1.6},
        MachineParam{"tiny_l1", 2, 18, 2, 8, 2, 500, 1.6},
        MachineParam{"no_ht_penalty", 2, 18, 2, 64, 8, 500, 1.0},
        MachineParam{"uniform_latency", 2, 18, 2, 64, 8, 40, 1.6},
        MachineParam{"brutal_numa", 2, 18, 2, 64, 8, 2000, 1.6}),
    [](const ::testing::TestParamInfo<MachineParam>& i) {
      return i.param.name;
    });
