// Tests for the HTM emulator: latency charging, transactional commit and
// rollback, requester-wins conflicts, capacity aborts, explicit aborts,
// allocation rollback, NUMA latency asymmetry.
#include <gtest/gtest.h>

#include "htm/env.hpp"

using namespace natle;
using namespace natle::htm;
using sim::HwSlot;
using sim::LargeMachine;
using sim::MachineConfig;

namespace {

// Run one or more worker bodies to completion on a fresh Env.
template <typename... Fn>
void runWorkers(Env& env, Fn&&... fns) {
  int i = 0;
  (env.spawnWorker(std::forward<Fn>(fns),
                   sim::placeThread(env.cfg(), sim::PinPolicy::kFillSocketFirst,
                                    i++)),
   ...);
  env.run();
}

}  // namespace

TEST(Htm, PlainLoadStoreRoundTrip) {
  Env env(LargeMachine());
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 5;
  runWorkers(env, [&](ThreadCtx& ctx) {
    EXPECT_EQ(ctx.load(*x), 5);
    ctx.store(*x, int64_t{9});
    EXPECT_EQ(ctx.load(*x), 9);
  });
  EXPECT_EQ(*x, 9);
}

TEST(Htm, LatencyColdThenL1) {
  Env env(LargeMachine());
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t), 0));
  *x = 1;
  uint64_t first = 0, second = 0;
  runWorkers(env, [&](ThreadCtx& ctx) {
    const uint64_t t0 = ctx.nowCycles();
    ctx.load(*x);
    first = ctx.nowCycles() - t0;
    const uint64_t t1 = ctx.nowCycles();
    ctx.load(*x);
    second = ctx.nowCycles() - t1;
  });
  EXPECT_EQ(first, env.cfg().local_dram);  // cold miss, home socket 0
  EXPECT_EQ(second, env.cfg().l1_hit);
}

TEST(Htm, RemoteDramCostsMoreThanLocal) {
  MachineConfig cfg = LargeMachine();
  Env env(cfg);
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t), 0));
  *x = 1;
  uint64_t remote_cost = 0;
  // Thread on socket 1 reads a line homed on socket 0.
  env.spawnWorker(
      [&](ThreadCtx& ctx) {
        ASSERT_EQ(ctx.socket(), 1);
        const uint64_t t0 = ctx.nowCycles();
        ctx.load(*x);
        remote_cost = ctx.nowCycles() - t0;
      },
      sim::placeThread(cfg, sim::PinPolicy::kFillSocketFirst, 40));
  env.run();
  EXPECT_EQ(remote_cost, cfg.remote_dram);
}

TEST(Htm, CommitMakesWritesDurable) {
  Env env(LargeMachine());
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 1;
  runWorkers(env, [&](ThreadCtx& ctx) {
    unsigned s;
    NATLE_TX_BEGIN(ctx, s);
    ASSERT_EQ(s, kTxStarted);
    ctx.store(*x, int64_t{7});
    ctx.txCommit();
  });
  EXPECT_EQ(*x, 7);
}

TEST(Htm, ExplicitAbortRollsBack) {
  Env env(LargeMachine());
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 1;
  runWorkers(env, [&](ThreadCtx& ctx) {
    unsigned s;
    volatile bool first = true;
    NATLE_TX_BEGIN(ctx, s);
    if (s == kTxStarted) {
      ASSERT_TRUE(first);
      first = false;
      ctx.store(*x, int64_t{99});
      EXPECT_EQ(ctx.load(*x), 99);  // we see our own write
      ctx.txAbort(42);
      FAIL() << "unreachable";
    }
    const AbortStatus a = decodeStatus(s);
    EXPECT_EQ(a.reason, AbortReason::kExplicit);
    EXPECT_EQ(a.xabort_code, 42);
    EXPECT_TRUE(a.may_retry);
    EXPECT_EQ(ctx.load(*x), 1);  // rolled back
  });
  EXPECT_EQ(*x, 1);
}

TEST(Htm, ConflictAbortsTheOtherWriter) {
  // Thread A starts a transaction and writes x, then spins in simulated
  // time; thread B (plain) writes x, which must abort A and restore x.
  Env env(LargeMachine());
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 1;
  bool a_aborted = false;
  runWorkers(
      env,
      [&](ThreadCtx& ctx) {
        unsigned s;
        NATLE_TX_BEGIN(ctx, s);
        if (s == kTxStarted) {
          ctx.store(*x, int64_t{50});
          ctx.work(100000);  // long window: B's write lands here
          ctx.txCommit();
          return;
        }
        a_aborted = true;
        EXPECT_EQ(decodeStatus(s).reason, AbortReason::kConflict);
        EXPECT_TRUE(decodeStatus(s).may_retry);
      },
      [&](ThreadCtx& ctx) {
        ctx.work(5000);  // let A write first
        ctx.store(*x, int64_t{2});
      });
  EXPECT_TRUE(a_aborted);
  EXPECT_EQ(*x, 2);
}

TEST(Htm, ReaderAbortedByWriter) {
  Env env(LargeMachine());
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 1;
  bool reader_aborted = false;
  runWorkers(
      env,
      [&](ThreadCtx& ctx) {
        unsigned s;
        NATLE_TX_BEGIN(ctx, s);
        if (s == kTxStarted) {
          (void)ctx.load(*x);
          ctx.work(100000);
          ctx.txCommit();
          return;
        }
        reader_aborted = true;
      },
      [&](ThreadCtx& ctx) {
        ctx.work(5000);
        ctx.store(*x, int64_t{2});
      });
  EXPECT_TRUE(reader_aborted);
}

TEST(Htm, ZombieGuardDeliversPendingAbort) {
  // An abort can land while the victim is parked outside any access (here:
  // inside work()). requireConsistent must deliver that pending abort
  // (longjmp to the landing pad) rather than treat the failed check as
  // corruption and kill the process.
  Env env(LargeMachine());
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 1;
  bool aborted = false;
  runWorkers(
      env,
      [&](ThreadCtx& ctx) {
        unsigned s;
        NATLE_TX_BEGIN(ctx, s);
        if (s == kTxStarted) {
          (void)ctx.load(*x);
          ctx.requireConsistent(true);  // in good standing: a no-op
          ctx.work(100000);             // B's conflicting store lands here
          ctx.requireConsistent(false);  // zombie now: must longjmp
          ADD_FAILURE() << "guard did not deliver the pending abort";
          ctx.txCommit();
          return;
        }
        aborted = true;
        EXPECT_EQ(decodeStatus(s).reason, AbortReason::kConflict);
      },
      [&](ThreadCtx& ctx) {
        ctx.work(5000);
        ctx.store(*x, int64_t{2});
      });
  EXPECT_TRUE(aborted);
  EXPECT_EQ(*x, 2);
}

TEST(Htm, ReadersDoNotAbortEachOther) {
  Env env(LargeMachine());
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 1;
  int commits = 0;
  auto reader = [&](ThreadCtx& ctx) {
    unsigned s;
    NATLE_TX_BEGIN(ctx, s);
    if (s == kTxStarted) {
      (void)ctx.load(*x);
      ctx.work(50000);
      ctx.txCommit();
      ++commits;
      return;
    }
    FAIL() << "reader aborted by reader";
  };
  runWorkers(env, reader, reader, reader);
  EXPECT_EQ(commits, 3);
}

TEST(Htm, TxAllocRolledBackOnAbort) {
  Env env(LargeMachine());
  const size_t live0 = env.allocator().liveBytes();
  runWorkers(env, [&](ThreadCtx& ctx) {
    unsigned s;
    NATLE_TX_BEGIN(ctx, s);
    if (s == kTxStarted) {
      ctx.alloc(64);
      ctx.txAbort(1);
    }
  });
  EXPECT_EQ(env.allocator().liveBytes(), live0);
}

TEST(Htm, TxFreeDeferredToCommit) {
  Env env(LargeMachine());
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  const size_t live_with_x = env.allocator().liveBytes();
  runWorkers(env, [&](ThreadCtx& ctx) {
    unsigned s;
    volatile int attempt = 0;
    NATLE_TX_BEGIN(ctx, s);
    if (s == kTxStarted) {
      ctx.free(x);
      EXPECT_EQ(env.allocator().liveBytes(), live_with_x);  // not yet freed
      if (attempt == 0) {
        attempt = 1;
        ctx.txAbort(1);
      }
      ctx.txCommit();
      return;
    }
    // Retry after the abort: x must still be live.
    EXPECT_EQ(env.allocator().liveBytes(), live_with_x);
    unsigned s2;
    NATLE_TX_BEGIN(ctx, s2);
    if (s2 == kTxStarted) {
      ctx.free(x);
      ctx.txCommit();
    }
  });
  EXPECT_LT(env.allocator().liveBytes(), live_with_x);
}

TEST(Htm, CapacityAbortOnOverflow) {
  // A transaction writing more lines than one L1 set holds must abort with
  // the hint bit clear. Lines are chosen to map to the same set.
  sim::MachineConfig cfg = LargeMachine();
  Env env(cfg);
  const uint32_t ways = cfg.l1_ways;
  const uint32_t sets = cfg.l1_sets;
  // Allocate (ways+2) line-sized blocks mapping to the same set.
  std::vector<int64_t*> blocks;
  std::vector<void*> raw;
  while (blocks.size() < ways + 2) {
    void* p = env.allocShared(64);
    raw.push_back(p);
    if (mem::lineOf(p) % sets == 0) blocks.push_back(static_cast<int64_t*>(p));
  }
  bool capacity = false;
  runWorkers(env, [&](ThreadCtx& ctx) {
    unsigned s;
    NATLE_TX_BEGIN(ctx, s);
    if (s == kTxStarted) {
      for (auto* b : blocks) ctx.store(*b, int64_t{1});
      ctx.txCommit();
      return;
    }
    const AbortStatus a = decodeStatus(s);
    capacity = a.reason == AbortReason::kCapacity;
    EXPECT_FALSE(a.may_retry);
  });
  EXPECT_TRUE(capacity);
}

TEST(Htm, CasSemantics) {
  Env env(LargeMachine());
  auto* x = static_cast<uint64_t*>(env.allocShared(sizeof(uint64_t)));
  *x = 0;
  runWorkers(env, [&](ThreadCtx& ctx) {
    EXPECT_TRUE(ctx.cas(*x, uint64_t{0}, uint64_t{1}));
    EXPECT_FALSE(ctx.cas(*x, uint64_t{0}, uint64_t{2}));
    EXPECT_EQ(ctx.load(*x), 1u);
  });
}

TEST(Htm, SetupModeIsFree) {
  Env env(LargeMachine());
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  auto& sc = env.setupCtx();
  sc.store(*x, int64_t{11});
  EXPECT_EQ(sc.load(*x), 11);
  EXPECT_EQ(sc.nowCycles(), 0u);
  EXPECT_EQ(env.directory().size(), 0u);  // setup does not touch coherence
}

TEST(Htm, SiblingReadDoesNotStripCapacityPin) {
  // Regression for the L1 single-owner-slot bug: threads 0 and 18 are the
  // two hyperthreads of core 0 (fill-socket-first) and share one L1 filter.
  // A tx-reads line L; B tx-reads the same L (the L1-hit tag path), commits,
  // then fills L's set with its own transactional footprint so one more line
  // forces an eviction. With a single owner slot B's tag overwrote A's pin,
  // so the eviction reclaimed L silently and A committed despite its read
  // set no longer being resident. With per-sibling slots A's pin survives
  // and the eviction delivers the capacity abort the hardware would.
  sim::MachineConfig cfg = LargeMachine();
  cfg.spurious_abort_per_cycle = 0;  // isolate the capacity mechanism
  Env env(cfg);
  const uint32_t ways = cfg.l1_ways;
  const uint32_t sets = cfg.l1_sets;
  // One line for A (shared with B) plus `ways` filler lines, all in set 0.
  std::vector<int64_t*> lines;
  while (lines.size() < ways + 1) {
    void* p = env.allocShared(64);
    if (mem::lineOf(p) % sets == 0) lines.push_back(static_cast<int64_t*>(p));
  }
  int64_t* shared = lines[0];
  bool a_committed = false;
  AbortReason a_reason = AbortReason::kNone;
  int b_commits = 0;
  env.spawnWorker(
      [&](ThreadCtx& ctx) {
        unsigned s;
        NATLE_TX_BEGIN(ctx, s);
        if (s == kTxStarted) {
          (void)ctx.load(*shared);
          ctx.work(300000);  // stay in flight while B runs both transactions
          ctx.txCommit();
          a_committed = true;
          return;
        }
        a_reason = decodeStatus(s).reason;
      },
      sim::placeThread(cfg, sim::PinPolicy::kFillSocketFirst, 0));
  env.spawnWorker(
      [&](ThreadCtx& ctx) {
        ctx.work(5000);  // let A pin the shared line first
        unsigned s;
        NATLE_TX_BEGIN(ctx, s);
        if (s == kTxStarted) {
          (void)ctx.load(*shared);  // L1 hit: tag, must not strip A's pin
          ctx.txCommit();
          ++b_commits;
        }
        unsigned s2;
        NATLE_TX_BEGIN(ctx, s2);
        if (s2 == kTxStarted) {
          // ways distinct set-0 lines: the last insert finds every way
          // pinned and must evict the shared line — A's, not B's own.
          for (uint32_t i = 1; i <= ways; ++i) (void)ctx.load(*lines[i]);
          ctx.txCommit();
          ++b_commits;
        }
      },
      sim::placeThread(cfg, sim::PinPolicy::kFillSocketFirst, 18));
  env.run();
  EXPECT_FALSE(a_committed);
  EXPECT_EQ(a_reason, AbortReason::kCapacity);
  EXPECT_EQ(b_commits, 2);
}

TEST(Htm, SelfCapacityAbortMidWriteLeavesConsistentState) {
  // A self-capacity abort fires from *inside* accessWrite (victim == the
  // running transaction) after part of the write set is already installed.
  // Directory state, the undo log and transactional allocations must all
  // unwind; debug auditing cross-checks the directory on every subsequent
  // access and aborts the process on any stale entry.
  sim::MachineConfig cfg = LargeMachine();
  cfg.spurious_abort_per_cycle = 0;
  Env env(cfg);
  env.setDebugAudit(true);
  const uint32_t ways = cfg.l1_ways;
  const uint32_t sets = cfg.l1_sets;
  std::vector<int64_t*> blocks;
  while (blocks.size() < ways + 2) {
    void* p = env.allocShared(64);
    if (mem::lineOf(p) % sets == 0) blocks.push_back(static_cast<int64_t*>(p));
  }
  for (auto* b : blocks) *b = 1;
  const size_t live0 = env.allocator().liveBytes();
  bool capacity = false;
  runWorkers(env, [&](ThreadCtx& ctx) {
    unsigned s;
    NATLE_TX_BEGIN(ctx, s);
    if (s == kTxStarted) {
      ctx.alloc(64);  // must be rolled back with the rest of the footprint
      for (auto* b : blocks) ctx.store(*b, int64_t{2});
      ctx.txCommit();
      FAIL() << "overflowing transaction committed";
    }
    capacity = decodeStatus(s).reason == AbortReason::kCapacity;
    // Every store must have been undone before we got here.
    for (auto* b : blocks) EXPECT_EQ(ctx.load(*b), 1);
    // The lines the aborted attempt touched are fully released: a fitting
    // transaction over the same set runs to commit.
    unsigned s2;
    NATLE_TX_BEGIN(ctx, s2);
    if (s2 == kTxStarted) {
      for (uint32_t i = 0; i + 2 < ways; ++i) ctx.store(*blocks[i], int64_t{3});
      ctx.txCommit();
    } else {
      FAIL() << "retry aborted: " << toString(decodeStatus(s2).reason);
    }
  });
  EXPECT_TRUE(capacity);
  EXPECT_EQ(env.allocator().liveBytes(), live0);  // tx alloc rolled back
  for (uint32_t i = 0; i < ways + 2; ++i) {
    EXPECT_EQ(*blocks[i], i + 2 < ways ? 3 : 1);
  }
}

TEST(Htm, StatsWindowExcludesWarmup) {
  Env env(LargeMachine());
  env.setStatsStart(1000000);
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  runWorkers(env, [&](ThreadCtx& ctx) {
    ctx.store(*x, int64_t{1});  // before stats window
    ctx.work(2000000);
    ctx.store(*x, int64_t{2});  // inside stats window
  });
  const TxStats t = env.totals();
  // Only the second store is counted (as an L1 hit or local hit).
  EXPECT_EQ(t.l1_hits + t.local_hits + t.dram_misses + t.remote_transfers, 1u);
}
