// Unit tests for the memory subsystem: directory state, L1 filter capacity
// semantics, allocator padding/homing.
#include <gtest/gtest.h>

#include "mem/alloc.hpp"
#include "mem/directory.hpp"
#include "mem/l1.hpp"

using namespace natle::mem;

TEST(Directory, CreatesWithHome) {
  Directory d;
  LineState& s = d.lookup(1234, 1);
  EXPECT_EQ(s.home_socket, 1);
  EXPECT_EQ(s.owner_socket, -1);
  EXPECT_EQ(s.sharer_mask, 0);
  // Second lookup does not reset the home.
  LineState& s2 = d.lookup(1234, 0);
  EXPECT_EQ(&s, &s2);
  EXPECT_EQ(s2.home_socket, 1);
}

TEST(Directory, FindMissingReturnsNull) {
  Directory d;
  EXPECT_EQ(d.find(99), nullptr);
  d.lookup(99, 0);
  EXPECT_NE(d.find(99), nullptr);
}

TEST(L1, HitAfterInsertMissAfterVersionBump) {
  Directory d;
  L1Cache l1(64, 8);
  LineState& s = d.lookup(640, 0);
  EXPECT_EQ(l1.probe(640), nullptr);
  l1.insert(640, &s, nullptr);
  EXPECT_NE(l1.probe(640), nullptr);
  s.version++;  // a write anywhere invalidates the cached copy
  EXPECT_EQ(l1.probe(640), nullptr);
}

TEST(L1, EvictsInvalidAndPlainBeforeTransactional) {
  Directory d;
  L1Cache l1(1, 2);  // one set, two ways: tiny cache for forced eviction
  TxBase tx;
  tx.in_flight = true;
  tx.seq = 1;
  LineState& a = d.lookup(1, 0);
  LineState& b = d.lookup(2, 0);
  LineState& c = d.lookup(3, 0);
  auto r1 = l1.insert(1, &a, &tx);  // transactional
  auto r2 = l1.insert(2, &b, nullptr);  // plain
  EXPECT_EQ(r1.capacity_victim, nullptr);
  EXPECT_EQ(r2.capacity_victim, nullptr);
  // Inserting a third line must evict the plain line, not the tx line.
  auto r3 = l1.insert(3, &c, nullptr);
  EXPECT_EQ(r3.capacity_victim, nullptr);
  EXPECT_NE(l1.probe(1), nullptr);
  EXPECT_EQ(l1.probe(2), nullptr);
  EXPECT_NE(l1.probe(3), nullptr);
}

TEST(L1, CapacityAbortWhenSetFullOfTransactionalLines) {
  Directory d;
  L1Cache l1(1, 2);
  TxBase mine, sibling;
  mine.in_flight = sibling.in_flight = true;
  mine.seq = sibling.seq = 1;
  l1.insert(1, &d.lookup(1, 0), &mine);
  l1.insert(2, &d.lookup(2, 0), &sibling);
  // My new transactional line evicts the *sibling's* line first.
  auto r = l1.insert(3, &d.lookup(3, 0), &mine);
  EXPECT_EQ(r.capacity_victim, &sibling);
  // With only my own lines resident, the victim is me (true overflow).
  sibling.in_flight = false;
  l1.flush();
  l1.insert(4, &d.lookup(4, 0), &mine);
  l1.insert(5, &d.lookup(5, 0), &mine);
  auto r2 = l1.insert(6, &d.lookup(6, 0), &mine);
  EXPECT_EQ(r2.capacity_victim, &mine);
}

TEST(L1, SiblingTagPreservesFirstOwnersPin) {
  // Both hyperthreads hold the same line in their read sets: the second
  // reader's tag must not strip the first reader's capacity pin. (A single
  // owner slot silently lost the pin, so the first transaction could be
  // evicted with no abort.)
  Directory d;
  L1Cache l1(1, 1);  // one way: any new insert must evict
  TxBase a, b;
  a.in_flight = b.in_flight = true;
  a.seq = b.seq = 1;
  l1.insert(1, &d.lookup(1, 0), &a);
  L1Cache::Entry* e = l1.probe(1);
  ASSERT_NE(e, nullptr);
  l1.tag(e, &b);
  EXPECT_TRUE(l1.ownedBy(e, &a));
  EXPECT_TRUE(l1.ownedBy(e, &b));

  // Evicting the line reports *both* owners as capacity victims.
  auto r = l1.insert(2, &d.lookup(2, 0), nullptr);
  EXPECT_EQ(r.capacity_victim, &a);
  EXPECT_EQ(r.capacity_victim2, &b);
  EXPECT_EQ(r.victim_line, 1u);
  EXPECT_EQ(r.victim_set, 0u);
}

TEST(L1, SiblingPinSurvivesOwnTransactionEnd) {
  // B tags the line after A, then B's transaction ends. A's pin must still
  // protect the line: an insert under pressure reports A as the victim
  // rather than silently reusing the way.
  Directory d;
  L1Cache l1(1, 1);
  TxBase a, b;
  a.in_flight = b.in_flight = true;
  a.seq = b.seq = 1;
  l1.insert(1, &d.lookup(1, 0), &a);
  l1.tag(l1.probe(1), &b);
  b.in_flight = false;  // B committed; its pin is dead, A's is not
  auto r = l1.insert(2, &d.lookup(2, 0), nullptr);
  EXPECT_EQ(r.capacity_victim, &a);
  EXPECT_EQ(r.capacity_victim2, nullptr);
}

TEST(L1, PlainAccessNeverStripsLivePin) {
  Directory d;
  L1Cache l1(1, 1);
  TxBase a;
  a.in_flight = true;
  a.seq = 1;
  l1.insert(1, &d.lookup(1, 0), &a);
  l1.tag(l1.probe(1), nullptr);  // sibling's plain re-read
  EXPECT_TRUE(l1.ownedBy(l1.probe(1), &a));
}

TEST(L1, SameLineReinsertKeepsSiblingOwner) {
  // A transactional miss on a line the sibling already pinned takes the
  // keep-and-tag path, not a destructive reinstall.
  Directory d;
  L1Cache l1(1, 2);
  TxBase a, b;
  a.in_flight = b.in_flight = true;
  a.seq = b.seq = 1;
  l1.insert(1, &d.lookup(1, 0), &a);
  l1.insert(1, &d.lookup(1, 0), &b);
  L1Cache::Entry* e = l1.probe(1);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(l1.ownedBy(e, &a));
  EXPECT_TRUE(l1.ownedBy(e, &b));
}

TEST(L1, DeadTransactionLinesAreEvictable) {
  Directory d;
  L1Cache l1(1, 2);
  TxBase tx;
  tx.in_flight = true;
  tx.seq = 1;
  l1.insert(1, &d.lookup(1, 0), &tx);
  l1.insert(2, &d.lookup(2, 0), &tx);
  tx.in_flight = false;  // transaction ended
  auto r = l1.insert(3, &d.lookup(3, 0), nullptr);
  EXPECT_EQ(r.capacity_victim, nullptr);
}

TEST(Alloc, PadsToLineAndTracksHome) {
  SimAllocator a(true);
  void* p = a.alloc(8, 1);
  void* q = a.alloc(8, 1);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % kLineBytes, 0u);
  EXPECT_NE(lineOf(p), lineOf(q));  // padding: no two objects share a line
  EXPECT_EQ(a.homeOf(lineOf(p)), 1);
  a.free(p);
  a.free(q);
  EXPECT_EQ(a.liveBytes(), 0u);
}

TEST(Alloc, UnpaddedModeSharesLines) {
  SimAllocator a(false);
  void* p = a.alloc(16, 0);
  void* q = a.alloc(16, 0);
  // Bump allocation: 16-byte objects land adjacent, sharing a line.
  EXPECT_EQ(lineOf(p), lineOf(q));
}

TEST(Alloc, ReusesFreedBlocks) {
  SimAllocator a(true);
  void* p = a.alloc(64, 0);
  a.free(p);
  void* q = a.alloc(64, 0);
  EXPECT_EQ(p, q);
}

TEST(Alloc, HomeOfUnknownLineIsZero) {
  SimAllocator a(true);
  EXPECT_EQ(a.homeOf(0xdeadbeef), 0);
}

TEST(Alloc, StableLineIdsAreAddressIndependent) {
  // Stable ids encode (chunk ordinal, offset within chunk): they depend only
  // on allocation order, never on where mmap placed the chunk, so trace
  // dumps compare byte-identical across processes despite ASLR.
  SimAllocator a(true);
  void* p = a.alloc(64, 0);
  void* q = a.alloc(64, 0);
  const uint64_t idp = a.stableLineId(lineOf(p));
  const uint64_t idq = a.stableLineId(lineOf(q));
  ASSERT_NE(idp, 0u);
  ASSERT_NE(idq, 0u);
  EXPECT_NE(idp, idq);
  // Same chunk: ids share the ordinal half and differ by the line offset.
  EXPECT_EQ(idp >> 32, idq >> 32);
  EXPECT_EQ(idq - idp, lineOf(q) - lineOf(p));

  // A second allocator with the same allocation sequence produces the same
  // ids even though its chunks live at different addresses.
  SimAllocator b(true);
  void* p2 = b.alloc(64, 0);
  EXPECT_EQ(b.stableLineId(lineOf(p2)), idp);

  // Lines the allocator does not own have no stable id.
  EXPECT_EQ(a.stableLineId(0xdeadbeef), 0u);
}
