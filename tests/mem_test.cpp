// Unit tests for the memory subsystem: directory state, L1 filter capacity
// semantics, allocator padding/homing.
#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "mem/alloc.hpp"
#include "mem/directory.hpp"
#include "mem/interconnect.hpp"
#include "mem/l1.hpp"
#include "sim/config.hpp"

using namespace natle::mem;

TEST(Directory, CreatesWithHome) {
  Directory d;
  LineState& s = d.lookup(1234, 1);
  EXPECT_EQ(s.home_socket, 1);
  EXPECT_EQ(s.owner_socket, -1);
  EXPECT_EQ(s.sharer_mask, 0);
  // Second lookup does not reset the home.
  LineState& s2 = d.lookup(1234, 0);
  EXPECT_EQ(&s, &s2);
  EXPECT_EQ(s2.home_socket, 1);
}

TEST(Directory, FindMissingReturnsNull) {
  Directory d;
  EXPECT_EQ(d.find(99), nullptr);
  d.lookup(99, 0);
  EXPECT_NE(d.find(99), nullptr);
}

TEST(L1, HitAfterInsertMissAfterVersionBump) {
  Directory d;
  L1Cache l1(64, 8);
  LineState& s = d.lookup(640, 0);
  EXPECT_EQ(l1.probe(640), nullptr);
  l1.insert(640, &s, nullptr);
  EXPECT_NE(l1.probe(640), nullptr);
  s.version++;  // a write anywhere invalidates the cached copy
  EXPECT_EQ(l1.probe(640), nullptr);
}

TEST(L1, EvictsInvalidAndPlainBeforeTransactional) {
  Directory d;
  L1Cache l1(1, 2);  // one set, two ways: tiny cache for forced eviction
  TxBase tx;
  tx.in_flight = true;
  tx.seq = 1;
  LineState& a = d.lookup(1, 0);
  LineState& b = d.lookup(2, 0);
  LineState& c = d.lookup(3, 0);
  auto r1 = l1.insert(1, &a, &tx);  // transactional
  auto r2 = l1.insert(2, &b, nullptr);  // plain
  EXPECT_EQ(r1.capacity_victim, nullptr);
  EXPECT_EQ(r2.capacity_victim, nullptr);
  // Inserting a third line must evict the plain line, not the tx line.
  auto r3 = l1.insert(3, &c, nullptr);
  EXPECT_EQ(r3.capacity_victim, nullptr);
  EXPECT_NE(l1.probe(1), nullptr);
  EXPECT_EQ(l1.probe(2), nullptr);
  EXPECT_NE(l1.probe(3), nullptr);
}

TEST(L1, CapacityAbortWhenSetFullOfTransactionalLines) {
  Directory d;
  L1Cache l1(1, 2);
  TxBase mine, sibling;
  mine.in_flight = sibling.in_flight = true;
  mine.seq = sibling.seq = 1;
  l1.insert(1, &d.lookup(1, 0), &mine);
  l1.insert(2, &d.lookup(2, 0), &sibling);
  // My new transactional line evicts the *sibling's* line first.
  auto r = l1.insert(3, &d.lookup(3, 0), &mine);
  EXPECT_EQ(r.capacity_victim, &sibling);
  // With only my own lines resident, the victim is me (true overflow).
  sibling.in_flight = false;
  l1.flush();
  l1.insert(4, &d.lookup(4, 0), &mine);
  l1.insert(5, &d.lookup(5, 0), &mine);
  auto r2 = l1.insert(6, &d.lookup(6, 0), &mine);
  EXPECT_EQ(r2.capacity_victim, &mine);
}

TEST(L1, SiblingTagPreservesFirstOwnersPin) {
  // Both hyperthreads hold the same line in their read sets: the second
  // reader's tag must not strip the first reader's capacity pin. (A single
  // owner slot silently lost the pin, so the first transaction could be
  // evicted with no abort.)
  Directory d;
  L1Cache l1(1, 1);  // one way: any new insert must evict
  TxBase a, b;
  a.in_flight = b.in_flight = true;
  a.seq = b.seq = 1;
  l1.insert(1, &d.lookup(1, 0), &a);
  L1Cache::Entry* e = l1.probe(1);
  ASSERT_NE(e, nullptr);
  l1.tag(e, &b);
  EXPECT_TRUE(l1.ownedBy(e, &a));
  EXPECT_TRUE(l1.ownedBy(e, &b));

  // Evicting the line reports *both* owners as capacity victims.
  auto r = l1.insert(2, &d.lookup(2, 0), nullptr);
  EXPECT_EQ(r.capacity_victim, &a);
  EXPECT_EQ(r.capacity_victim2, &b);
  EXPECT_EQ(r.victim_line, 1u);
  EXPECT_EQ(r.victim_set, 0u);
}

TEST(L1, SiblingPinSurvivesOwnTransactionEnd) {
  // B tags the line after A, then B's transaction ends. A's pin must still
  // protect the line: an insert under pressure reports A as the victim
  // rather than silently reusing the way.
  Directory d;
  L1Cache l1(1, 1);
  TxBase a, b;
  a.in_flight = b.in_flight = true;
  a.seq = b.seq = 1;
  l1.insert(1, &d.lookup(1, 0), &a);
  l1.tag(l1.probe(1), &b);
  b.in_flight = false;  // B committed; its pin is dead, A's is not
  auto r = l1.insert(2, &d.lookup(2, 0), nullptr);
  EXPECT_EQ(r.capacity_victim, &a);
  EXPECT_EQ(r.capacity_victim2, nullptr);
}

TEST(L1, PlainAccessNeverStripsLivePin) {
  Directory d;
  L1Cache l1(1, 1);
  TxBase a;
  a.in_flight = true;
  a.seq = 1;
  l1.insert(1, &d.lookup(1, 0), &a);
  l1.tag(l1.probe(1), nullptr);  // sibling's plain re-read
  EXPECT_TRUE(l1.ownedBy(l1.probe(1), &a));
}

TEST(L1, SameLineReinsertKeepsSiblingOwner) {
  // A transactional miss on a line the sibling already pinned takes the
  // keep-and-tag path, not a destructive reinstall.
  Directory d;
  L1Cache l1(1, 2);
  TxBase a, b;
  a.in_flight = b.in_flight = true;
  a.seq = b.seq = 1;
  l1.insert(1, &d.lookup(1, 0), &a);
  l1.insert(1, &d.lookup(1, 0), &b);
  L1Cache::Entry* e = l1.probe(1);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(l1.ownedBy(e, &a));
  EXPECT_TRUE(l1.ownedBy(e, &b));
}

TEST(L1, DeadTransactionLinesAreEvictable) {
  Directory d;
  L1Cache l1(1, 2);
  TxBase tx;
  tx.in_flight = true;
  tx.seq = 1;
  l1.insert(1, &d.lookup(1, 0), &tx);
  l1.insert(2, &d.lookup(2, 0), &tx);
  tx.in_flight = false;  // transaction ended
  auto r = l1.insert(3, &d.lookup(3, 0), nullptr);
  EXPECT_EQ(r.capacity_victim, nullptr);
}

TEST(Alloc, PadsToLineAndTracksHome) {
  SimAllocator a(true);
  void* p = a.alloc(8, 1);
  void* q = a.alloc(8, 1);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % kLineBytes, 0u);
  EXPECT_NE(lineOf(p), lineOf(q));  // padding: no two objects share a line
  EXPECT_EQ(a.homeOf(lineOf(p)), 1);
  a.free(p);
  a.free(q);
  EXPECT_EQ(a.liveBytes(), 0u);
}

TEST(Alloc, UnpaddedModeSharesLines) {
  SimAllocator a(false);
  void* p = a.alloc(16, 0);
  void* q = a.alloc(16, 0);
  // Bump allocation: 16-byte objects land adjacent, sharing a line.
  EXPECT_EQ(lineOf(p), lineOf(q));
}

TEST(Alloc, ReusesFreedBlocks) {
  SimAllocator a(true);
  void* p = a.alloc(64, 0);
  a.free(p);
  void* q = a.alloc(64, 0);
  EXPECT_EQ(p, q);
}

TEST(Alloc, HomeOfUnknownLineIsZero) {
  SimAllocator a(true);
  EXPECT_EQ(a.homeOf(0xdeadbeef), 0);
}

TEST(Alloc, StableLineIdsAreAddressIndependent) {
  // Stable ids encode (chunk ordinal, offset within chunk): they depend only
  // on allocation order, never on where mmap placed the chunk, so trace
  // dumps compare byte-identical across processes despite ASLR.
  SimAllocator a(true);
  void* p = a.alloc(64, 0);
  void* q = a.alloc(64, 0);
  const uint64_t idp = a.stableLineId(lineOf(p));
  const uint64_t idq = a.stableLineId(lineOf(q));
  ASSERT_NE(idp, 0u);
  ASSERT_NE(idq, 0u);
  EXPECT_NE(idp, idq);
  // Same chunk: ids share the ordinal half and differ by the line offset.
  EXPECT_EQ(idp >> 32, idq >> 32);
  EXPECT_EQ(idq - idp, lineOf(q) - lineOf(p));

  // A second allocator with the same allocation sequence produces the same
  // ids even though its chunks live at different addresses.
  SimAllocator b(true);
  void* p2 = b.alloc(64, 0);
  EXPECT_EQ(b.stableLineId(lineOf(p2)), idp);

  // Lines the allocator does not own have no stable id.
  EXPECT_EQ(a.stableLineId(0xdeadbeef), 0u);
}

// --- placement policies ---------------------------------------------------

TEST(PlacePolicy, ToStringParseRoundTrip) {
  for (PlacePolicy p :
       {PlacePolicy::kFirstTouch, PlacePolicy::kInterleave,
        PlacePolicy::kAllocatorSocket, PlacePolicy::kAdversarialRemote}) {
    PlacePolicy back;
    ASSERT_TRUE(parsePlacePolicy(toString(p), &back)) << toString(p);
    EXPECT_EQ(back, p);
  }
  PlacePolicy dummy;
  EXPECT_FALSE(parsePlacePolicy("", &dummy));
  EXPECT_FALSE(parsePlacePolicy("firsttouch", &dummy));
  EXPECT_FALSE(parsePlacePolicy("remote", &dummy));
}

TEST(Alloc, FirstTouchHomesOnAllocatingSocket) {
  const natle::sim::MachineConfig cfg = natle::sim::FourSocketRing();
  SimAllocator a(true, PlacePolicy::kFirstTouch, &cfg);
  for (int s = 0; s < 4; ++s) {
    void* p = a.alloc(64, s);
    EXPECT_EQ(a.homeOf(lineOf(p)), s);
  }
}

TEST(Alloc, AllocatorSocketHomesEverythingOnZero) {
  const natle::sim::MachineConfig cfg = natle::sim::FourSocketRing();
  SimAllocator a(true, PlacePolicy::kAllocatorSocket, &cfg);
  for (int s = 0; s < 4; ++s) {
    void* p = a.alloc(64, s);
    EXPECT_EQ(a.homeOf(lineOf(p)), 0);
  }
}

TEST(Alloc, AdversarialRemoteHomesFarthestSocket) {
  // On the 4-ring the opposite socket is farthest: 0<->2, 1<->3.
  const natle::sim::MachineConfig cfg = natle::sim::FourSocketRing();
  SimAllocator a(true, PlacePolicy::kAdversarialRemote, &cfg);
  const int expect_home[4] = {2, 3, 0, 1};
  for (int s = 0; s < 4; ++s) {
    void* p = a.alloc(64, s);
    EXPECT_EQ(a.homeOf(lineOf(p)), expect_home[s]) << "alloc socket " << s;
  }
  // Without a config (default 2-socket) the farthest socket is the other one.
  SimAllocator b(true, PlacePolicy::kAdversarialRemote);
  EXPECT_EQ(b.homeOf(lineOf(b.alloc(64, 0))), 1);
  EXPECT_EQ(b.homeOf(lineOf(b.alloc(64, 1))), 0);
}

TEST(Alloc, InterleaveStripesConsecutiveLines) {
  const natle::sim::MachineConfig cfg = natle::sim::FourSocketRing();
  SimAllocator a(true, PlacePolicy::kInterleave, &cfg);
  // One multi-line block: consecutive lines cycle through all four sockets.
  char* p = static_cast<char*>(a.alloc(8 * 64, 0));
  int seen[4] = {};
  for (int i = 0; i < 8; ++i) {
    const int8_t h = a.homeOf(lineOf(p + i * 64));
    ASSERT_GE(h, 0);
    ASSERT_LT(h, 4);
    seen[h]++;
    if (i > 0) {
      const int8_t prev = a.homeOf(lineOf(p + (i - 1) * 64));
      EXPECT_EQ(h, static_cast<int8_t>((prev + 1) % 4));
    }
  }
  for (int s = 0; s < 4; ++s) EXPECT_EQ(seen[s], 2);
}

TEST(Alloc, InterleaveReusesFreedBlocks) {
  const natle::sim::MachineConfig cfg = natle::sim::FourSocketRing();
  SimAllocator a(true, PlacePolicy::kInterleave, &cfg);
  void* p = a.alloc(64, 3);
  a.free(p);
  // Freed interleaved blocks return to the shared interleaved arena's free
  // list regardless of which socket allocates next.
  void* q = a.alloc(64, 1);
  EXPECT_EQ(p, q);
}

TEST(Directory, ForEachIteratesInAscendingLineOrder) {
  Directory d;
  // Insertion order scrambled; unordered_map hash order would scramble it
  // differently again.
  for (uint64_t line : {900u, 3u, 512u, 77u, 1u, 4096u}) d.lookup(line, 0);
  std::vector<uint64_t> walked;
  d.forEach([&](uint64_t line, LineState&) { walked.push_back(line); });
  EXPECT_EQ(walked, (std::vector<uint64_t>{1, 3, 77, 512, 900, 4096}));
}

TEST(Directory, ForEachVisitsEveryLineExactlyOnce) {
  // The forEach contract diagnostics rely on: ascending order AND one visit
  // per line, for any insertion history (including re-lookups, which must
  // not duplicate entries).
  Directory d;
  std::vector<uint64_t> lines;
  uint64_t x = 12345;
  for (int i = 0; i < 1000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;  // LCG scramble
    lines.push_back(x >> 16);
  }
  for (uint64_t line : lines) d.lookup(line, 0);
  for (uint64_t line : lines) d.lookup(line, 1);  // re-lookup: no duplicates
  std::vector<uint64_t> walked;
  d.forEach([&](uint64_t line, LineState&) { walked.push_back(line); });
  std::vector<uint64_t> want = lines;
  std::sort(want.begin(), want.end());
  want.erase(std::unique(want.begin(), want.end()), want.end());
  EXPECT_EQ(walked, want);
}

// --- interconnect ---------------------------------------------------------

TEST(Interconnect, OneHopCollapsesToBaseCosts) {
  const natle::sim::MachineConfig cfg = natle::sim::LargeMachine();
  Interconnect net(cfg);
  EXPECT_EQ(net.hops(0, 1), 1);
  EXPECT_EQ(net.scaled(500, 0, 1), 500u);  // exactly base, no FP rounding
  // First transfer at t=0 passes straight through; a second issued at the
  // same instant queues behind the link occupancy.
  EXPECT_EQ(net.transferDelay(0, 1, 0), 0u);
  EXPECT_EQ(net.transferDelay(0, 1, 0), cfg.link_occupancy);
}

TEST(Interconnect, HopScalingAndLongerHolds) {
  const natle::sim::MachineConfig cfg = natle::sim::FourSocketRing();
  Interconnect net(cfg);
  EXPECT_EQ(net.hops(0, 2), 2);
  // hop_factor 0.5: two hops cost 1.5x base.
  EXPECT_EQ(net.scaled(500, 0, 2), 750u);
  EXPECT_EQ(net.scaled(500, 0, 1), 500u);
  // A 2-hop transfer reserves its link twice as long.
  EXPECT_EQ(net.transferDelay(0, 2, 0), 0u);
  EXPECT_EQ(net.transferDelay(0, 2, 0), 2u * cfg.link_occupancy);
}

TEST(Interconnect, LinksQueueIndependently) {
  const natle::sim::MachineConfig cfg = natle::sim::FourSocketRing();
  Interconnect net(cfg);
  // Saturate the {0,1} link.
  EXPECT_EQ(net.transferDelay(0, 1, 0), 0u);
  EXPECT_EQ(net.transferDelay(0, 1, 0), cfg.link_occupancy);
  // Other pairs are unaffected.
  EXPECT_EQ(net.transferDelay(2, 3, 0), 0u);
  EXPECT_EQ(net.transferDelay(0, 3, 0), 0u);
  // The pair index is unordered: (1, 0) shares the queue with (0, 1).
  EXPECT_EQ(net.transferDelay(1, 0, 0), 2u * cfg.link_occupancy);
}

TEST(Interconnect, FaultSpikeTargetsOnePair) {
  natle::fault::FaultSpec spec;
  std::string err;
  ASSERT_TRUE(natle::fault::FaultSpec::parse(
      "link:extra=900,period_ms=1,duration_ms=1,jitter=0,from=0,to=2;seed=5",
      &spec, &err))
      << err;
  const natle::sim::MachineConfig cfg = natle::sim::FourSocketRing();
  natle::fault::FaultSchedule sched(spec, cfg);
  Interconnect net(cfg);
  net.setFaults(&sched);
  // With zero jitter the first window is [1ms, 2ms); query inside it. The
  // spike hits the targeted pair only.
  const uint64_t t = cfg.msToCycles(1.2);
  EXPECT_EQ(net.transferDelay(0, 2, t), 900u);
  EXPECT_EQ(net.transferDelay(1, 3, t), 0u);
}
