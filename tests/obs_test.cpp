// Tests for the observability layer: Attribution aggregation (killer→victim
// matrix, per-line heatmap, fallback episodes), Tracer retention and seq-order
// merging, end-to-end attribution through Env, and the determinism contract —
// tracing never perturbs simulation results and identical runs produce
// byte-identical dumps.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "htm/env.hpp"
#include "obs/trace.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::obs;
using htm::AbortReason;

namespace {

TraceEvent mkBegin(uint64_t clock, int tid, int socket) {
  TraceEvent e;
  e.clock = clock;
  e.kind = EventKind::kTxBegin;
  e.tid = static_cast<int16_t>(tid);
  e.socket = static_cast<int8_t>(socket);
  e.attempt = 1;
  return e;
}

TraceEvent mkCommit(uint64_t clock, int tid, int socket) {
  TraceEvent e;
  e.clock = clock;
  e.kind = EventKind::kTxCommit;
  e.tid = static_cast<int16_t>(tid);
  e.socket = static_cast<int8_t>(socket);
  return e;
}

TraceEvent mkAbort(uint64_t clock, int tid, int socket, int killer_tid,
                   int killer_socket, AbortReason r, uint64_t line) {
  TraceEvent e;
  e.clock = clock;
  e.kind = EventKind::kTxAbort;
  e.reason = r;
  e.tid = static_cast<int16_t>(tid);
  e.socket = static_cast<int8_t>(socket);
  e.killer_tid = static_cast<int16_t>(killer_tid);
  e.killer_socket = static_cast<int8_t>(killer_socket);
  e.line = line;
  return e;
}

TraceEvent mkFallback(uint64_t clock, int tid, int socket) {
  TraceEvent e;
  e.clock = clock;
  e.kind = EventKind::kLockFallback;
  e.tid = static_cast<int16_t>(tid);
  e.socket = static_cast<int8_t>(socket);
  return e;
}

}  // namespace

TEST(Attribution, CountsAndMatrix) {
  Attribution a;
  a.consume(mkBegin(100, 0, 0));
  a.consume(mkAbort(200, 0, 0, 40, 1, AbortReason::kConflict, 77));  // cross
  a.consume(mkBegin(300, 0, 0));
  a.consume(mkAbort(400, 0, 0, 1, 0, AbortReason::kConflict, 77));  // intra
  a.consume(mkBegin(500, 0, 0));
  a.consume(mkAbort(600, 0, 0, -1, -1, AbortReason::kCapacity, 99));  // self
  a.consume(mkBegin(700, 0, 0));
  a.consume(mkCommit(800, 0, 0));

  EXPECT_EQ(a.txBegins(), 4u);
  EXPECT_EQ(a.txCommits(), 1u);
  EXPECT_EQ(a.txAborts(), 3u);
  EXPECT_EQ(a.abortsByReason(AbortReason::kConflict), 2u);
  EXPECT_EQ(a.abortsByReason(AbortReason::kCapacity), 1u);
  EXPECT_EQ(a.crossSocketAborts(), 1u);
  EXPECT_EQ(a.intraSocketAborts(), 1u);
  EXPECT_EQ(a.selfOrUnknownAborts(), 1u);
  ASSERT_EQ(a.matrix().size(), 2u);  // grown to max socket seen + 1
  EXPECT_EQ(a.matrix()[1][0], 1u);   // socket-1 killer, socket-0 victim
  EXPECT_EQ(a.matrix()[0][0], 1u);

  // Per-line heatmap: line 77 twice, line 99 once; ties cannot arise here.
  const auto hot = a.hotLines(8);
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_EQ(hot[0].first, 77u);
  EXPECT_EQ(hot[0].second, 2u);
  EXPECT_EQ(hot[1].first, 99u);
}

TEST(Attribution, HotLinesTieBreaksTowardLowerLineId) {
  Attribution a;
  a.consume(mkAbort(1, 0, 0, 1, 0, AbortReason::kConflict, 500));
  a.consume(mkAbort(2, 0, 0, 1, 0, AbortReason::kConflict, 300));
  const auto hot = a.hotLines(8);
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_EQ(hot[0].first, 300u);  // equal counts: lower id first
  EXPECT_EQ(hot[1].first, 500u);
  EXPECT_EQ(a.hotLines(1).size(), 1u);
}

TEST(Attribution, FallbackEpisodes) {
  Attribution a;
  // Three fallbacks within the gap: one episode of length 3.
  a.consume(mkFallback(0, 0, 0));
  a.consume(mkFallback(10000, 1, 0));
  a.consume(mkFallback(20000, 2, 0));
  // A gap larger than kEpisodeGapCycles ends the episode; the next two
  // fallbacks form a second episode of length 2.
  a.consume(mkFallback(200000, 0, 0));
  a.consume(mkFallback(210000, 1, 0));
  EXPECT_EQ(a.lockFallbacks(), 5u);
  EXPECT_EQ(a.fallbackEpisodes(), 2u);
  EXPECT_EQ(a.longestFallbackEpisode(), 3u);

  // An isolated fallback (no neighbour within the gap) is not an episode.
  Attribution b;
  b.consume(mkFallback(0, 0, 0));
  EXPECT_EQ(b.fallbackEpisodes(), 0u);
}

TEST(Attribution, MergeSumsEverything) {
  Attribution a, b;
  a.consume(mkBegin(1, 0, 0));
  a.consume(mkAbort(2, 0, 0, 40, 1, AbortReason::kConflict, 7));
  b.consume(mkBegin(1, 0, 0));
  b.consume(mkAbort(2, 0, 0, 40, 1, AbortReason::kConflict, 7));
  b.consume(mkCommit(3, 0, 0));
  a += b;
  EXPECT_EQ(a.txBegins(), 2u);
  EXPECT_EQ(a.txCommits(), 1u);
  EXPECT_EQ(a.crossSocketAborts(), 2u);
  EXPECT_EQ(a.matrix()[1][0], 2u);
  EXPECT_EQ(a.lineAborts().at(7), 2u);
}

TEST(Attribution, JsonIsDeterministicAndStructured) {
  auto build = [] {
    Attribution a;
    a.consume(mkBegin(1, 0, 0));
    a.consume(mkAbort(2, 0, 0, 40, 1, AbortReason::kConflict, 7));
    a.consume(mkCommit(3, 0, 0));
    return a.toJson();
  };
  const std::string j1 = build();
  EXPECT_EQ(j1, build());
  EXPECT_NE(j1.find("\"tx_begins\":1"), std::string::npos);
  EXPECT_NE(j1.find("\"killer_matrix\""), std::string::npos);
  EXPECT_NE(j1.find("\"cross_socket_aborts\":1"), std::string::npos);
  EXPECT_NE(j1.find("\"hot_lines\""), std::string::npos);
}

TEST(Tracer, AggregatesWithoutRetentionByDefault) {
  Tracer t;
  t.record(mkBegin(1, 0, 0));
  t.record(mkCommit(2, 0, 0));
  EXPECT_EQ(t.eventCount(), 2u);
  EXPECT_EQ(t.attribution().txCommits(), 1u);
  EXPECT_TRUE(t.dumpJsonl().empty());  // keep_events was false
}

TEST(Tracer, DumpMergesThreadsInEmissionOrder) {
  Tracer t(/*keep_events=*/true);
  t.record(mkBegin(10, 1, 0));    // seq 0
  t.record(mkBegin(20, 0, 0));    // seq 1
  t.record(mkCommit(30, 1, 0));   // seq 2
  t.record(mkCommit(40, 0, 0));   // seq 3
  const std::string dump = t.dumpJsonl();
  // One JSON object per line, in seq order despite per-thread buffering.
  const size_t p0 = dump.find("\"seq\":0");
  const size_t p1 = dump.find("\"seq\":1");
  const size_t p2 = dump.find("\"seq\":2");
  const size_t p3 = dump.find("\"seq\":3");
  ASSERT_NE(p0, std::string::npos);
  ASSERT_NE(p3, std::string::npos);
  EXPECT_LT(p0, p1);
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p3);
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 4);
}

TEST(Tracer, RingCapDropsOldestAndCounts) {
  Tracer t(/*keep_events=*/true, /*ring_capacity=*/2);
  t.record(mkBegin(1, 0, 0));
  t.record(mkCommit(2, 0, 0));
  t.record(mkBegin(3, 0, 0));
  EXPECT_EQ(t.eventCount(), 3u);
  EXPECT_EQ(t.droppedCount(), 1u);
  const std::string dump = t.dumpJsonl();
  EXPECT_EQ(dump.find("\"seq\":0"), std::string::npos);  // oldest dropped
  EXPECT_NE(dump.find("\"seq\":1"), std::string::npos);
  EXPECT_NE(dump.find("\"seq\":2"), std::string::npos);
  // Aggregation saw everything regardless of the ring.
  EXPECT_EQ(t.attribution().txBegins(), 2u);
}

namespace {

// Victim transaction on socket 0 vs a plain writer placed on thread `killer`;
// returns the tracer's attribution for the run and the victim line's stable
// id through `line_out`.
void runConflict(int killer_thread, Tracer& tracer, uint64_t* line_out) {
  sim::MachineConfig cfg = sim::LargeMachine();
  htm::Env env(cfg);
  env.setTracer(&tracer);
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 1;
  *line_out = env.allocator().stableLineId(mem::lineOf(x));
  env.spawnWorker(
      [&](htm::ThreadCtx& ctx) {
        unsigned s;
        NATLE_TX_BEGIN(ctx, s);
        if (s == htm::kTxStarted) {
          ctx.store(*x, int64_t{5});
          ctx.work(100000);
          ctx.txCommit();
        }
      },
      sim::placeThread(cfg, sim::PinPolicy::kFillSocketFirst, 0));
  env.spawnWorker(
      [&](htm::ThreadCtx& ctx) {
        ctx.work(5000);
        ctx.store(*x, int64_t{2});
      },
      sim::placeThread(cfg, sim::PinPolicy::kFillSocketFirst, killer_thread));
  env.run();
}

}  // namespace

TEST(ObsEnv, IntraSocketConflictAttribution) {
  Tracer tracer(/*keep_events=*/true);
  uint64_t line = 0;
  runConflict(/*killer_thread=*/1, tracer, &line);
  const Attribution& a = tracer.attribution();
  EXPECT_EQ(a.txBegins(), 1u);
  EXPECT_EQ(a.abortsByReason(AbortReason::kConflict), 1u);
  EXPECT_EQ(a.intraSocketAborts(), 1u);
  EXPECT_EQ(a.crossSocketAborts(), 0u);
  ASSERT_NE(line, 0u);
  EXPECT_EQ(a.lineAborts().at(line), 1u);
  const std::string dump = tracer.dumpJsonl();
  EXPECT_NE(dump.find("\"kind\":\"tx_abort\""), std::string::npos);
  EXPECT_NE(dump.find("\"killer_tid\":1"), std::string::npos);
}

TEST(ObsEnv, CrossSocketConflictAttribution) {
  // Thread 40 lands on socket 1 under fill-socket-first (36 threads/socket).
  Tracer tracer;
  uint64_t line = 0;
  runConflict(/*killer_thread=*/40, tracer, &line);
  const Attribution& a = tracer.attribution();
  EXPECT_EQ(a.crossSocketAborts(), 1u);
  EXPECT_EQ(a.intraSocketAborts(), 0u);
  ASSERT_GE(a.matrix().size(), 2u);
  EXPECT_EQ(a.matrix()[1][0], 1u);  // socket-1 killer, socket-0 victim
}

TEST(ObsEnv, SelfCapacityAbortTracedWithEvictions) {
  sim::MachineConfig cfg = sim::LargeMachine();
  htm::Env env(cfg);
  Tracer tracer(/*keep_events=*/true);
  env.setTracer(&tracer);
  const uint32_t ways = cfg.l1_ways;
  const uint32_t sets = cfg.l1_sets;
  std::vector<int64_t*> blocks;
  while (blocks.size() < ways + 2) {
    void* p = env.allocShared(64);
    if (mem::lineOf(p) % sets == 0) blocks.push_back(static_cast<int64_t*>(p));
  }
  env.spawnWorker(
      [&](htm::ThreadCtx& ctx) {
        unsigned s;
        NATLE_TX_BEGIN(ctx, s);
        if (s == htm::kTxStarted) {
          for (auto* b : blocks) ctx.store(*b, int64_t{1});
          ctx.txCommit();
        }
      },
      sim::placeThread(cfg, sim::PinPolicy::kFillSocketFirst, 0));
  env.run();
  const Attribution& a = tracer.attribution();
  EXPECT_EQ(a.abortsByReason(AbortReason::kCapacity), 1u);
  EXPECT_EQ(a.selfOrUnknownAborts(), 1u);  // no other thread involved
  EXPECT_GE(a.capacityEvictions(), 1u);
  const std::string dump = tracer.dumpJsonl();
  EXPECT_NE(dump.find("\"kind\":\"capacity_evict\""), std::string::npos);
  EXPECT_NE(dump.find("\"set\":0"), std::string::npos);
}

TEST(ObsSetBench, TracingNeverPerturbsAndIsDeterministic) {
  workload::SetBenchConfig cfg;
  cfg.nthreads = 8;
  cfg.key_range = 256;
  cfg.warmup_ms = 0.1;
  cfg.measure_ms = 0.3;
  cfg.trials = 2;
  const workload::SetBenchResult base = runSetBench(cfg);
  EXPECT_FALSE(base.has_attribution);

  cfg.trace = true;
  cfg.trace_raw = true;
  const workload::SetBenchResult t1 = runSetBench(cfg);
  const workload::SetBenchResult t2 = runSetBench(cfg);

  // Tracing is observational: simulation results are bit-identical.
  EXPECT_EQ(base.mops, t1.mops);
  EXPECT_EQ(base.stats.tx_begins, t1.stats.tx_begins);
  EXPECT_EQ(base.stats.totalAborts(), t1.stats.totalAborts());

  // The trace agrees with the stats counters it shadows.
  ASSERT_TRUE(t1.has_attribution);
  EXPECT_EQ(t1.attribution.txBegins(), t1.stats.tx_begins);
  EXPECT_EQ(t1.attribution.txCommits(), t1.stats.tx_commits);
  EXPECT_EQ(t1.attribution.txAborts(), t1.stats.totalAborts());

  // Identical configs produce byte-identical dumps and summaries (stable
  // line ids make this hold across processes too; CI checks that half).
  EXPECT_EQ(t1.attribution.toJson(), t2.attribution.toJson());
  ASSERT_FALSE(t1.raw_trace.empty());
  EXPECT_EQ(t1.raw_trace, t2.raw_trace);
  EXPECT_EQ(t1.raw_trace.front(), '{');
  EXPECT_EQ(t1.raw_trace.back(), '\n');
}

TEST(Attribution, HopHistogramBucketsAbortsByDistance) {
  const auto mc = sim::FourSocketRing();
  std::vector<uint8_t> hops(16);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      hops[a * 4 + b] = static_cast<uint8_t>(a == b ? 0 : mc.hops(a, b));
    }
  }
  Attribution at;
  at.setTopology(4, hops);
  auto abort_event = [](int killer_socket, int victim_socket) {
    TraceEvent e;
    e.kind = EventKind::kTxAbort;
    e.reason = htm::AbortReason::kConflict;
    e.socket = static_cast<int8_t>(victim_socket);
    e.killer_tid = killer_socket >= 0 ? 1 : -1;
    e.killer_socket = static_cast<int8_t>(killer_socket);
    return e;
  };
  at.consume(abort_event(0, 0));   // same socket: hop 0
  at.consume(abort_event(0, 1));   // ring neighbours: hop 1
  at.consume(abort_event(3, 0));   // hop 1
  at.consume(abort_event(0, 2));   // opposite sockets: hop 2
  at.consume(abort_event(-1, 2));  // self-inflicted: not attributed
  ASSERT_EQ(at.abortsByHops().size(), 3u);
  EXPECT_EQ(at.abortsByHops()[0], 1u);
  EXPECT_EQ(at.abortsByHops()[1], 2u);
  EXPECT_EQ(at.abortsByHops()[2], 1u);
  EXPECT_EQ(at.selfOrUnknownAborts(), 1u);
  EXPECT_NE(at.toJson().find("\"aborts_by_hops\":[1,2,1]"), std::string::npos)
      << at.toJson();

  // Merging adopts the topology and sums histograms.
  Attribution other;
  Attribution merged;
  other.setTopology(4, hops);
  other.consume(abort_event(2, 0));  // hop 2
  merged += at;
  merged += other;
  ASSERT_EQ(merged.abortsByHops().size(), 3u);
  EXPECT_EQ(merged.abortsByHops()[2], 2u);
}

TEST(Attribution, TrivialTopologyLeavesJsonUnchanged) {
  // The default 2-socket machine is all-adjacent: installing its distance
  // matrix must not add keys (default result files stay byte-identical).
  Attribution at;
  at.setTopology(2, {0, 1, 1, 0});
  TraceEvent e;
  e.kind = EventKind::kTxAbort;
  e.reason = htm::AbortReason::kConflict;
  e.socket = 0;
  e.killer_tid = 1;
  e.killer_socket = 1;
  at.consume(e);
  EXPECT_TRUE(at.abortsByHops().empty());
  EXPECT_EQ(at.toJson().find("aborts_by_hops"), std::string::npos);
  EXPECT_EQ(at.crossSocketAborts(), 1u);
}
