// Tests for the Section 4.1 alternative mechanisms: the backoff TLE lock
// and the delegation fabric.
#include <gtest/gtest.h>

#include <set>

#include "ds/avl.hpp"
#include "sync/backoff_tle.hpp"
#include "sync/delegation.hpp"

using namespace natle;
using namespace natle::htm;

namespace {

sim::HwSlot slotFor(const sim::MachineConfig& cfg, int i) {
  return sim::placeThread(cfg, sim::PinPolicy::kFillSocketFirst, i);
}

}  // namespace

TEST(BackoffTle, CounterIsExactAcrossSockets) {
  sim::MachineConfig mc = sim::LargeMachine();
  Env env(mc);
  sync::BackoffTleLock lock(env, /*remote_backoff=*/2000);
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 0;
  for (int i : {0, 1, 2, 40, 41, 42}) {  // both sockets
    env.spawnWorker(
        [&](ThreadCtx& ctx) {
          for (int r = 0; r < 40; ++r) {
            lock.execute(ctx, [&] { ctx.store(*x, ctx.load(*x) + 1); });
            ctx.work(200);
          }
        },
        slotFor(mc, i));
  }
  env.run();
  EXPECT_EQ(*x, 6 * 40);
}

TEST(BackoffTle, RemoteThreadsRetireFewerOpsUnderContention) {
  // With a long remote backoff, socket-1 threads should complete far fewer
  // operations per unit time than socket-0 threads on a contended counter.
  sim::MachineConfig mc = sim::LargeMachine();
  Env env(mc);
  sync::BackoffTleLock lock(env, /*remote_backoff=*/60000);
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 0;
  const uint64_t t_end = mc.msToCycles(0.8);
  uint64_t local_ops = 0;
  uint64_t remote_ops = 0;
  for (int i : {0, 1, 40, 41}) {
    env.spawnWorker(
        [&, i, t_end](ThreadCtx& ctx) {
          uint64_t n = 0;
          while (ctx.nowCycles() < t_end) {
            lock.execute(ctx, [&] {
              ctx.store(*x, ctx.load(*x) + 1);
              ctx.work(300);
            });
            ++n;
          }
          (i < 36 ? local_ops : remote_ops) += n;
        },
        slotFor(mc, i));
  }
  env.run();
  EXPECT_GT(local_ops, 2 * remote_ops)
      << "starvation of the backed-off socket (the paper's observation)";
}

TEST(Delegation, ExecutesOperationsCorrectly) {
  sim::MachineConfig mc = sim::LargeMachine();
  Env env(mc);
  ds::AvlTree tree(env);
  sync::TleLock lock(env);
  constexpr int kClients = 4;
  constexpr int64_t kRange = 64;
  sync::DelegationFabric fabric(env, lock, kClients, mc.sockets, kRange / 2,
                                /*batch=*/4);
  auto exec = [&](ThreadCtx& ctx, int64_t op, int64_t key) -> int64_t {
    switch (op) {
      case sync::DelegationFabric::kInsert: return tree.insert(ctx, key);
      case sync::DelegationFabric::kErase: return tree.erase(ctx, key);
      default: return tree.contains(ctx, key);
    }
  };
  for (int s = 0; s < mc.sockets; ++s) {
    env.spawnWorker([&, s](ThreadCtx& ctx) { fabric.serve(ctx, s, exec); },
                    slotFor(mc, s * 36));
  }
  auto* finished = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *finished = 0;
  std::vector<int64_t> net(kRange, 0);
  for (int c = 0; c < kClients; ++c) {
    env.spawnWorker(
        [&, c](ThreadCtx& ctx) {
          auto& rng = ctx.rng();
          for (int r = 0; r < 60; ++r) {
            const int64_t k = static_cast<int64_t>(rng.below(kRange));
            const bool ins = (rng.next() & 1) != 0;
            const int64_t ok = fabric.request(
                ctx, c,
                ins ? sync::DelegationFabric::kInsert
                    : sync::DelegationFabric::kErase,
                k);
            if (ok != 0) net[k] += ins ? 1 : -1;
          }
          if (ctx.fetchAdd(*finished, int64_t{1}) + 1 == kClients) {
            fabric.stop(ctx);
          }
        },
        slotFor(mc, 1 + c));
  }
  env.run();
  auto& sc = env.setupCtx();
  ASSERT_TRUE(tree.validate(sc));
  for (int64_t k = 0; k < kRange; ++k) {
    EXPECT_EQ(net[k], tree.contains(sc, k) ? 1 : 0) << "key " << k;
  }
}

TEST(Delegation, RoutesByKeyRange) {
  // Keys below the split must be served by server 0, the rest by server 1.
  // The executor encodes the serving socket into the (transactional) result
  // — critical sections may be re-executed, so the identity must travel
  // through rollback-safe state, not raw captures.
  sim::MachineConfig mc = sim::LargeMachine();
  Env env(mc);
  sync::TleLock lock(env);
  sync::DelegationFabric fabric(env, lock, 1, mc.sockets, 100, 1);
  int64_t reply_for_low = -1;
  int64_t reply_for_high = -1;
  for (int s = 0; s < mc.sockets; ++s) {
    env.spawnWorker(
        [&, s](ThreadCtx& ctx) {
          fabric.serve(ctx, s,
                       [s](ThreadCtx&, int64_t, int64_t) -> int64_t {
                         return 1000 + s;  // which server executed this
                       });
        },
        slotFor(mc, s * 36));
  }
  env.spawnWorker(
      [&](ThreadCtx& ctx) {
        reply_for_low =
            fabric.request(ctx, 0, sync::DelegationFabric::kContains, 5);
        reply_for_high =
            fabric.request(ctx, 0, sync::DelegationFabric::kContains, 150);
        fabric.stop(ctx);
      },
      slotFor(mc, 1));
  env.run();
  EXPECT_EQ(reply_for_low, 1000);   // key 5 -> server on socket 0
  EXPECT_EQ(reply_for_high, 1001);  // key 150 -> server on socket 1
}
