// Fault-injection subsystem: spec parsing, window determinism, per-channel
// schedule behavior, watchdog/livelock detection, and the determinism guard
// (faults compiled in but disabled must not perturb results).
#include <gtest/gtest.h>

#include <string>

#include "fault/fault.hpp"
#include "sim/config.hpp"
#include "sim/machine.hpp"
#include "sim/rng.hpp"
#include "workload/json.hpp"
#include "workload/setbench.hpp"

namespace natle {
namespace {

TEST(FaultSpec, ParsesFullGrammar) {
  fault::FaultSpec s;
  std::string err;
  ASSERT_TRUE(fault::FaultSpec::parse(
      "storm:rate=2e-4,period_ms=1,duration_ms=0.2,socket=1,jitter=0.3;"
      "squeeze:ways=6,period_ms=0.7,duration_ms=0.15;"
      "link:extra=300,period_ms=0.9,duration_ms=0.2;"
      "stall:cycles=40000,period_ms=1.1,duration_ms=0.05;"
      "seed=7",
      &s, &err))
      << err;
  EXPECT_DOUBLE_EQ(s.storm_rate, 2e-4);
  EXPECT_EQ(s.storm_socket, 1);
  EXPECT_DOUBLE_EQ(s.storm.jitter, 0.3);
  EXPECT_EQ(s.squeeze_ways, 6u);
  EXPECT_EQ(s.link_extra, 300u);
  EXPECT_EQ(s.stall_cycles, 40000u);
  EXPECT_EQ(s.seed, 7u);
  EXPECT_TRUE(s.enabled());
}

TEST(FaultSpec, RoundTripsThroughSpecString) {
  fault::FaultSpec s;
  ASSERT_TRUE(fault::FaultSpec::parse(
      "storm:rate=1e-3,period_ms=0.5,duration_ms=0.1;stall:cycles=100,"
      "period_ms=2,duration_ms=0.4;seed=42",
      &s, nullptr));
  const std::string text = s.toSpecString();
  fault::FaultSpec s2;
  std::string err;
  ASSERT_TRUE(fault::FaultSpec::parse(text, &s2, &err)) << text << ": " << err;
  EXPECT_EQ(s2.toSpecString(), text);
}

TEST(FaultSpec, RejectsUnknownChannelAndKey) {
  fault::FaultSpec s;
  std::string err;
  EXPECT_FALSE(fault::FaultSpec::parse("blizzard:rate=1", &s, &err));
  EXPECT_FALSE(
      fault::FaultSpec::parse("storm:rat=1,period_ms=1,duration_ms=1", &s,
                              &err));
  EXPECT_FALSE(fault::FaultSpec::parse("squeeze:ways=65,period_ms=1", &s,
                                       &err));
}

TEST(FaultSpec, DisabledWithoutIntensityOrWindows) {
  fault::FaultSpec s;
  // A window with no intensity is inert; intensity with no window too.
  ASSERT_TRUE(
      fault::FaultSpec::parse("storm:period_ms=1,duration_ms=0.5", &s,
                              nullptr));
  EXPECT_FALSE(s.enabled());
  ASSERT_TRUE(fault::FaultSpec::parse("storm:rate=1e-3", &s, nullptr));
  EXPECT_FALSE(s.enabled());
}

TEST(FaultSchedule, StormRespectsSocketFilterAndWindows) {
  fault::FaultSpec s;
  ASSERT_TRUE(fault::FaultSpec::parse(
      "storm:rate=1e-3,period_ms=1,duration_ms=0.2,socket=1,jitter=0;seed=5",
      &s, nullptr));
  const sim::MachineConfig mc = sim::LargeMachine();
  fault::FaultSchedule sched(s, mc);
  // With jitter=0 the first window starts exactly one period in.
  const uint64_t period = static_cast<uint64_t>(1.0 * 1e6 * mc.ghz);
  const uint64_t dur = static_cast<uint64_t>(0.2 * 1e6 * mc.ghz);
  // Inside the first window, the hazard integrates rate over the overlap.
  const double inside =
      sched.stormHazard(1, period + dur / 4, period + dur / 2);
  EXPECT_GT(inside, 0.0);
  // Wrong socket: zero.
  EXPECT_DOUBLE_EQ(sched.stormHazard(0, period + dur / 4, period + dur / 2),
                   0.0);
  // Before any window: zero.
  EXPECT_DOUBLE_EQ(sched.stormHazard(1, 0, period / 2), 0.0);
}

TEST(FaultSchedule, DeterministicAcrossInstances) {
  fault::FaultSpec s;
  ASSERT_TRUE(fault::FaultSpec::parse(
      "storm:rate=1e-3,period_ms=0.3,duration_ms=0.1;squeeze:ways=4,"
      "period_ms=0.4,duration_ms=0.1;seed=11",
      &s, nullptr));
  const sim::MachineConfig mc = sim::LargeMachine();
  fault::FaultSchedule a(s, mc);
  fault::FaultSchedule b(s, mc);
  for (uint64_t t = 0; t < 20000000; t += 77777) {
    ASSERT_DOUBLE_EQ(a.stormHazard(0, t, t + 500), b.stormHazard(0, t, t + 500));
    ASSERT_EQ(a.maskedWays(3, t), b.maskedWays(3, t));
  }
}

TEST(FaultStreams, IndependentOfWorkloadSeeding) {
  // Fault streams derive from streamSeed(base, domain, index); the workload
  // thread seeding path (seed * golden + tid + 1 -> splitmix) must never
  // collide with them for small seeds/tids.
  uint64_t wl_state = 1 * 0x9e3779b97f4a7c15ULL + 0 + 1;
  const uint64_t wl = sim::splitmix64(wl_state);
  EXPECT_NE(wl, sim::streamSeed(1, sim::kStreamFaultStorm, 0));
  EXPECT_NE(sim::streamSeed(1, sim::kStreamFaultStorm, 0),
            sim::streamSeed(1, sim::kStreamFaultSqueeze, 0));
  EXPECT_NE(sim::streamSeed(1, sim::kStreamFaultStorm, 0),
            sim::streamSeed(1, sim::kStreamFaultStorm, 1));
}

// The determinism guard: a config with the fault subsystem compiled in but
// no fault spec must produce byte-identical config JSON and identical
// results to the pre-fault behavior (no new keys, no extra RNG draws).
TEST(FaultDeterminismGuard, DisabledFaultsDoNotPerturbResults) {
  workload::SetBenchConfig cfg;
  cfg.nthreads = 8;
  cfg.key_range = 512;
  cfg.measure_ms = 0.4;
  cfg.warmup_ms = 0.1;
  cfg.seed = 3;
  const std::string j = workload::toJson(cfg);
  EXPECT_EQ(j.find("fault"), std::string::npos);
  EXPECT_EQ(j.find("watchdog"), std::string::npos);

  const workload::SetBenchResult base = workload::runSetBench(cfg);
  // Arming the watchdog (without tripping) must not change results either:
  // progress tracking is observational.
  workload::SetBenchConfig wd = cfg;
  wd.watchdog_ms = 50.0;
  const workload::SetBenchResult guarded = workload::runSetBench(wd);
  EXPECT_EQ(base.stats.ops, guarded.stats.ops);
  EXPECT_EQ(base.stats.tx_commits, guarded.stats.tx_commits);
  EXPECT_EQ(base.stats.totalAborts(), guarded.stats.totalAborts());
  EXPECT_DOUBLE_EQ(base.mops, guarded.mops);
}

TEST(FaultInjection, StormChangesResultsOnlyWhenEnabled) {
  workload::SetBenchConfig cfg;
  cfg.nthreads = 8;
  cfg.key_range = 512;
  cfg.measure_ms = 0.6;
  cfg.warmup_ms = 0.1;
  cfg.seed = 3;
  const workload::SetBenchResult base = workload::runSetBench(cfg);

  workload::SetBenchConfig stormy = cfg;
  ASSERT_TRUE(fault::FaultSpec::parse(
      "storm:rate=5e-4,period_ms=0.1,duration_ms=0.05;seed=2", &stormy.fault,
      nullptr));
  const workload::SetBenchResult hit = workload::runSetBench(stormy);
  EXPECT_GT(
      hit.stats.tx_aborts[static_cast<int>(htm::AbortReason::kSpurious)],
      base.stats.tx_aborts[static_cast<int>(htm::AbortReason::kSpurious)]);
  // And the injected run itself is reproducible.
  const workload::SetBenchResult hit2 = workload::runSetBench(stormy);
  EXPECT_EQ(hit.stats.ops, hit2.stats.ops);
  EXPECT_EQ(hit.stats.totalAborts(), hit2.stats.totalAborts());
}

// --- watchdog / livelock ---------------------------------------------------

TEST(Watchdog, LockHolderStallTripsWithinBudget) {
  // Always-on ~10ms lock-holder stall vs a 2ms progress budget: the seeded
  // livelock fixture. The watchdog must convert it into a WatchdogError
  // whose firing clock is within (budget, stall] of the stall start.
  workload::SetBenchConfig cfg;
  cfg.nthreads = 8;
  cfg.key_range = 2048;
  cfg.measure_ms = 2.0;
  cfg.warmup_ms = 0.2;
  cfg.watchdog_ms = 2.0;
  ASSERT_TRUE(fault::FaultSpec::parse(
      "stall:cycles=23000000,period_ms=0.01,duration_ms=50;seed=1",
      &cfg.fault, nullptr));
  const sim::MachineConfig mc = cfg.machine;
  try {
    workload::runSetBench(cfg);
    FAIL() << "expected WatchdogError";
  } catch (const sim::WatchdogError& e) {
    EXPECT_EQ(e.kind, "watchdog");
    // Fired within budget of the last progress: the stall begins within the
    // first ~0.1ms, so the trip lands well before the 10ms stall completes
    // plus the 2ms budget.
    EXPECT_LE(e.fired_clock, mc.msToCycles(2.0) + 23000000 + mc.msToCycles(1.0));
    EXPECT_NE(e.diagnostic.find("threads:"), std::string::npos);
    EXPECT_NE(e.diagnostic.find("tle lock line="), std::string::npos);
  }
}

TEST(Watchdog, DiagnosticIsDeterministic) {
  workload::SetBenchConfig cfg;
  cfg.nthreads = 8;
  cfg.key_range = 2048;
  cfg.measure_ms = 1.0;
  cfg.warmup_ms = 0.1;
  cfg.watchdog_ms = 1.0;
  ASSERT_TRUE(fault::FaultSpec::parse(
      "stall:cycles=23000000,period_ms=0.01,duration_ms=50;seed=1",
      &cfg.fault, nullptr));
  std::string d1, d2;
  uint64_t c1 = 0, c2 = 0;
  for (int run = 0; run < 2; ++run) {
    try {
      workload::runSetBench(cfg);
      FAIL() << "expected WatchdogError";
    } catch (const sim::WatchdogError& e) {
      (run == 0 ? d1 : d2) = e.diagnostic;
      (run == 0 ? c1 : c2) = e.fired_clock;
    }
  }
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(c1, c2);
  EXPECT_FALSE(d1.empty());
}

TEST(Watchdog, CycleLimitCapsRunawaySimulation) {
  workload::SetBenchConfig cfg;
  cfg.nthreads = 4;
  cfg.key_range = 256;
  cfg.measure_ms = 10.0;
  cfg.warmup_ms = 0.1;
  cfg.cycle_limit_ms = 1.0;  // far below the configured measure window
  try {
    workload::runSetBench(cfg);
    FAIL() << "expected WatchdogError";
  } catch (const sim::WatchdogError& e) {
    EXPECT_EQ(e.kind, "cycle_limit");
    EXPECT_GE(e.fired_clock, cfg.machine.msToCycles(1.0));
  }
}

TEST(Watchdog, DeadlockedFibersAreDetected) {
  // Two fibers blocked forever: with the watchdog armed the machine reports
  // a deadlock instead of silently returning with blocked threads.
  sim::MachineConfig mc = sim::SmallMachine();
  sim::Machine m(mc);
  m.enableWatchdog(mc.msToCycles(1.0));
  for (int i = 0; i < 2; ++i) {
    m.spawn([](sim::SimThread& st) { st.machine->blockCurrent(); },
            sim::HwSlot{0, i, 0}, true);
  }
  try {
    m.run();
    FAIL() << "expected WatchdogError";
  } catch (const sim::WatchdogError& e) {
    EXPECT_EQ(e.kind, "deadlock");
    EXPECT_NE(e.diagnostic.find("state=blocked"), std::string::npos);
  }
}

TEST(FaultSpec, LinkPairTargetingParsesAndRoundTrips) {
  fault::FaultSpec s;
  std::string err;
  ASSERT_TRUE(fault::FaultSpec::parse(
      "link:extra=250,period_ms=1,duration_ms=0.3,from=1,to=3;seed=9", &s,
      &err))
      << err;
  EXPECT_EQ(s.link_from, 1);
  EXPECT_EQ(s.link_to, 3);
  const std::string text = s.toSpecString();
  EXPECT_NE(text.find("from=1"), std::string::npos);
  EXPECT_NE(text.find("to=3"), std::string::npos);
  fault::FaultSpec s2;
  ASSERT_TRUE(fault::FaultSpec::parse(text, &s2, &err)) << text << ": " << err;
  EXPECT_EQ(s2.toSpecString(), text);
  EXPECT_EQ(s2.link_from, 1);
  EXPECT_EQ(s2.link_to, 3);

  // Negative socket ids are rejected.
  EXPECT_FALSE(fault::FaultSpec::parse(
      "link:extra=250,period_ms=1,duration_ms=0.3,from=-2", &s, &err));
}

TEST(FaultSchedule, LinkPenaltyHonorsPairTargeting) {
  const sim::MachineConfig cfg = sim::FourSocketRing();
  // With zero jitter the first window is [1ms, 2ms); query inside it.
  const char* base = "link:extra=500,period_ms=1,duration_ms=1,jitter=0";
  const uint64_t t = cfg.msToCycles(1.5);

  // Both endpoints set: only the {1, 3} link is hit, in either order.
  fault::FaultSpec s;
  ASSERT_TRUE(fault::FaultSpec::parse(std::string(base) + ",from=1,to=3;seed=3",
                                      &s, nullptr));
  fault::FaultSchedule pair_sched(s, cfg);
  EXPECT_EQ(pair_sched.linkPenalty(1, 3, t), 500u);
  EXPECT_EQ(pair_sched.linkPenalty(3, 1, t), 500u);
  EXPECT_EQ(pair_sched.linkPenalty(0, 1, t), 0u);
  EXPECT_EQ(pair_sched.linkPenalty(0, 2, t), 0u);

  // Only `from` set: every link incident to socket 2.
  ASSERT_TRUE(fault::FaultSpec::parse(std::string(base) + ",from=2;seed=3", &s,
                                      nullptr));
  fault::FaultSchedule incident_sched(s, cfg);
  EXPECT_EQ(incident_sched.linkPenalty(2, 0, t), 500u);
  EXPECT_EQ(incident_sched.linkPenalty(1, 2, t), 500u);
  EXPECT_EQ(incident_sched.linkPenalty(0, 1, t), 0u);

  // Neither set: all links (and the legacy pair-agnostic query agrees).
  ASSERT_TRUE(
      fault::FaultSpec::parse(std::string(base) + ";seed=3", &s, nullptr));
  fault::FaultSchedule all_sched(s, cfg);
  EXPECT_EQ(all_sched.linkPenalty(0, 1, t), 500u);
  EXPECT_EQ(all_sched.linkPenalty(2, 3, t), 500u);
  EXPECT_EQ(all_sched.linkPenalty(t), 500u);  // legacy pair-agnostic query
}

}  // namespace
}  // namespace natle
