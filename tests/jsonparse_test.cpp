// JSON parser (workload/json_parse) and point-record serialization
// (exp/pointio): raw-slice fidelity, 64-bit counter round-trips, record
// round-trips and --resume ingestion.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "exp/pointio.hpp"
#include "exp/record.hpp"
#include "htm/abort.hpp"
#include "workload/json.hpp"
#include "workload/json_parse.hpp"

namespace natle {
namespace {

using workload::JsonValue;
using workload::parseJson;

TEST(JsonParse, ParsesScalarsArraysObjects) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(parseJson(
      R"({"a":1,"b":-2.5e3,"c":"hi","d":true,"e":null,"f":[1,2,[3]],"g":{}})",
      &v, &err))
      << err;
  ASSERT_TRUE(v.isObject());
  EXPECT_DOUBLE_EQ(v.find("a")->number, 1.0);
  EXPECT_DOUBLE_EQ(v.find("b")->number, -2500.0);
  EXPECT_EQ(v.find("c")->str, "hi");
  EXPECT_TRUE(v.find("d")->boolean);
  EXPECT_TRUE(v.find("e")->isNull());
  ASSERT_TRUE(v.find("f")->isArray());
  EXPECT_EQ(v.find("f")->items.size(), 3u);
  EXPECT_TRUE(v.find("f")->items[2].isArray());
  EXPECT_TRUE(v.find("g")->isObject());
  EXPECT_TRUE(v.find("g")->members.empty());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, DecodesStringEscapes) {
  JsonValue v;
  ASSERT_TRUE(parseJson(R"("a\"b\\c\nd\teé")", &v, nullptr));
  EXPECT_EQ(v.str, "a\"b\\c\nd\te\xc3\xa9");
  // \u escapes across the three UTF-8 width classes.
  ASSERT_TRUE(parseJson(R"("\u0041\u00e9\u20ac")", &v, nullptr));
  EXPECT_EQ(v.str, "A\xc3\xa9\xe2\x82\xac");
  EXPECT_FALSE(parseJson(R"("\uZZZZ")", &v, nullptr));
}

TEST(JsonParse, RejectsMalformedInput) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(parseJson("{\"a\":}", &v, &err));
  EXPECT_FALSE(parseJson("[1,2", &v, &err));
  EXPECT_FALSE(parseJson("1.2.3", &v, &err));
  EXPECT_FALSE(parseJson("{} trailing", &v, &err));
  EXPECT_FALSE(parseJson("\"unterminated", &v, &err));
  EXPECT_FALSE(parseJson("", &v, &err));
  // Depth bomb: past the recursion cap.
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(parseJson(deep, &v, &err));
}

TEST(JsonParse, KeepsRawSourceSlices) {
  JsonValue v;
  const std::string text = R"({"cfg":{"n":48,"x":1.5},"big":18446744073709551615})";
  ASSERT_TRUE(parseJson(text, &v, nullptr));
  // The raw slice is the exact source text of the value — this is what lets
  // configs and resumed records re-emit byte-identically.
  EXPECT_EQ(v.find("cfg")->raw, R"({"n":48,"x":1.5})");
  EXPECT_EQ(v.raw, text);
}

TEST(JsonParse, U64CountersAbove2Pow53RoundTrip) {
  // Doubles lose precision above 2^53; asU64 re-parses the raw digits.
  const uint64_t big = 0xfedcba9876543210ULL;  // 18364758544493064720
  JsonValue v;
  ASSERT_TRUE(parseJson("{\"c\":18364758544493064720}", &v, nullptr));
  EXPECT_EQ(v.find("c")->asU64(), big);
  EXPECT_NE(static_cast<uint64_t>(v.find("c")->number), big);
}

// --- pointio ---------------------------------------------------------------

exp::Job makeJob() {
  exp::Job j;
  j.series = "TLE-20";
  j.x = 48;
  j.trial = 1;
  j.seed = 0x123456789abcdef0ULL;
  j.config_json = R"({"nthreads":48,"seed":7})";
  return j;
}

TEST(PointIo, JobKeyIsStableAndDiscriminating) {
  const exp::Job j = makeJob();
  EXPECT_EQ(exp::jobKey(j),
            exp::jobKey(j.series, j.x, j.trial, j.seed, j.config_json));
  EXPECT_NE(exp::jobKey(j), exp::jobKey("TLE-5", j.x, j.trial, j.seed,
                                        j.config_json));
  EXPECT_NE(exp::jobKey(j),
            exp::jobKey(j.series, j.x, j.trial + 1, j.seed, j.config_json));
  EXPECT_NE(exp::jobKey(j),
            exp::jobKey(j.series, j.x, j.trial, j.seed, "{}"));
}

TEST(PointIo, OkRecordRoundTrips) {
  exp::PointData p;
  p.value = 12.75;
  p.has_stats = true;
  p.stats.ops = 0xfedcba9876543210ULL;  // > 2^53: must survive the trip
  p.stats.tx_begins = 1000;
  p.stats.tx_commits = 900;
  p.stats.tx_aborts[static_cast<int>(htm::AbortReason::kConflict)] = 80;
  p.stats.tx_aborts[static_cast<int>(htm::AbortReason::kSpurious)] = 20;
  p.stats.lock_acquires = 5;
  p.aux.emplace_back("update_mops", 3.5);
  p.curve.emplace_back(0.0, 0.5);
  p.curve.emplace_back(1.0, 0.75);
  p.retries = 2;

  workload::JsonWriter w;
  appendRecordJson(w, makeJob(), p, 123.5);
  JsonValue v;
  std::string err;
  ASSERT_TRUE(parseJson(w.str(), &v, &err)) << err;
  EXPECT_EQ(v.find("series")->str, "TLE-20");
  EXPECT_EQ(v.find("config")->raw, makeJob().config_json);

  exp::PointData q;
  ASSERT_TRUE(exp::pointDataFromJson(v, &q));
  EXPECT_EQ(q.status, exp::PointStatus::kOk);
  EXPECT_DOUBLE_EQ(q.value, p.value);
  ASSERT_TRUE(q.has_stats);
  EXPECT_EQ(q.stats.ops, p.stats.ops);
  EXPECT_EQ(q.stats.tx_aborts[static_cast<int>(htm::AbortReason::kConflict)],
            80u);
  EXPECT_EQ(q.stats.totalAborts(), p.stats.totalAborts());
  ASSERT_EQ(q.aux.size(), 1u);
  EXPECT_EQ(q.aux[0].first, "update_mops");
  EXPECT_DOUBLE_EQ(q.aux[0].second, 3.5);
  ASSERT_EQ(q.curve.size(), 2u);
  EXPECT_DOUBLE_EQ(q.curve[1].second, 0.75);
  EXPECT_EQ(q.retries, 2);
}

TEST(PointIo, FailedRecordRoundTrips) {
  exp::PointData p;
  p.status = exp::PointStatus::kFailed;
  p.failure_kind = "watchdog";
  p.failure_diagnostic = "no progress\nthreads:\n  tid=0 state=blocked";

  workload::JsonWriter w;
  appendRecordJson(w, makeJob(), p, 7.0);
  JsonValue v;
  ASSERT_TRUE(parseJson(w.str(), &v, nullptr));
  const JsonValue* failed = v.find("failed");
  ASSERT_NE(failed, nullptr);
  EXPECT_EQ(failed->find("kind")->str, "watchdog");

  exp::PointData q;
  ASSERT_TRUE(exp::pointDataFromJson(v, &q));
  EXPECT_EQ(q.status, exp::PointStatus::kFailed);
  EXPECT_EQ(q.failure_kind, p.failure_kind);
  EXPECT_EQ(q.failure_diagnostic, p.failure_diagnostic);
}

TEST(PointIo, ChildPipePayloadRoundTrips) {
  exp::PointData p;
  p.value = 3.25;
  p.has_stats = true;
  p.stats.tx_begins = 10;
  const std::string text = exp::pointDataToJson(p);
  JsonValue v;
  ASSERT_TRUE(parseJson(text, &v, nullptr));
  exp::PointData q;
  ASSERT_TRUE(exp::pointDataFromJson(v, &q));
  EXPECT_DOUBLE_EQ(q.value, 3.25);
  EXPECT_EQ(q.stats.tx_begins, 10u);
}

TEST(PointIo, LoadResumeSkipsFailedAndKeepsRawRecords) {
  // A result file with one ok and one failed record, written through the
  // real record writer so the raw slices match production bytes.
  exp::Job ok = makeJob();
  exp::Job bad = makeJob();
  bad.trial = 2;
  exp::PointData okp;
  okp.value = 9.5;
  exp::PointData badp;
  badp.status = exp::PointStatus::kFailed;
  badp.failure_kind = "timeout";

  workload::JsonWriter w;
  w.beginObject();
  w.key("experiment").value("adversity_retry_policies");
  w.key("points");
  w.beginArray();
  w.newline();
  appendRecordJson(w, ok, okp, 11.0);
  w.newline();
  appendRecordJson(w, bad, badp, 12.0);
  w.newline();
  w.endArray();
  w.endObject();

  std::map<std::string, exp::ResumePoint> resume;
  std::string name, err;
  ASSERT_TRUE(exp::loadResumeFile(w.str(), &resume, &name, &err)) << err;
  EXPECT_EQ(name, "adversity_retry_policies");
  ASSERT_EQ(resume.size(), 1u);  // the failed record is rerun, not resumed
  const auto it = resume.find(exp::jobKey(ok));
  ASSERT_NE(it, resume.end());
  EXPECT_DOUBLE_EQ(it->second.data.value, 9.5);
  EXPECT_DOUBLE_EQ(it->second.wall_ms, 11.0);

  // Splicing the stored raw text reproduces the original record bytes.
  workload::JsonWriter w2;
  exp::PointData resumed = it->second.data;
  resumed.resumed_record = it->second.raw;
  appendRecordJson(w2, ok, resumed, 999.0);  // wall_ms ignored for resumed
  workload::JsonWriter w3;
  appendRecordJson(w3, ok, okp, 11.0);
  EXPECT_EQ(w2.str(), w3.str());
}

TEST(PointIo, LoadResumeRejectsMalformedFiles) {
  std::map<std::string, exp::ResumePoint> resume;
  std::string err;
  EXPECT_FALSE(exp::loadResumeFile("not json", &resume, nullptr, &err));
  EXPECT_FALSE(exp::loadResumeFile("[1,2,3]", &resume, nullptr, &err));
  EXPECT_FALSE(exp::loadResumeFile("{\"experiment\":\"x\"}", &resume, nullptr,
                                   &err));
}

}  // namespace
}  // namespace natle
