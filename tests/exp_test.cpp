// Tests for the experiment harness: glob matching, the registry, SetSweep
// grid expansion (seed derivation must match runSetBench's internal trial
// loop), and the determinism contract — a worker pool of any size must
// produce byte-identical CSV and JSON (modulo the wall_ms timing fields).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <map>
#include <regex>
#include <stdexcept>
#include <string>

#include "exp/exp.hpp"

using namespace natle;
using namespace natle::exp;

namespace {

// A tiny real experiment: enough simulation to catch scheduling-dependent
// nondeterminism, small enough to run in a unit test.
void planTiny(const workload::BenchOptions& opt, Plan& plan) {
  auto sweep = std::make_shared<SetSweep>(opt, 2);  // 2 trials; opt.trace honoured
  workload::SetBenchConfig cfg;
  cfg.key_range = 256;
  cfg.measure_ms = 0.3 * opt.time_scale;
  cfg.warmup_ms = 0.1 * opt.time_scale;
  for (int n : {1, 4, 8}) {
    cfg.nthreads = n;
    sweep->point(plan, "tiny", n, cfg);
  }
  plan.emit = [sweep](const std::vector<PointData>& results) {
    std::vector<Record> rows;
    for (const auto& p : sweep->aggregate(results)) {
      rows.push_back({p.series, p.x, p.r.mops});
    }
    return rows;
  };
}

std::string stripWallMs(const std::string& json) {
  static const std::regex kWall(",\"wall_ms\":[-0-9.e+]+");
  return std::regex_replace(json, kWall, "");
}

}  // namespace

NATLE_REGISTER_EXPERIMENT(tiny, "exp_test_tiny",
                          "three-point sweep used by exp_test", "none",
                          "y = Mops/s", planTiny);

TEST(GlobMatch, Wildcards) {
  EXPECT_TRUE(globMatch("*", "anything"));
  EXPECT_TRUE(globMatch("fig0?", "fig01"));
  EXPECT_FALSE(globMatch("fig0?", "fig012"));
  EXPECT_TRUE(globMatch("fig*tree*", "fig16_two_trees"));
  EXPECT_FALSE(globMatch("fig*treex", "fig16_two_trees"));
  EXPECT_TRUE(globMatch("", ""));
  EXPECT_FALSE(globMatch("", "x"));
  EXPECT_TRUE(globMatch("a*b*c", "abc"));
  EXPECT_TRUE(globMatch("a*b*c", "axxbxxc"));
  EXPECT_FALSE(globMatch("a*b*c", "axxbxx"));
}

TEST(Registry, FindAndMatch) {
  Registry& r = Registry::instance();
  const Experiment* e = r.find("exp_test_tiny");
  ASSERT_NE(e, nullptr);
  EXPECT_STREQ(e->description, "three-point sweep used by exp_test");
  EXPECT_EQ(r.find("no_such_experiment"), nullptr);

  // Exact glob, prefix fallback, and miss.
  EXPECT_EQ(r.match("exp_test_*").size(), 1u);
  EXPECT_EQ(r.match("exp_test").size(), 1u);  // bare prefix, no trailing '*'
  EXPECT_EQ(r.match("zzz").size(), 0u);

  // all() is name-sorted and contains the registered experiment.
  const auto all = r.all();
  ASSERT_FALSE(all.empty());
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(std::string(all[i - 1]->name), std::string(all[i]->name));
  }
}

TEST(SetSweep, GridExpansionAndSeeds) {
  Plan plan;
  SetSweep sweep(3);
  workload::SetBenchConfig cfg;
  cfg.seed = 42;
  cfg.nthreads = 4;
  sweep.point(plan, "s", 4, cfg);
  ASSERT_EQ(plan.jobs.size(), 3u);
  for (int t = 0; t < 3; ++t) {
    const Job& j = plan.jobs[t];
    EXPECT_EQ(j.series, "s");
    EXPECT_EQ(j.x, 4);
    EXPECT_EQ(j.trial, t);
    // Must match the seed schedule runSetBench used for its internal trial
    // loop, so converted figures reproduce the pre-harness numbers.
    EXPECT_EQ(j.seed, 42u + 1000003ull * static_cast<uint64_t>(t));
    EXPECT_FALSE(j.config_json.empty());
    EXPECT_TRUE(j.run != nullptr);
  }
}

TEST(Runner, DefaultEmitOneRowPerJob) {
  Experiment e{"inline_default_emit", "d", "none", "",
               [](const workload::BenchOptions&, Plan& plan) {
                 for (int i = 0; i < 3; ++i) {
                   Job j;
                   j.series = "s" + std::to_string(i);
                   j.x = i;
                   j.run = [i] {
                     PointData p;
                     p.value = 10.0 * i;
                     return p;
                   };
                   plan.jobs.push_back(std::move(j));
                 }
               }};
  workload::BenchOptions opt;
  const ExperimentOutput out = runExperiment(e, opt, RunnerOptions{});
  EXPECT_EQ(out.n_jobs, 3u);
  EXPECT_EQ(out.n_records, 3u);
  EXPECT_EQ(out.csv,
            "# bench=inline_default_emit\nseries,x,y\n"
            "s0,0,0\ns1,1,10\ns2,2,20\n");
}

TEST(Runner, ParallelRunIsByteIdentical) {
  const Experiment* e = Registry::instance().find("exp_test_tiny");
  ASSERT_NE(e, nullptr);
  workload::BenchOptions opt;
  RunnerOptions serial;
  serial.jobs = 1;
  RunnerOptions parallel;
  parallel.jobs = 4;
  const ExperimentOutput a = runExperiment(*e, opt, serial);
  const ExperimentOutput b = runExperiment(*e, opt, parallel);
  EXPECT_EQ(a.n_jobs, 6u);  // 3 points x 2 trials
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(stripWallMs(a.json), stripWallMs(b.json));
  // wall_ms really is the only difference.
  EXPECT_NE(a.json, stripWallMs(a.json));
}

TEST(Runner, TracedRunIsByteIdenticalAcrossPoolSizes) {
  // The trace pipeline (per-trial Tracer, streaming attribution, JSON
  // splice) must not reintroduce scheduling-dependent output: a traced
  // experiment stays byte-identical whatever the worker-pool size.
  const Experiment* e = Registry::instance().find("exp_test_tiny");
  ASSERT_NE(e, nullptr);
  workload::BenchOptions opt;
  opt.trace = true;
  RunnerOptions serial;
  serial.jobs = 1;
  RunnerOptions parallel;
  parallel.jobs = 4;
  const ExperimentOutput a = runExperiment(*e, opt, serial);
  const ExperimentOutput b = runExperiment(*e, opt, parallel);
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(stripWallMs(a.json), stripWallMs(b.json));
  // Every point record carries an attribution object.
  size_t records = 0, attributed = 0;
  for (size_t pos = 0; (pos = a.json.find("\"series\":", pos)) != std::string::npos; ++pos) ++records;
  for (size_t pos = 0; (pos = a.json.find("\"attribution\":", pos)) != std::string::npos; ++pos) ++attributed;
  EXPECT_EQ(records, 6u);
  EXPECT_EQ(attributed, 6u);
  EXPECT_NE(a.json.find("\"killer_matrix\""), std::string::npos);
}

TEST(Runner, TracingDoesNotChangeUntracedOutputs) {
  // --trace must be purely additive: the CSV is byte-identical and the JSON
  // differs only by the attribution objects (config records included — the
  // trace flags are deliberately not serialized).
  const Experiment* e = Registry::instance().find("exp_test_tiny");
  ASSERT_NE(e, nullptr);
  workload::BenchOptions opt;
  const ExperimentOutput plain = runExperiment(*e, opt, RunnerOptions{});
  opt.trace = true;
  const ExperimentOutput traced = runExperiment(*e, opt, RunnerOptions{});
  EXPECT_EQ(plain.csv, traced.csv);
  static const std::regex kAttr(",\"attribution\":\\{[^\n]*?\\},\"wall_ms\"");
  const std::string scrubbed =
      std::regex_replace(traced.json, kAttr, ",\"wall_ms\"");
  EXPECT_NE(traced.json, scrubbed);  // attribution was present
  EXPECT_EQ(stripWallMs(plain.json), stripWallMs(scrubbed));
}

TEST(Runner, ThrownExceptionBecomesFailedRecord) {
  Experiment e{"inline_throwing", "d", "none", "",
               [](const workload::BenchOptions&, Plan& plan) {
                 Job ok;
                 ok.series = "ok";
                 ok.x = 0;
                 ok.run = [] {
                   PointData p;
                   p.value = 1.0;
                   return p;
                 };
                 plan.jobs.push_back(std::move(ok));
                 Job bad;
                 bad.series = "bad";
                 bad.x = 1;
                 bad.run = []() -> PointData {
                   throw std::runtime_error("synthetic failure");
                 };
                 plan.jobs.push_back(std::move(bad));
               }};
  workload::BenchOptions opt;
  const ExperimentOutput out = runExperiment(e, opt, RunnerOptions{});
  EXPECT_EQ(out.n_failed, 1u);
  ASSERT_EQ(out.failures.size(), 1u);
  EXPECT_EQ(out.failures[0].series, "bad");
  EXPECT_EQ(out.failures[0].kind, "exception");
  // The failed point is a structured record, not a CSV row.
  EXPECT_NE(out.json.find("\"failed\":{\"kind\":\"exception\""),
            std::string::npos);
  EXPECT_NE(out.json.find("synthetic failure"), std::string::npos);
  EXPECT_EQ(out.csv.find("bad"), std::string::npos);
  EXPECT_NE(out.csv.find("ok,0,1"), std::string::npos);
}

TEST(Runner, TransientRetryWithReseed) {
  Experiment e{"inline_transient", "d", "none", "",
               [](const workload::BenchOptions&, Plan& plan) {
                 Job j;
                 j.series = "flaky";
                 j.x = 0;
                 j.transient = true;
                 j.run = []() -> PointData {
                   throw std::runtime_error("first attempt fails");
                 };
                 j.run_reseeded = [](int salt) {
                   PointData p;
                   p.value = 100.0 + salt;
                   return p;
                 };
                 plan.jobs.push_back(std::move(j));
               }};
  workload::BenchOptions opt;
  RunnerOptions none;  // retries disabled: the failure sticks
  EXPECT_EQ(runExperiment(e, opt, none).n_failed, 1u);
  RunnerOptions retry;
  retry.transient_retries = 2;
  const ExperimentOutput out = runExperiment(e, opt, retry);
  EXPECT_EQ(out.n_failed, 0u);
  // Succeeded on the first reseeded attempt; the record says so.
  EXPECT_NE(out.json.find("\"value\":101"), std::string::npos);
  EXPECT_NE(out.json.find("\"retries\":1"), std::string::npos);
}

TEST(Runner, StopTokenLeavesQueuedJobsNotRun) {
  StopToken stop;
  Experiment e{"inline_stopped", "d", "none", "",
               [&stop](const workload::BenchOptions&, Plan& plan) {
                 for (int i = 0; i < 3; ++i) {
                   Job j;
                   j.series = "s";
                   j.x = i;
                   j.run = [&stop, i] {
                     if (i == 0) stop.request();  // "SIGINT" mid-run
                     PointData p;
                     p.value = i;
                     return p;
                   };
                   plan.jobs.push_back(std::move(j));
                 }
               }};
  workload::BenchOptions opt;
  RunnerOptions ropt;
  ropt.jobs = 1;  // serial, so the stop lands before jobs 1 and 2 start
  ropt.stop = &stop;
  const ExperimentOutput out = runExperiment(e, opt, ropt);
  EXPECT_EQ(out.n_not_run, 2u);
  EXPECT_EQ(out.n_failed, 0u);
  // Not-run points are omitted from the result file so --resume reruns them.
  size_t records = 0;
  for (size_t pos = 0; (pos = out.json.find("\"series\":", pos)) !=
                       std::string::npos;
       ++pos) {
    ++records;
  }
  EXPECT_EQ(records, 1u);
}

TEST(Runner, ResumeSplicesPriorRecordsByteIdentically) {
  const Experiment* e = Registry::instance().find("exp_test_tiny");
  ASSERT_NE(e, nullptr);
  workload::BenchOptions opt;
  const ExperimentOutput first = runExperiment(*e, opt, RunnerOptions{});

  std::map<std::string, std::map<std::string, ResumePoint>> resume;
  std::string name, err;
  ASSERT_TRUE(loadResumeFile(first.json, &resume["exp_test_tiny"], &name,
                             &err))
      << err;
  EXPECT_EQ(name, "exp_test_tiny");
  ASSERT_EQ(resume["exp_test_tiny"].size(), first.n_jobs);

  RunnerOptions ropt;
  ropt.resume = &resume;
  const ExperimentOutput second = runExperiment(*e, opt, ropt);
  EXPECT_EQ(second.n_resumed, first.n_jobs);
  // Resumed output is byte-identical wall_ms included: the prior record
  // text is spliced verbatim.
  EXPECT_EQ(second.json, first.json);
  EXPECT_EQ(second.csv, first.csv);
}

TEST(Runner, IsolateTurnsCrashAndTimeoutIntoFailedRecords) {
  Experiment e{"inline_isolate", "d", "none", "",
               [](const workload::BenchOptions&, Plan& plan) {
                 Job ok;
                 ok.series = "ok";
                 ok.x = 0;
                 ok.run = [] {
                   PointData p;
                   p.value = 7.0;
                   return p;
                 };
                 plan.jobs.push_back(std::move(ok));
                 Job crash;
                 crash.series = "crash";
                 crash.x = 1;
                 crash.run = []() -> PointData { std::abort(); };
                 plan.jobs.push_back(std::move(crash));
                 Job hang;
                 hang.series = "hang";
                 hang.x = 2;
                 hang.run = []() -> PointData {
                   for (;;) pause();  // wall-clock hang; killed by timeout
                 };
                 plan.jobs.push_back(std::move(hang));
               }};
  workload::BenchOptions opt;
  RunnerOptions ropt;
  ropt.isolate = true;
  ropt.jobs = 2;
  ropt.point_timeout_s = 0.5;
  const ExperimentOutput out = runExperiment(e, opt, ropt);
  EXPECT_EQ(out.n_failed, 2u);
  EXPECT_NE(out.json.find("\"value\":7"), std::string::npos);
  EXPECT_NE(out.json.find("\"kind\":\"crash\""), std::string::npos);
  EXPECT_NE(out.json.find("\"kind\":\"timeout\""), std::string::npos);
}

TEST(Sweep, DumpTraceIsRepeatableAndStructured) {
  // `natle-bench trace` re-runs a job's exact config with raw retention:
  // the dump must be deterministic call-to-call and one JSON object per line.
  Plan plan;
  workload::BenchOptions opt;
  SetSweep sweep(opt, 1);
  workload::SetBenchConfig cfg;
  cfg.key_range = 256;
  cfg.nthreads = 4;
  cfg.warmup_ms = 0.1;
  cfg.measure_ms = 0.3;
  sweep.point(plan, "s", 4, cfg);
  ASSERT_EQ(plan.jobs.size(), 1u);
  ASSERT_TRUE(plan.jobs[0].dump_trace != nullptr);
  const std::string d1 = plan.jobs[0].dump_trace();
  const std::string d2 = plan.jobs[0].dump_trace();
  ASSERT_FALSE(d1.empty());
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d1.front(), '{');
  EXPECT_EQ(d1.back(), '\n');
  EXPECT_NE(d1.find("\"kind\":\"tx_begin\""), std::string::npos);
}
