// Tests for the set-microbenchmark driver: throughput sanity, statistics
// plumbing, pinning policies, external work, and the thread axis helper.
#include <gtest/gtest.h>

#include "workload/json.hpp"
#include "workload/options.hpp"
#include "workload/setbench.hpp"

using namespace natle;
using namespace natle::workload;

namespace {

SetBenchConfig quickCfg() {
  SetBenchConfig cfg;
  cfg.key_range = 256;
  cfg.measure_ms = 0.4;
  cfg.warmup_ms = 0.2;
  return cfg;
}

}  // namespace

TEST(SetBench, SingleThreadProducesOps) {
  SetBenchConfig cfg = quickCfg();
  cfg.nthreads = 1;
  const SetBenchResult r = runSetBench(cfg);
  EXPECT_GT(r.mops, 0.5);
  EXPECT_GT(r.stats.ops, 100u);
  EXPECT_EQ(r.stats.lock_acquires, 0u);  // nobody contends
}

TEST(SetBench, MoreThreadsMoreThroughputWithinSocket) {
  SetBenchConfig cfg = quickCfg();
  cfg.key_range = 8192;  // light contention
  cfg.nthreads = 1;
  const double one = runSetBench(cfg).mops;
  cfg.nthreads = 8;
  const double eight = runSetBench(cfg).mops;
  EXPECT_GT(eight, 3.0 * one);
}

TEST(SetBench, ReadOnlyHasNoAborts) {
  SetBenchConfig cfg = quickCfg();
  cfg.update_pct = 0;
  cfg.nthreads = 12;
  const SetBenchResult r = runSetBench(cfg);
  EXPECT_EQ(r.stats.totalAborts(), 0u);
  EXPECT_EQ(r.stats.lock_acquires, 0u);
}

TEST(SetBench, UpdatesProduceConflictAborts) {
  SetBenchConfig cfg = quickCfg();
  cfg.update_pct = 100;
  cfg.nthreads = 12;
  const SetBenchResult r = runSetBench(cfg);
  EXPECT_GT(r.stats.tx_aborts[static_cast<int>(htm::AbortReason::kConflict)],
            0u);
  EXPECT_GT(r.abort_rate, 0.0);
  EXPECT_LE(r.abort_rate, 1.0);
}

TEST(SetBench, CrossSocketHurtsSmallTreeThroughput) {
  SetBenchConfig cfg = quickCfg();
  cfg.key_range = 2048;
  cfg.update_pct = 100;
  cfg.measure_ms = 1.0;
  cfg.warmup_ms = 0.5;
  cfg.nthreads = 36;
  const double one_socket = runSetBench(cfg).mops;
  cfg.nthreads = 48;
  const double cross = runSetBench(cfg).mops;
  EXPECT_LT(cross, one_socket) << "the paper's central observation";
}

TEST(SetBench, NatleAvoidsTheCliff) {
  SetBenchConfig cfg = quickCfg();
  cfg.key_range = 2048;
  cfg.update_pct = 100;
  cfg.measure_ms = 1.5;
  cfg.warmup_ms = 0.8;
  cfg.nthreads = 60;
  cfg.sync = SyncKind::kTle;
  const double tle = runSetBench(cfg).mops;
  cfg.sync = SyncKind::kNatle;
  const double natle = runSetBench(cfg).mops;
  EXPECT_GT(natle, 1.5 * tle);
}

TEST(SetBench, SearchReplaceWorksUnsynchronized) {
  SetBenchConfig cfg = quickCfg();
  cfg.search_replace = true;
  cfg.sync = SyncKind::kNone;
  cfg.nthreads = 8;
  const SetBenchResult r = runSetBench(cfg);
  EXPECT_GT(r.mops, 1.0);
  EXPECT_EQ(r.stats.tx_begins, 0u);  // no transactions at all
}

TEST(SetBench, ExternalWorkLowersThroughput) {
  SetBenchConfig cfg = quickCfg();
  cfg.nthreads = 4;
  const double none = runSetBench(cfg).mops;
  cfg.ext.max_units = 256;
  const double some = runSetBench(cfg).mops;
  EXPECT_LT(some, 0.8 * none);
}

TEST(SetBench, DeterministicForFixedSeed) {
  SetBenchConfig cfg = quickCfg();
  cfg.nthreads = 6;
  cfg.seed = 99;
  const SetBenchResult a = runSetBench(cfg);
  const SetBenchResult b = runSetBench(cfg);
  EXPECT_EQ(a.stats.ops, b.stats.ops);
  EXPECT_EQ(a.stats.tx_begins, b.stats.tx_begins);
  EXPECT_EQ(a.stats.totalAborts(), b.stats.totalAborts());
}

TEST(SetBench, AllStructuresRunUnderBothLocks) {
  for (DsKind ds : {DsKind::kAvl, DsKind::kLeafBst, DsKind::kInternalBst,
                    DsKind::kSkipList}) {
    for (SyncKind sync : {SyncKind::kTle, SyncKind::kNatle}) {
      SetBenchConfig cfg = quickCfg();
      cfg.ds = ds;
      cfg.sync = sync;
      cfg.nthreads = 6;
      const SetBenchResult r = runSetBench(cfg);
      EXPECT_GT(r.stats.ops, 0u) << toString(ds) << "/" << toString(sync);
    }
  }
}

TEST(ThreadAxis, CoversSocketBoundary) {
  const auto axis = threadAxis(sim::LargeMachine(), false);
  EXPECT_EQ(axis.front(), 1);
  EXPECT_EQ(axis.back(), 72);
  bool has36 = false, has37 = false;
  for (int n : axis) {
    has36 |= n == 36;
    has37 |= n == 37;
  }
  EXPECT_TRUE(has36);
  EXPECT_TRUE(has37);
  for (size_t i = 1; i < axis.size(); ++i) EXPECT_GT(axis[i], axis[i - 1]);
}

TEST(ThreadAxis, SmallMachineIsDense) {
  const auto axis = threadAxis(sim::SmallMachine(), false);
  EXPECT_EQ(axis.size(), 8u);
  EXPECT_EQ(axis.front(), 1);
  EXPECT_EQ(axis.back(), 8);
}

TEST(ThreadAxis, FullModeIsComplete) {
  const auto axis = threadAxis(sim::LargeMachine(), true);
  EXPECT_EQ(axis.size(), 72u);
}

// --- BenchOptions hardening -------------------------------------------------

namespace {

// setenv/unsetenv helper so NATLE_SIM_SCALE tests can't leak into each other.
struct ScopedEnv {
  explicit ScopedEnv(const char* value) {
    if (value != nullptr) {
      ::setenv("NATLE_SIM_SCALE", value, 1);
    } else {
      ::unsetenv("NATLE_SIM_SCALE");
    }
  }
  ~ScopedEnv() { ::unsetenv("NATLE_SIM_SCALE"); }
};

}  // namespace

TEST(BenchOptions, ParseScaleAcceptsFinitePositive) {
  double v = 0;
  EXPECT_TRUE(BenchOptions::parseScale("0.25", &v));
  EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_TRUE(BenchOptions::parseScale("2", &v));
  EXPECT_DOUBLE_EQ(v, 2.0);
  EXPECT_TRUE(BenchOptions::parseScale("1e-3", &v));
  EXPECT_DOUBLE_EQ(v, 1e-3);
}

TEST(BenchOptions, ParseScaleRejectsGarbage) {
  double v = 123;
  EXPECT_FALSE(BenchOptions::parseScale("", &v));
  EXPECT_FALSE(BenchOptions::parseScale(nullptr, &v));
  EXPECT_FALSE(BenchOptions::parseScale("abc", &v));
  EXPECT_FALSE(BenchOptions::parseScale("0.5x", &v));  // trailing junk
  EXPECT_FALSE(BenchOptions::parseScale("0", &v));
  EXPECT_FALSE(BenchOptions::parseScale("-1", &v));
  EXPECT_FALSE(BenchOptions::parseScale("inf", &v));
  EXPECT_FALSE(BenchOptions::parseScale("nan", &v));
  EXPECT_DOUBLE_EQ(v, 123);  // untouched on failure
}

TEST(BenchOptions, TryParseFlags) {
  ScopedEnv env(nullptr);
  const char* argv1[] = {"bench", "--full"};
  BenchOptions o;
  std::string err;
  ASSERT_TRUE(BenchOptions::tryParse(2, const_cast<char**>(argv1), &o, &err));
  EXPECT_TRUE(o.full);
  EXPECT_FALSE(o.help);

  const char* argv2[] = {"bench", "-h"};
  ASSERT_TRUE(BenchOptions::tryParse(2, const_cast<char**>(argv2), &o, &err));
  EXPECT_TRUE(o.help);
}

TEST(BenchOptions, TryParseRejectsUnknownFlag) {
  ScopedEnv env(nullptr);
  const char* argv[] = {"bench", "--fulll"};
  BenchOptions o;
  std::string err;
  EXPECT_FALSE(BenchOptions::tryParse(2, const_cast<char**>(argv), &o, &err));
  EXPECT_NE(err.find("--fulll"), std::string::npos);
}

TEST(BenchOptions, TryParseReadsScaleFromEnv) {
  ScopedEnv env("0.5");
  const char* argv[] = {"bench"};
  BenchOptions o;
  std::string err;
  ASSERT_TRUE(BenchOptions::tryParse(1, const_cast<char**>(argv), &o, &err));
  EXPECT_DOUBLE_EQ(o.time_scale, 0.5);
}

TEST(BenchOptions, TryParseRejectsGarbageScaleEnv) {
  ScopedEnv env("fast");
  const char* argv[] = {"bench"};
  BenchOptions o;
  std::string err;
  EXPECT_FALSE(BenchOptions::tryParse(1, const_cast<char**>(argv), &o, &err));
  EXPECT_NE(err.find("NATLE_SIM_SCALE"), std::string::npos);
}

TEST(SetBench, RunsOnFourSocketRing) {
  SetBenchConfig cfg = quickCfg();
  cfg.machine = sim::FourSocketRing();
  cfg.nthreads = 80;  // spills across three sockets under fill-socket-first
  const SetBenchResult r = runSetBench(cfg);
  EXPECT_GT(r.stats.ops, 0u);
  EXPECT_GT(r.mops, 0.0);
}

TEST(SetBench, AdversarialPlacementCostsThroughput) {
  // 36 threads on socket 0, nodes homed on socket 1: every cold fill crosses
  // the interconnect and reserves the link, so the link occupancy queue —
  // absent under first-touch — throttles the whole socket.
  SetBenchConfig cfg;
  cfg.key_range = 65536;
  cfg.update_pct = 100;
  cfg.nthreads = 36;
  cfg.measure_ms = 0.3;
  cfg.warmup_ms = 0.15;
  cfg.placement = mem::PlacePolicy::kFirstTouch;
  const double local = runSetBench(cfg).mops;
  cfg.placement = mem::PlacePolicy::kAdversarialRemote;
  const double remote = runSetBench(cfg).mops;
  EXPECT_GT(local, 1.1 * remote);
}

TEST(SetBench, PlacementKeepsDeterminism) {
  SetBenchConfig cfg = quickCfg();
  cfg.placement = mem::PlacePolicy::kInterleave;
  cfg.nthreads = 4;
  const SetBenchResult a = runSetBench(cfg);
  const SetBenchResult b = runSetBench(cfg);
  EXPECT_EQ(a.mops, b.mops);
  EXPECT_EQ(a.stats.tx_begins, b.stats.tx_begins);
  EXPECT_EQ(a.stats.totalAborts(), b.stats.totalAborts());
}

TEST(SetBench, PlacementSerializedOnlyWhenNonDefault) {
  SetBenchConfig cfg = quickCfg();
  EXPECT_EQ(toJson(cfg).find("placement"), std::string::npos);
  cfg.placement = mem::PlacePolicy::kAdversarialRemote;
  const std::string j = toJson(cfg);
  EXPECT_NE(j.find("\"placement\":\"adversarial-remote\""), std::string::npos)
      << j;
}

TEST(SetBench, DistanceMatrixSerializedOnlyWhenPresent) {
  EXPECT_EQ(toJson(sim::LargeMachine()).find("distance"), std::string::npos);
  const std::string j = toJson(sim::FourSocketRing());
  EXPECT_NE(j.find("\"distance\":[0,1,2,1,1,0,1,2,2,1,0,1,1,2,1,0]"),
            std::string::npos)
      << j;
  EXPECT_NE(j.find("\"hop_factor\":0.5"), std::string::npos) << j;
}
