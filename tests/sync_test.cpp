// Tests for the lock layer: TATAS, TLE policies (attempt counting, hint-bit
// fallback, lock-held handling, lemming avoidance), NATLE mode machinery.
#include <gtest/gtest.h>

#include "sync/backoff_tle.hpp"
#include "sync/natle.hpp"
#include "sync/tatas.hpp"
#include "sync/tle.hpp"

using namespace natle;
using namespace natle::htm;
using namespace natle::sync;

namespace {

sim::HwSlot slotFor(const sim::MachineConfig& cfg, int i) {
  return sim::placeThread(cfg, sim::PinPolicy::kFillSocketFirst, i);
}

}  // namespace

TEST(Tatas, MutualExclusionUnderContention) {
  Env env(sim::LargeMachine());
  TatasLock lock(env);
  auto* counter = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *counter = 0;
  int in_cs = 0;
  int max_in_cs = 0;
  for (int i = 0; i < 8; ++i) {
    env.spawnWorker(
        [&](ThreadCtx& ctx) {
          for (int r = 0; r < 20; ++r) {
            lock.lock(ctx);
            ++in_cs;
            max_in_cs = std::max(max_in_cs, in_cs);
            ctx.store(*counter, ctx.load(*counter) + 1);
            ctx.work(200);
            --in_cs;
            lock.unlock(ctx);
            ctx.work(100);
          }
        },
        slotFor(env.cfg(), i));
  }
  env.run();
  EXPECT_EQ(*counter, 8 * 20);
  EXPECT_EQ(max_in_cs, 1);
}

TEST(Tle, ElidesWithoutContention) {
  Env env(sim::LargeMachine());
  TleLock lock(env);
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 0;
  env.spawnWorker(
      [&](ThreadCtx& ctx) {
        for (int i = 0; i < 10; ++i) {
          lock.execute(ctx, [&] { ctx.store(*x, ctx.load(*x) + 1); });
        }
      },
      slotFor(env.cfg(), 0));
  env.run();
  EXPECT_EQ(*x, 10);
  const TxStats t = env.totals();
  EXPECT_EQ(t.tx_commits, 10u);
  EXPECT_EQ(t.lock_acquires, 0u);
}

TEST(Tle, CriticalSectionsAreAtomicUnderContention) {
  Env env(sim::LargeMachine());
  TleLock lock(env);
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 0;
  const int kThreads = 16;
  const int kReps = 50;
  for (int i = 0; i < kThreads; ++i) {
    env.spawnWorker(
        [&](ThreadCtx& ctx) {
          for (int r = 0; r < kReps; ++r) {
            lock.execute(ctx, [&] { ctx.store(*x, ctx.load(*x) + 1); });
          }
        },
        slotFor(env.cfg(), i));
  }
  env.run();
  EXPECT_EQ(*x, kThreads * kReps);  // no lost updates despite aborts
  const TxStats t = env.totals();
  EXPECT_GT(t.tx_aborts[static_cast<int>(AbortReason::kConflict)], 0u)
      << "increment war on one line should produce conflicts";
}

TEST(Tle, FallsBackAfterMaxAttempts) {
  // Force every transaction to fail via an adversary that owns the line:
  // with a writer constantly invalidating, attempts exhaust and the lock
  // serializes the critical section.
  Env env(sim::LargeMachine());
  TlePolicy pol;
  pol.max_attempts = 3;
  TleLock lock(env, pol);
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 0;
  bool done = false;
  env.spawnWorker(
      [&](ThreadCtx& ctx) {
        lock.execute(ctx, [&] {
          // Long transaction: reads x then works, so the adversary's store
          // always aborts it.
          (void)ctx.load(*x);
          ctx.work(300000);
        });
        done = true;
      },
      slotFor(env.cfg(), 0));
  env.spawnWorker(
      [&](ThreadCtx& ctx) {
        for (int i = 0; i < 200 && !done; ++i) {
          ctx.store(*x, static_cast<int64_t>(i));
          ctx.work(50000);
        }
      },
      slotFor(env.cfg(), 1));
  env.run();
  EXPECT_TRUE(done);
  const TxStats t = env.totals();
  EXPECT_GE(t.lock_acquires, 1u);
}

TEST(Tle, RespectHintBitFallsBackOnCapacity) {
  // A transaction whose footprint overflows one L1 set aborts hint-clear;
  // with respect_hint_bit the very first such abort goes to the lock.
  sim::MachineConfig cfg = sim::LargeMachine();
  Env env(cfg);
  TlePolicy pol = Tle20HintBit();
  TleLock lock(env, pol);
  std::vector<int64_t*> blocks;
  while (blocks.size() < cfg.l1_ways + 2) {
    void* p = env.allocShared(64);
    if (mem::lineOf(p) % cfg.l1_sets == 3) {
      blocks.push_back(static_cast<int64_t*>(p));
    }
  }
  env.spawnWorker(
      [&](ThreadCtx& ctx) {
        lock.execute(ctx, [&] {
          for (auto* b : blocks) ctx.store(*b, int64_t{1});
        });
      },
      slotFor(cfg, 0));
  env.run();
  const TxStats t = env.totals();
  EXPECT_EQ(t.lock_acquires, 1u);
  EXPECT_EQ(t.tx_aborts[static_cast<int>(AbortReason::kCapacity)], 1u);
}

TEST(Tle, IgnoringHintBitRetries) {
  // Same overflow, but TLE-20 keeps retrying and eventually takes the lock
  // after 20 capacity aborts (deterministic overflow here).
  sim::MachineConfig cfg = sim::LargeMachine();
  Env env(cfg);
  TleLock lock(env, Tle20());
  std::vector<int64_t*> blocks;
  while (blocks.size() < cfg.l1_ways + 2) {
    void* p = env.allocShared(64);
    if (mem::lineOf(p) % cfg.l1_sets == 3) {
      blocks.push_back(static_cast<int64_t*>(p));
    }
  }
  env.spawnWorker(
      [&](ThreadCtx& ctx) {
        lock.execute(ctx, [&] {
          for (auto* b : blocks) ctx.store(*b, int64_t{1});
        });
      },
      slotFor(cfg, 0));
  env.run();
  const TxStats t = env.totals();
  EXPECT_EQ(t.lock_acquires, 1u);
  EXPECT_EQ(t.tx_aborts[static_cast<int>(AbortReason::kCapacity)], 20u);
}

TEST(Natle, SingleThreadCommits) {
  Env env(sim::LargeMachine());
  NatleLock lock(env);
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 0;
  env.spawnWorker(
      [&](ThreadCtx& ctx) {
        for (int i = 0; i < 100; ++i) {
          lock.execute(ctx, [&] { ctx.store(*x, ctx.load(*x) + 1); });
        }
      },
      slotFor(env.cfg(), 0));
  env.run();
  EXPECT_EQ(*x, 100);
}

TEST(Natle, AtomicUnderCrossSocketContention) {
  Env env(sim::LargeMachine());
  NatleLock lock(env);
  lock.setActiveRows(128);
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 0;
  const int kReps = 40;
  int threads = 0;
  for (int i : {0, 1, 2, 40, 41, 42}) {  // both sockets
    ++threads;
    env.spawnWorker(
        [&](ThreadCtx& ctx) {
          for (int r = 0; r < kReps; ++r) {
            lock.execute(ctx, [&] { ctx.store(*x, ctx.load(*x) + 1); });
            ctx.work(500);
          }
        },
        slotFor(env.cfg(), i));
  }
  env.run();
  EXPECT_EQ(*x, threads * kReps);
}

TEST(Natle, ProfilesAndRecordsDecisions) {
  // Run long enough to cross several NATLE cycles and check that decisions
  // were recorded with sane values.
  sim::MachineConfig mc = sim::LargeMachine();
  Env env(mc);
  NatleConfig nc;
  nc.profiling_ms = 0.05;
  NatleLock lock(env, TlePolicy{}, nc);
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *x = 0;
  const uint64_t t_end = mc.msToCycles(3.0);
  for (int i : {0, 1, 40, 41}) {
    env.spawnWorker(
        [&, t_end](ThreadCtx& ctx) {
          while (ctx.nowCycles() < t_end) {
            lock.execute(ctx, [&] { ctx.store(*x, ctx.load(*x) + 1); });
            ctx.work(2000);
          }
        },
        slotFor(mc, i));
  }
  env.run();
  ASSERT_GT(lock.history().size(), 1u);
  for (const auto& d : lock.history()) {
    EXPECT_GE(d.fastest_mode, 0);
    EXPECT_LT(d.fastest_mode, lock.numModes());
    EXPECT_GE(d.fastest_slice, 0.0);
    EXPECT_LE(d.fastest_slice, 1.0);
    EXPECT_GE(d.socket0_share, 0.0);
    EXPECT_LE(d.socket0_share, 1.0);
  }
}

TEST(Natle, WarmupThresholdKeepsBothSockets) {
  // With almost no acquisitions during profiling, the warm-up threshold must
  // choose the both-sockets mode.
  sim::MachineConfig mc = sim::LargeMachine();
  Env env(mc);
  NatleConfig nc;
  nc.profiling_ms = 0.05;
  NatleLock lock(env, TlePolicy{}, nc);
  auto* x = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  const uint64_t t_end = mc.msToCycles(1.2);
  env.spawnWorker(
      [&, t_end](ThreadCtx& ctx) {
        while (ctx.nowCycles() < t_end) {
          lock.execute(ctx, [&] { ctx.store(*x, int64_t{1}); });
          ctx.work(200000);  // very sparse acquisitions
        }
      },
      slotFor(mc, 0));
  env.run();
  ASSERT_FALSE(lock.history().empty());
  for (const auto& d : lock.history()) {
    EXPECT_EQ(d.fastest_mode, lock.numModes() - 1);
    EXPECT_DOUBLE_EQ(d.fastest_slice, 1.0);
  }
}

TEST(Natle, DecideModesPicksTrueAlternateOnMultiSocketProfiles) {
  // Regression: the slice denominator was hard-coded to mode `1 - fastest`
  // ("the other socket"), which is only meaningful on a two-socket machine.
  // With four sockets (five modes: one per socket + all-sockets) and mode 2
  // fastest, the old code looked at mode -1/garbage and silently degraded
  // the slice to 1.0, starving the alternate of its quantum share.
  const std::vector<int64_t> acqs{10, 20, 5000, 3000, 4000};
  const auto md = NatleLock::decideModes(acqs, /*min_acquisitions=*/256);
  EXPECT_EQ(md.fastest, 2);
  EXPECT_EQ(md.alternate, 4);  // best of the rest, not "1 - fastest"
  EXPECT_DOUBLE_EQ(md.slice, 5000.0 / 9000.0);
}

TEST(Natle, DecideModesTwoSocketMatchesPaperRule) {
  // On the paper's two-socket machine (modes: socket 0, socket 1, both) the
  // generalized rule reduces to the original: slice = fastest / (s0 + s1).
  const auto md = NatleLock::decideModes({600, 200, 300}, 256);
  EXPECT_EQ(md.fastest, 0);
  EXPECT_EQ(md.alternate, 2);  // both-sockets beat socket 1 this cycle
  EXPECT_DOUBLE_EQ(md.slice, 600.0 / 900.0);

  const auto md2 = NatleLock::decideModes({600, 300, 200}, 256);
  EXPECT_EQ(md2.fastest, 0);
  EXPECT_EQ(md2.alternate, 1);
  EXPECT_DOUBLE_EQ(md2.slice, 600.0 / 900.0);
}

TEST(Natle, DecideModesWarmupAndAllSocketsFastest) {
  // Below the warm-up threshold: both-sockets mode, no throttling.
  const auto warm = NatleLock::decideModes({10, 20, 30}, 256);
  EXPECT_EQ(warm.fastest, 2);
  EXPECT_EQ(warm.alternate, 2);
  EXPECT_DOUBLE_EQ(warm.slice, 1.0);

  // All-sockets fastest: no throttling either.
  const auto all = NatleLock::decideModes({100, 200, 5000}, 256);
  EXPECT_EQ(all.fastest, 2);
  EXPECT_DOUBLE_EQ(all.slice, 1.0);
}

TEST(BackoffTle, PauseIsZeroForZeroInputs) {
  EXPECT_EQ(BackoffTleLock::backoffPause(0, 5), 0u);
  EXPECT_EQ(BackoffTleLock::backoffPause(1000, 0), 0u);
  EXPECT_EQ(BackoffTleLock::backoffPause(0, 0), 0u);
}

TEST(BackoffTle, PauseScalesLinearlyThenSaturates) {
  const uint64_t base = 1000;
  EXPECT_EQ(BackoffTleLock::backoffPause(base, 1), base);
  EXPECT_EQ(BackoffTleLock::backoffPause(base, 3), 3 * base);
  EXPECT_EQ(BackoffTleLock::backoffPause(base, 63), 63 * base);
  // At and beyond 64 attempts — an abort storm — the cap holds exactly.
  EXPECT_EQ(BackoffTleLock::backoffPause(base, 64), 64 * base);
  EXPECT_EQ(BackoffTleLock::backoffPause(base, 65), 64 * base);
  EXPECT_EQ(BackoffTleLock::backoffPause(base, UINT64_MAX), 64 * base);
}

TEST(BackoffTle, PauseNeverOverflows) {
  // Huge base: the cap itself saturates at UINT64_MAX instead of wrapping.
  const uint64_t huge = UINT64_MAX / 2;
  EXPECT_EQ(BackoffTleLock::backoffPause(huge, 1), huge);
  EXPECT_EQ(BackoffTleLock::backoffPause(huge, 3), UINT64_MAX);
  EXPECT_EQ(BackoffTleLock::backoffPause(huge, UINT64_MAX), UINT64_MAX);
  EXPECT_EQ(BackoffTleLock::backoffPause(UINT64_MAX, 2), UINT64_MAX);
  EXPECT_EQ(BackoffTleLock::backoffPause(UINT64_MAX, UINT64_MAX), UINT64_MAX);
  // Product just past the cap boundary stays clamped.
  EXPECT_EQ(BackoffTleLock::backoffPause(UINT64_MAX / 63, 63),
            (UINT64_MAX / 63) * 63);
}

TEST(BackoffTle, PauseIsMonotoneInAttempts) {
  const uint64_t base = 12345;
  uint64_t prev = 0;
  for (uint64_t a = 0; a < 130; ++a) {
    const uint64_t p = BackoffTleLock::backoffPause(base, a);
    EXPECT_GE(p, prev) << "attempts=" << a;
    prev = p;
  }
}
