// Unit tests for the discrete-event core: fibers, scheduler ordering,
// blocking, topology placement, hyperthread penalty, determinism.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "sim/fiber.hpp"
#include "sim/machine.hpp"
#include "sim/rng.hpp"
#include "sim/topology.hpp"

using namespace natle::sim;

TEST(Fiber, RunsAndFinishes) {
  int x = 0;
  Fiber f([&] { x = 42; });
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldRoundTrips) {
  std::vector<int> order;
  Fiber* fp = nullptr;
  Fiber f([&] {
    order.push_back(1);
    fp->yield();
    order.push_back(3);
  });
  fp = &f;
  f.resume();
  order.push_back(2);
  f.resume();
  order.push_back(4);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, DeepStackUse) {
  // Recurse enough to exercise a few pages of the fiber stack.
  std::function<uint64_t(uint64_t)> fib_sum = [&](uint64_t n) -> uint64_t {
    volatile char pad[512];
    pad[0] = static_cast<char>(n);
    (void)pad;
    return n == 0 ? 0 : n + fib_sum(n - 1);
  };
  uint64_t result = 0;
  Fiber f([&] { result = fib_sum(100); });
  f.resume();
  EXPECT_EQ(result, 5050u);
}

TEST(Machine, RunsThreadsInClockOrder) {
  MachineConfig cfg = SmallMachine();
  Machine m(cfg);
  std::vector<int> order;
  // Thread A charges 100 cycles per step, B charges 30: B should run ~3 steps
  // per A step once interleaved.
  m.spawn(
      [&](SimThread& t) {
        for (int i = 0; i < 3; ++i) {
          m.charge(t, 100);
          m.maybeYield(t);
          order.push_back(0);
        }
      },
      placeThread(cfg, PinPolicy::kFillSocketFirst, 0));
  m.spawn(
      [&](SimThread& t) {
        for (int i = 0; i < 10; ++i) {
          m.charge(t, 30);
          m.maybeYield(t);
          order.push_back(1);
        }
      },
      placeThread(cfg, PinPolicy::kFillSocketFirst, 1));
  m.run();
  ASSERT_EQ(order.size(), 13u);
  // First four completed actions are B's at t=30,60,90 and A's at t=100...
  // just check the global property: prefix of actions at time <= 100 contains
  // at least three B steps before the second A step.
  int b_before_second_a = 0;
  int a_seen = 0;
  for (int v : order) {
    if (v == 0) {
      ++a_seen;
      if (a_seen == 2) break;
    } else if (a_seen == 1) {
      ++b_before_second_a;
    }
  }
  EXPECT_GE(b_before_second_a, 3);
}

TEST(Machine, BlockUnblock) {
  MachineConfig cfg = SmallMachine();
  Machine m(cfg);
  SimThread* waiter = nullptr;
  bool woke = false;
  waiter = m.spawn(
      [&](SimThread& t) {
        m.blockCurrent();
        woke = true;
        EXPECT_GE(t.clock, 500u);
      },
      placeThread(cfg, PinPolicy::kFillSocketFirst, 0));
  m.spawn(
      [&](SimThread& t) {
        m.charge(t, 500);
        m.maybeYield(t);
        m.unblock(*waiter, t.clock);
      },
      placeThread(cfg, PinPolicy::kFillSocketFirst, 1));
  m.run();
  EXPECT_TRUE(woke);
}

TEST(Machine, HtPenaltyAppliesWhenCoreShared) {
  MachineConfig cfg = LargeMachine();
  Machine m(cfg);
  uint64_t solo_clock = 0;
  uint64_t shared_clock = 0;
  // Threads 0 and 36 share core 0 under fill-socket-first... actually thread
  // 0 is (socket0,core0,ht0) and thread 18 is (socket0,core0,ht1).
  auto s0 = placeThread(cfg, PinPolicy::kFillSocketFirst, 0);
  auto s18 = placeThread(cfg, PinPolicy::kFillSocketFirst, 18);
  ASSERT_EQ(s0.core_global, s18.core_global);
  auto s1 = placeThread(cfg, PinPolicy::kFillSocketFirst, 1);
  m.spawn([&](SimThread& t) { m.chargeWork(t, 1000); shared_clock = t.clock; }, s0);
  m.spawn([&](SimThread& t) { m.chargeWork(t, 1000); }, s18);
  m.spawn([&](SimThread& t) { m.chargeWork(t, 1000); solo_clock = t.clock; }, s1);
  m.run();
  EXPECT_EQ(solo_clock, 1000u);
  EXPECT_EQ(shared_clock, 1600u);  // ht_penalty = 1.6
}

TEST(Topology, FillSocketFirstMatchesPaperPinning) {
  MachineConfig cfg = LargeMachine();
  // First 18 threads: distinct cores on socket 0.
  for (int i = 0; i < 18; ++i) {
    auto s = placeThread(cfg, PinPolicy::kFillSocketFirst, i);
    EXPECT_EQ(s.socket, 0);
    EXPECT_EQ(s.core_global, i);
    EXPECT_EQ(s.ht, 0);
  }
  // Threads 18..35: hyperthreads on socket 0.
  for (int i = 18; i < 36; ++i) {
    auto s = placeThread(cfg, PinPolicy::kFillSocketFirst, i);
    EXPECT_EQ(s.socket, 0);
    EXPECT_EQ(s.ht, 1);
  }
  // Threads 36..71: socket 1.
  for (int i = 36; i < 72; ++i) {
    EXPECT_EQ(placeThread(cfg, PinPolicy::kFillSocketFirst, i).socket, 1);
  }
}

TEST(Topology, AlternateSockets) {
  MachineConfig cfg = LargeMachine();
  for (int i = 0; i < 72; ++i) {
    EXPECT_EQ(placeThread(cfg, PinPolicy::kAlternateSockets, i).socket, i % 2);
  }
}

TEST(Machine, UnpinnedThreadsMigrateTowardBalance) {
  MachineConfig cfg = LargeMachine();
  Machine m(cfg);
  // Start 8 unpinned threads all on core 0; after running with periodic
  // migration checks they should spread out.
  for (int i = 0; i < 8; ++i) {
    m.spawn(
        [&](SimThread& t) {
          for (int step = 0; step < 50; ++step) {
            m.charge(t, cfg.msToCycles(0.2));
            m.maybeMigrate(t);
            m.maybeYield(t);
          }
        },
        HwSlot{0, 0, 0}, /*pinned=*/false);
  }
  m.run();
  EXPECT_GT(m.migrationCount(), 0u);
}

TEST(Rng, DeterministicAndUniform) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Rng c(8);
  int below = 0;
  for (int i = 0; i < 10000; ++i) {
    if (c.uniform() < 0.25) ++below;
  }
  EXPECT_NEAR(below, 2500, 200);
}

TEST(Rng, BelowInRange) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

// --- multi-socket topology ---------------------------------------------

TEST(Topology, FourSocketFillSocketFirst) {
  MachineConfig cfg = FourSocketRing();
  ASSERT_EQ(cfg.totalThreads(), 144);
  // Sockets fill strictly in order: 36 hardware threads per socket.
  for (int i = 0; i < 144; ++i) {
    EXPECT_EQ(placeThread(cfg, PinPolicy::kFillSocketFirst, i).socket, i / 36);
  }
  // Within a socket: all 18 cores before any hyperthread.
  for (int s = 0; s < 4; ++s) {
    for (int j = 0; j < 18; ++j) {
      auto slot = placeThread(cfg, PinPolicy::kFillSocketFirst, s * 36 + j);
      EXPECT_EQ(slot.ht, 0);
      EXPECT_EQ(slot.core_global, s * 18 + j);
    }
    for (int j = 18; j < 36; ++j) {
      EXPECT_EQ(placeThread(cfg, PinPolicy::kFillSocketFirst, s * 36 + j).ht,
                1);
    }
  }
}

TEST(Topology, FourSocketAlternateAndUnpinnedRoundRobin) {
  MachineConfig cfg = FourSocketRing();
  for (PinPolicy p : {PinPolicy::kAlternateSockets, PinPolicy::kUnpinned}) {
    for (int i = 0; i < 144; ++i) {
      auto slot = placeThread(cfg, p, i);
      EXPECT_EQ(slot.socket, i % 4);
      // Cores fill before hyperthreads within each socket.
      EXPECT_EQ(slot.ht, (i / 4) / cfg.cores_per_socket);
    }
  }
}

TEST(Topology, OddThreadCountsYieldDistinctValidSlots) {
  MachineConfig cfg = FourSocketRing();
  for (PinPolicy p : {PinPolicy::kFillSocketFirst, PinPolicy::kAlternateSockets,
                      PinPolicy::kUnpinned}) {
    for (int n : {1, 7, 23, 37, 143}) {
      std::set<std::tuple<int, int, int>> seen;
      for (int i = 0; i < n; ++i) {
        auto s = placeThread(cfg, p, i);
        // Slot is inside the machine and internally consistent.
        EXPECT_GE(s.socket, 0);
        EXPECT_LT(s.socket, cfg.sockets);
        EXPECT_EQ(s.socket, s.core_global / cfg.cores_per_socket);
        EXPECT_GE(s.ht, 0);
        EXPECT_LT(s.ht, cfg.threads_per_core);
        // No two threads share a hardware slot.
        EXPECT_TRUE(seen.insert({s.socket, s.core_global, s.ht}).second)
            << toString(p) << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(Topology, RingAndMeshDistanceProperties) {
  for (int n : {2, 3, 4, 6, 8}) {
    const auto d = RingDistance(n);
    for (int a = 0; a < n; ++a) {
      EXPECT_EQ(d[a * n + a], 0);
      for (int b = 0; b < n; ++b) {
        EXPECT_EQ(d[a * n + b], d[b * n + a]);  // symmetric
        if (a != b) {
          EXPECT_GE(d[a * n + b], 1);
          EXPECT_LE(d[a * n + b], n / 2);  // never longer than half the ring
        }
      }
    }
  }
  // 4-ring: opposite sockets are two hops, neighbours one.
  const auto r4 = RingDistance(4);
  EXPECT_EQ(r4[0 * 4 + 1], 1);
  EXPECT_EQ(r4[0 * 4 + 2], 2);
  EXPECT_EQ(r4[0 * 4 + 3], 1);
  // 2x4 mesh: Manhattan distance, corner to far corner = 4.
  const auto m = MeshDistance(2, 4);
  EXPECT_EQ(m[0 * 8 + 7], 4);
  EXPECT_EQ(m[0 * 8 + 4], 1);
  EXPECT_EQ(m[3 * 8 + 4], 4);
}

// --- config validation ---------------------------------------------------

TEST(MachineConfigValidate, PresetsAreValid) {
  EXPECT_EQ(LargeMachine().validate(), "");
  EXPECT_EQ(SmallMachine().validate(), "");
  EXPECT_EQ(FourSocketRing().validate(), "");
  EXPECT_EQ(EightSocketMesh().validate(), "");
}

TEST(MachineConfigValidate, RejectsBadShapes) {
  MachineConfig c = LargeMachine();
  c.sockets = 0;
  EXPECT_NE(c.validate().find("sockets"), std::string::npos);
  c = LargeMachine();
  c.sockets = 17;
  EXPECT_NE(c.validate().find("sockets"), std::string::npos);
  c = LargeMachine();
  c.ghz = 0;
  EXPECT_NE(c.validate().find("ghz"), std::string::npos);
  c = LargeMachine();
  c.l1_sets = 48;  // not a power of two: set indexing would be wrong
  EXPECT_NE(c.validate().find("l1_sets"), std::string::npos);
  c = LargeMachine();
  c.l1_ways = 0;
  EXPECT_NE(c.validate().find("l1_ways"), std::string::npos);
  c = LargeMachine();
  c.hop_factor = -0.5;
  EXPECT_NE(c.validate().find("hop_factor"), std::string::npos);
}

TEST(MachineConfigValidate, RejectsBadDistanceMatrices) {
  MachineConfig c = FourSocketRing();
  c.distance.pop_back();  // wrong size
  EXPECT_NE(c.validate().find("distance"), std::string::npos);

  c = FourSocketRing();
  c.distance[0 * 4 + 0] = 1;  // nonzero diagonal
  EXPECT_NE(c.validate().find("distance"), std::string::npos);

  c = FourSocketRing();
  c.distance[0 * 4 + 2] = 3;  // asymmetric: [2][0] still 2
  EXPECT_NE(c.validate().find("distance"), std::string::npos);

  c = FourSocketRing();
  c.distance[0 * 4 + 1] = 0;
  c.distance[1 * 4 + 0] = 0;  // disconnected pair
  EXPECT_NE(c.validate().find("distance"), std::string::npos);
}

TEST(MachineConfigValidate, MachineCtorRejectsInvalidConfig) {
  MachineConfig c = LargeMachine();
  c.ghz = 0;
  EXPECT_THROW(Machine{c}, std::invalid_argument);
  MachineConfig ok = FourSocketRing();
  EXPECT_NO_THROW(Machine{ok});
}
