// Data-structure tests: sequential correctness against std::set (property
// sweeps over sizes/seeds/mixes), structural invariants, and a concurrent
// oracle — per-key insert/erase accounting must match final membership when
// the structures run under TLE and NATLE.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "ds/avl.hpp"
#include "ds/bst_internal.hpp"
#include "ds/bst_leaf.hpp"
#include "ds/dheap.hpp"
#include "ds/hashmap.hpp"
#include "ds/skiplist.hpp"
#include "sync/natle.hpp"
#include "sync/tle.hpp"

using namespace natle;
using namespace natle::htm;
using namespace natle::ds;

namespace {

enum class Kind { kAvl, kLeaf, kInternal, kSkip };

struct SetIface {
  virtual ~SetIface() = default;
  virtual bool insert(ThreadCtx&, int64_t) = 0;
  virtual bool erase(ThreadCtx&, int64_t) = 0;
  virtual bool contains(ThreadCtx&, int64_t) = 0;
  virtual size_t size(ThreadCtx&) = 0;
  virtual bool validate(ThreadCtx&) = 0;
};

template <typename S>
struct Wrap : SetIface {
  explicit Wrap(Env& e) : s(e) {}
  bool insert(ThreadCtx& c, int64_t k) override { return s.insert(c, k); }
  bool erase(ThreadCtx& c, int64_t k) override { return s.erase(c, k); }
  bool contains(ThreadCtx& c, int64_t k) override { return s.contains(c, k); }
  size_t size(ThreadCtx& c) override { return s.size(c); }
  bool validate(ThreadCtx& c) override { return s.validate(c); }
  S s;
};

std::unique_ptr<SetIface> make(Kind k, Env& e) {
  switch (k) {
    case Kind::kAvl: return std::make_unique<Wrap<AvlTree>>(e);
    case Kind::kLeaf: return std::make_unique<Wrap<LeafBst>>(e);
    case Kind::kInternal: return std::make_unique<Wrap<InternalBst>>(e);
    case Kind::kSkip: return std::make_unique<Wrap<SkipList>>(e);
  }
  return nullptr;
}

const char* name(Kind k) {
  switch (k) {
    case Kind::kAvl: return "avl";
    case Kind::kLeaf: return "leaf";
    case Kind::kInternal: return "internal";
    case Kind::kSkip: return "skip";
  }
  return "?";
}

struct SweepParam {
  Kind kind;
  uint64_t seed;
  int64_t key_range;
  int ops;
};

class SetSweep : public ::testing::TestWithParam<SweepParam> {};

}  // namespace

TEST_P(SetSweep, MatchesStdSet) {
  const SweepParam p = GetParam();
  Env env(sim::LargeMachine());
  auto s = make(p.kind, env);
  auto& c = env.setupCtx();
  std::set<int64_t> ref;
  sim::Rng rng(p.seed);
  for (int i = 0; i < p.ops; ++i) {
    const int64_t k = static_cast<int64_t>(rng.below(p.key_range));
    const int op = static_cast<int>(rng.below(3));
    if (op == 0) {
      EXPECT_EQ(s->insert(c, k), ref.insert(k).second) << "op " << i;
    } else if (op == 1) {
      EXPECT_EQ(s->erase(c, k), ref.erase(k) == 1) << "op " << i;
    } else {
      EXPECT_EQ(s->contains(c, k), ref.count(k) == 1) << "op " << i;
    }
    if (i % 64 == 0) {
      ASSERT_TRUE(s->validate(c)) << name(p.kind) << " invariant at op " << i;
    }
  }
  EXPECT_EQ(s->size(c), ref.size());
  EXPECT_TRUE(s->validate(c));
  for (int64_t k = 0; k < p.key_range; ++k) {
    ASSERT_EQ(s->contains(c, k), ref.count(k) == 1) << "key " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, SetSweep,
    ::testing::Values(
        SweepParam{Kind::kAvl, 1, 64, 2000}, SweepParam{Kind::kAvl, 2, 1024, 4000},
        SweepParam{Kind::kAvl, 3, 7, 1500}, SweepParam{Kind::kLeaf, 1, 64, 2000},
        SweepParam{Kind::kLeaf, 2, 1024, 4000}, SweepParam{Kind::kLeaf, 3, 7, 1500},
        SweepParam{Kind::kInternal, 1, 64, 2000},
        SweepParam{Kind::kInternal, 2, 1024, 4000},
        SweepParam{Kind::kInternal, 3, 7, 1500},
        SweepParam{Kind::kSkip, 1, 64, 2000}, SweepParam{Kind::kSkip, 2, 1024, 4000},
        SweepParam{Kind::kSkip, 3, 7, 1500}),
    [](const ::testing::TestParamInfo<SweepParam>& i) {
      return std::string(name(i.param.kind)) + "_s" +
             std::to_string(i.param.seed) + "_r" +
             std::to_string(i.param.key_range);
    });

namespace {

// Concurrent oracle: per-key successful-insert minus successful-erase must
// equal final minus initial membership; structure invariants must hold.
void concurrentOracle(Kind kind, bool use_natle, int nthreads, int reps) {
  sim::MachineConfig mc = sim::LargeMachine();
  mc.seed = 42;
  Env env(mc);
  auto s = make(kind, env);
  constexpr int64_t kRange = 128;
  std::vector<int> initial(kRange, 0);
  {
    auto& sc = env.setupCtx();
    sim::Rng pre(7);
    for (int64_t k = 0; k < kRange; ++k) {
      if (pre.chance(0.5)) {
        s->insert(sc, k);
        initial[k] = 1;
      }
    }
  }
  sync::TleLock tle(env);
  sync::NatleLock natle(env);
  std::vector<int64_t> net(kRange, 0);
  for (int i = 0; i < nthreads; ++i) {
    const auto slot =
        sim::placeThread(mc, sim::PinPolicy::kFillSocketFirst,
                         (i * 37) % mc.totalThreads());  // spread across sockets
    env.spawnWorker(
        [&, i](ThreadCtx& ctx) {
          auto& rng = ctx.rng();
          for (int r = 0; r < reps; ++r) {
            const int64_t k = static_cast<int64_t>(rng.below(kRange));
            const bool ins = (rng.next() & 1) != 0;
            bool ok = false;
            auto cs = [&] { ok = ins ? s->insert(ctx, k) : s->erase(ctx, k); };
            if (use_natle) {
              natle.execute(ctx, cs);
            } else {
              tle.execute(ctx, cs);
            }
            if (ok) net[k] += ins ? 1 : -1;
          }
        },
        slot);
  }
  env.run();
  auto& sc = env.setupCtx();
  ASSERT_TRUE(s->validate(sc));
  for (int64_t k = 0; k < kRange; ++k) {
    const int fin = s->contains(sc, k) ? 1 : 0;
    EXPECT_EQ(net[k], fin - initial[k]) << "key " << k;
  }
}

}  // namespace

TEST(ConcurrentOracle, AvlTle) { concurrentOracle(Kind::kAvl, false, 12, 120); }
TEST(ConcurrentOracle, AvlNatle) { concurrentOracle(Kind::kAvl, true, 12, 120); }
TEST(ConcurrentOracle, LeafTle) { concurrentOracle(Kind::kLeaf, false, 12, 120); }
TEST(ConcurrentOracle, InternalTle) {
  concurrentOracle(Kind::kInternal, false, 12, 120);
}
TEST(ConcurrentOracle, SkipTle) { concurrentOracle(Kind::kSkip, false, 12, 120); }
TEST(ConcurrentOracle, SkipNatle) { concurrentOracle(Kind::kSkip, true, 12, 120); }

TEST(HashMap, BasicOps) {
  Env env(sim::LargeMachine());
  HashMap m(env, 64);
  auto& c = env.setupCtx();
  EXPECT_TRUE(m.insert(c, 1, 10));
  EXPECT_FALSE(m.insert(c, 1, 11));
  int64_t v = 0;
  EXPECT_TRUE(m.get(c, 1, v));
  EXPECT_EQ(v, 10);
  EXPECT_EQ(m.upsertAdd(c, 1, 5), 15);
  EXPECT_EQ(m.upsertAdd(c, 2, 3), 3);
  EXPECT_EQ(m.size(c), 2);
  EXPECT_TRUE(m.erase(c, 1));
  EXPECT_FALSE(m.erase(c, 1));
  EXPECT_FALSE(m.contains(c, 1));
  EXPECT_EQ(m.size(c), 1);
}

TEST(HashMap, ManyKeysAcrossBuckets) {
  Env env(sim::LargeMachine());
  HashMap m(env, 32);  // force chains
  auto& c = env.setupCtx();
  for (int64_t k = 0; k < 500; ++k) EXPECT_TRUE(m.insert(c, k * 7, k));
  EXPECT_EQ(m.size(c), 500);
  for (int64_t k = 0; k < 500; ++k) {
    int64_t v = -1;
    ASSERT_TRUE(m.get(c, k * 7, v));
    EXPECT_EQ(v, k);
  }
  for (int64_t k = 0; k < 500; k += 2) EXPECT_TRUE(m.erase(c, k * 7));
  EXPECT_EQ(m.size(c), 250);
}

TEST(DHeap, OrderedExtraction) {
  Env env(sim::LargeMachine());
  DHeap h(env, 256);
  auto& c = env.setupCtx();
  sim::Rng rng(5);
  std::multiset<int64_t> ref;
  for (int i = 0; i < 200; ++i) {
    const int64_t p = static_cast<int64_t>(rng.below(1000));
    ASSERT_TRUE(h.push(c, p, i));
    ref.insert(p);
    ASSERT_TRUE(h.validate(c));
  }
  int64_t prev = INT64_MIN;
  while (h.size(c) > 0) {
    int64_t p = 0, payload = 0;
    ASSERT_TRUE(h.pop(c, p, payload));
    EXPECT_GE(p, prev);
    prev = p;
    EXPECT_EQ(p, *ref.begin());
    ref.erase(ref.begin());
  }
  int64_t p = 0, payload = 0;
  EXPECT_FALSE(h.pop(c, p, payload));
}

TEST(DHeap, RejectsPushBeyondCapacity) {
  Env env(sim::LargeMachine());
  DHeap h(env, 8);
  auto& c = env.setupCtx();
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(h.push(c, i, i));
  EXPECT_FALSE(h.push(c, 99, 99));
  EXPECT_EQ(h.size(c), 8);
}
