// Pluggable request-arrival processes for the traffic engine.
//
// An ArrivalSpec is parsed from a compact CLI string (mirroring the fault
// grammar) and expanded lazily by an ArrivalProcess into a strictly
// increasing sequence of arrival times in simulated cycles. All randomness
// comes from a dedicated sim::streamSeed domain (kStreamArrival), entirely
// independent of workload streams: the offered trace for a given (spec,
// seed) is identical whatever lock implementation serves it and whatever
// --jobs value runs the sweep.
//
// Rates are in requests per simulated millisecond (i.e. thousands of
// requests per simulated second).
#pragma once

#include <cstdint>
#include <string>

#include "sim/rng.hpp"

namespace natle::traffic {

enum class ArrivalKind { kFixed, kPoisson, kBurst, kDiurnal };

const char* toString(ArrivalKind k);

// Parsed arrival specification. CLI grammar: `kind:k=v,k=v,...` —
//
//   fixed:rate=500                          constant inter-arrival gap
//   poisson:rate=500                        exponential gaps, mean 1/rate
//   burst:rate=500,on_ms=0.3,off_ms=0.7,mult=4
//                                           Poisson at rate*mult during each
//                                           on-window, rate otherwise
//   diurnal:rate=500,period_ms=2,amp=0.8    Poisson whose rate ramps along a
//                                           triangle wave rate*(1 +/- amp)
//                                           with the given period
//
// Unknown kinds or keys are errors (reported via parse).
struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate = 0;      // requests per simulated ms; 0 disables the process
  double on_ms = 0.3;   // burst: window length at rate*mult
  double off_ms = 0.7;  // burst: window length at the base rate
  double mult = 4.0;    // burst: rate multiplier inside on-windows
  double period_ms = 2.0;  // diurnal: triangle-wave period
  double amp = 0.8;        // diurnal: relative amplitude, in [0, 1)

  bool enabled() const { return rate > 0; }

  static bool parse(const std::string& spec, ArrivalSpec* out,
                    std::string* err);
  // Canonical spec string; parse(toSpecString()) round-trips.
  std::string toSpecString() const;
};

// Lazily generates the arrival sequence of one request class. next() is
// strictly increasing; kNever marks a disabled process.
class ArrivalProcess {
 public:
  static constexpr uint64_t kNever = ~uint64_t{0};

  // `ghz` converts generated times (ms) to cycles; `seed` should come from
  // sim::streamSeed(base_seed, sim::kStreamArrival, class_index).
  ArrivalProcess(const ArrivalSpec& spec, double ghz, uint64_t seed)
      : spec_(spec), ghz_(ghz), rng_(seed) {}

  // Next arrival time in simulated cycles.
  uint64_t next();

 private:
  // Exponential gap with the given rate (per ms), from one uniform draw.
  double expGap(double rate_per_ms);
  // Instantaneous diurnal rate at time t (ms).
  double diurnalRate(double t_ms) const;

  ArrivalSpec spec_;
  double ghz_;
  double t_ms_ = 0;  // time of the previously generated arrival
  uint64_t last_cycles_ = 0;
  sim::Rng rng_;
};

}  // namespace natle::traffic
