#include "traffic/arrival.hpp"

#include <charconv>
#include <cmath>

namespace natle::traffic {

const char* toString(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kFixed: return "fixed";
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBurst: return "burst";
    case ArrivalKind::kDiurnal: return "diurnal";
  }
  return "?";
}

namespace {

bool parseNum(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || !std::isfinite(v)) return false;
  *out = v;
  return true;
}

void appendNum(std::string& out, double v) {
  char buf[32];
  auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  out.append(buf, p);
}

}  // namespace

bool ArrivalSpec::parse(const std::string& spec, ArrivalSpec* out,
                        std::string* err) {
  auto fail = [err](const std::string& m) {
    if (err != nullptr) *err = m;
    return false;
  };
  ArrivalSpec s;
  const size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  if (kind == "fixed") {
    s.kind = ArrivalKind::kFixed;
  } else if (kind == "poisson") {
    s.kind = ArrivalKind::kPoisson;
  } else if (kind == "burst") {
    s.kind = ArrivalKind::kBurst;
  } else if (kind == "diurnal") {
    s.kind = ArrivalKind::kDiurnal;
  } else {
    return fail("unknown arrival kind: \"" + kind +
                "\" (want fixed, poisson, burst, or diurnal)");
  }
  bool have_rate = false;
  if (colon != std::string::npos) {
    size_t pos = colon + 1;
    while (pos <= spec.size()) {
      const size_t comma = spec.find(',', pos);
      const std::string kv =
          spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
      pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
      if (kv.empty()) return fail("empty key=value pair in arrival spec");
      const size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        return fail("expected key=value, got \"" + kv + "\"");
      }
      const std::string key = kv.substr(0, eq);
      double v = 0;
      if (!parseNum(kv.substr(eq + 1), &v)) {
        return fail("invalid number for " + key + ": \"" + kv.substr(eq + 1) +
                    "\"");
      }
      if (key == "rate") {
        s.rate = v;
        have_rate = true;
      } else if (key == "on_ms" && s.kind == ArrivalKind::kBurst) {
        s.on_ms = v;
      } else if (key == "off_ms" && s.kind == ArrivalKind::kBurst) {
        s.off_ms = v;
      } else if (key == "mult" && s.kind == ArrivalKind::kBurst) {
        s.mult = v;
      } else if (key == "period_ms" && s.kind == ArrivalKind::kDiurnal) {
        s.period_ms = v;
      } else if (key == "amp" && s.kind == ArrivalKind::kDiurnal) {
        s.amp = v;
      } else {
        return fail("unknown key for " + kind + " arrival: \"" + key + "\"");
      }
    }
  }
  if (!have_rate || s.rate <= 0) {
    return fail("arrival spec needs rate=<requests per simulated ms> > 0");
  }
  if (s.kind == ArrivalKind::kBurst) {
    if (s.on_ms <= 0 || s.off_ms <= 0) {
      return fail("burst arrival needs on_ms > 0 and off_ms > 0");
    }
    if (s.mult < 1) return fail("burst arrival needs mult >= 1");
  }
  if (s.kind == ArrivalKind::kDiurnal) {
    if (s.period_ms <= 0) return fail("diurnal arrival needs period_ms > 0");
    if (s.amp < 0 || s.amp >= 1) {
      return fail("diurnal arrival needs amp in [0, 1)");
    }
  }
  *out = s;
  return true;
}

std::string ArrivalSpec::toSpecString() const {
  std::string out = toString(kind);
  out += ":rate=";
  appendNum(out, rate);
  if (kind == ArrivalKind::kBurst) {
    out += ",on_ms=";
    appendNum(out, on_ms);
    out += ",off_ms=";
    appendNum(out, off_ms);
    out += ",mult=";
    appendNum(out, mult);
  } else if (kind == ArrivalKind::kDiurnal) {
    out += ",period_ms=";
    appendNum(out, period_ms);
    out += ",amp=";
    appendNum(out, amp);
  }
  return out;
}

double ArrivalProcess::expGap(double rate_per_ms) {
  // Inverse-CDF exponential sample. uniform() < 1, so log1p stays finite.
  return -std::log1p(-rng_.uniform()) / rate_per_ms;
}

double ArrivalProcess::diurnalRate(double t_ms) const {
  // Triangle wave in [-1, 1]: rising through the first half period, falling
  // through the second, starting at the trough.
  const double p = spec_.period_ms;
  const double x = (t_ms - std::floor(t_ms / p) * p) / p;  // [0, 1)
  const double tri = x < 0.5 ? 4 * x - 1 : 3 - 4 * x;
  return spec_.rate * (1.0 + spec_.amp * tri);
}

uint64_t ArrivalProcess::next() {
  if (!spec_.enabled()) return kNever;
  switch (spec_.kind) {
    case ArrivalKind::kFixed:
      t_ms_ += 1.0 / spec_.rate;
      break;
    case ArrivalKind::kPoisson:
      t_ms_ += expGap(spec_.rate);
      break;
    case ArrivalKind::kBurst: {
      // Piecewise-exponential gaps: draw at the phase's rate and, when the
      // draw crosses the on/off boundary, restart from the boundary at the
      // next phase's rate (exact for a piecewise-constant Poisson process —
      // the exponential is memoryless).
      double t = t_ms_;
      const double period = spec_.on_ms + spec_.off_ms;
      for (;;) {
        const double ph = t - std::floor(t / period) * period;
        const bool on = ph < spec_.on_ms;
        const double boundary = t + ((on ? spec_.on_ms : period) - ph);
        const double g = expGap(on ? spec_.rate * spec_.mult : spec_.rate);
        if (t + g < boundary) {
          t += g;
          break;
        }
        t = boundary;
      }
      t_ms_ = t;
      break;
    }
    case ArrivalKind::kDiurnal: {
      // Thinning against the peak rate: candidate arrivals at rate*(1+amp),
      // each accepted with probability rate(t)/peak.
      const double peak = spec_.rate * (1.0 + spec_.amp);
      double t = t_ms_;
      for (;;) {
        t += expGap(peak);
        if (rng_.uniform() * peak < diurnalRate(t)) break;
      }
      t_ms_ = t;
      break;
    }
  }
  uint64_t c = static_cast<uint64_t>(t_ms_ * 1e6 * ghz_);
  // Strictly increasing in cycles even when two ms-domain arrivals round to
  // the same cycle (sub-cycle gaps at extreme rates).
  if (c <= last_cycles_) c = last_cycles_ + 1;
  last_cycles_ = c;
  return c;
}

}  // namespace natle::traffic
