// Planning helpers for traffic-driven service sweeps.
//
// ServiceSweep mirrors exp::SetSweep for ServiceConfig points: it expands a
// grid of service runs into self-contained jobs and maps the shared CLI
// adversity/traffic flags onto every point. Latency quantiles are not
// mergeable across runs (nearest-rank over distinct sample sets), so each
// point is exactly one trial; experiments that want replication plan
// separate points with distinct seeds.
#pragma once

#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "traffic/service.hpp"

namespace natle::traffic {

// Runs one service simulation and packages it for the harness: value =
// total completed krps, per-class scalars in aux (round-trip through
// isolate mode), and the full metrics block in service_json.
exp::PointData runServicePoint(const ServiceConfig& cfg);

class ServiceSweep {
 public:
  explicit ServiceSweep(const workload::BenchOptions& opt);

  // Queue one data point. CLI-level overrides (arrival spec, duration, SLO,
  // trace/fault/watchdog/placement) are folded in here; a point's own
  // explicit settings win over empty/zero CLI values.
  void point(exp::Plan& plan, std::string series, double x,
             const ServiceConfig& cfg);

  struct Entry {
    std::string series;
    double x = 0;
    size_t job = 0;  // index into the plan this sweep filled
  };
  const std::vector<Entry>& points() const { return entries_; }

 private:
  std::vector<Entry> entries_;
  bool trace_ = false;
  fault::FaultSpec fault_;
  double watchdog_ms_ = 0;
  mem::PlacePolicy placement_ = mem::PlacePolicy::kFirstTouch;
  // --arrival: parsed spec applied to every class of every point (empty =
  // keep the experiment's arrivals). --duration-ms / --slo-us: 0 = keep.
  bool have_arrival_ = false;
  ArrivalSpec arrival_;
  double duration_ms_ = 0;
  double slo_us_ = 0;
};

}  // namespace natle::traffic
