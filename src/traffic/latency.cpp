#include "traffic/latency.hpp"

#include <algorithm>

namespace natle::traffic {

void LatencyAccum::sort() const {
  if (sorted_) return;
  std::sort(samples_.begin(), samples_.end());
  sorted_ = true;
}

uint64_t LatencyAccum::quantileCycles(uint64_t permille) const {
  if (samples_.empty()) return 0;
  sort();
  const uint64_t n = samples_.size();
  uint64_t rank = (permille * n + 999) / 1000;  // ceil, integer-exact
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return samples_[rank - 1];
}

LatencySummary LatencyAccum::summary(double slo_us) const {
  LatencySummary s;
  s.count = count();
  if (s.count == 0) return s;
  sort();
  s.mean_us = static_cast<double>(sum_cycles_) /
              static_cast<double>(s.count) / (ghz_ * 1e3);
  s.p50_us = toUs(quantileCycles(500));
  s.p95_us = toUs(quantileCycles(950));
  s.p99_us = toUs(quantileCycles(990));
  s.p999_us = toUs(quantileCycles(999));
  s.max_us = toUs(samples_.back());
  if (slo_us > 0) {
    for (uint64_t c : samples_) {
      if (toUs(c) > slo_us) s.slo_violations++;
    }
  }
  return s;
}

}  // namespace natle::traffic
