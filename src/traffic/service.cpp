#include "traffic/service.hpp"

#include <cmath>
#include <cstddef>
#include <deque>
#include <memory>

#include "ds/avl.hpp"
#include "ds/bst_internal.hpp"
#include "ds/bst_leaf.hpp"
#include "ds/skiplist.hpp"
#include "htm/env.hpp"
#include "obs/trace.hpp"

namespace natle::traffic {

const char* toString(ClientModel m) {
  switch (m) {
    case ClientModel::kOpen: return "open";
    case ClientModel::kClosed: return "closed";
  }
  return "?";
}

const char* toString(RequestKind k) {
  switch (k) {
    case RequestKind::kPoint: return "point";
    case RequestKind::kScan: return "scan";
    case RequestKind::kBulk: return "bulk";
  }
  return "?";
}

namespace {

// Type-erased set facade (mirrors the one in workload/setbench.cpp, which is
// internal to that translation unit).
struct AnySet {
  virtual ~AnySet() = default;
  virtual bool contains(htm::ThreadCtx& c, int64_t k) = 0;
  virtual bool insert(htm::ThreadCtx& c, int64_t k) = 0;
  virtual bool erase(htm::ThreadCtx& c, int64_t k) = 0;
};

template <typename S>
struct SetOf : AnySet {
  explicit SetOf(htm::Env& env) : s(env) {}
  bool contains(htm::ThreadCtx& c, int64_t k) override {
    return s.contains(c, k);
  }
  bool insert(htm::ThreadCtx& c, int64_t k) override { return s.insert(c, k); }
  bool erase(htm::ThreadCtx& c, int64_t k) override { return s.erase(c, k); }
  S s;
};

std::unique_ptr<AnySet> makeSet(workload::DsKind kind, htm::Env& env) {
  switch (kind) {
    case workload::DsKind::kAvl:
      return std::make_unique<SetOf<ds::AvlTree>>(env);
    case workload::DsKind::kLeafBst:
      return std::make_unique<SetOf<ds::LeafBst>>(env);
    case workload::DsKind::kInternalBst:
      return std::make_unique<SetOf<ds::InternalBst>>(env);
    case workload::DsKind::kSkipList:
      return std::make_unique<SetOf<ds::SkipList>>(env);
  }
  return nullptr;
}

struct Request {
  uint64_t arrival = 0;   // cycles
  uint32_t cls = 0;       // index into cfg.classes
  uint64_t key_seed = 0;  // per-request key material (drawn in arrival order)
};

// Open-loop traffic source: per-class lazy arrival generators merged into
// one FIFO in global arrival order. Pure harness state — it lives outside
// simulated time and occupies no simulated core. Key seeds are drawn in
// arrival order from the per-class request stream, so the offered trace is
// independent of which server fiber ends up taking each request.
class OpenTraffic {
 public:
  static constexpr uint64_t kNever = ArrivalProcess::kNever;

  OpenTraffic(const ServiceConfig& cfg, const sim::MachineConfig& mc,
              uint64_t stats_start, uint64_t t_end)
      : stats_start_(stats_start), t_end_(t_end) {
    const size_t n = cfg.classes.size();
    procs_.reserve(n);
    key_rng_.reserve(n);
    next_.assign(n, kNever);
    offered_.assign(n, 0);
    for (size_t ci = 0; ci < n; ++ci) {
      procs_.emplace_back(cfg.classes[ci].arrival, mc.ghz,
                          sim::streamSeed(mc.seed, sim::kStreamArrival, ci));
      key_rng_.emplace_back(
          sim::streamSeed(mc.seed, sim::kStreamRequest, ci));
      advance(ci);
    }
  }

  // Move every arrival <= now into the FIFO, lowest timestamp first (ties
  // break toward the lower class index — a fixed, documented order).
  void materialize(uint64_t now) {
    for (;;) {
      size_t best = SIZE_MAX;
      uint64_t bt = kNever;
      for (size_t i = 0; i < next_.size(); ++i) {
        if (next_[i] < bt) {
          bt = next_[i];
          best = i;
        }
      }
      if (best == SIZE_MAX || bt > now) break;
      fifo_.push_back(Request{bt, static_cast<uint32_t>(best),
                              key_rng_[best].next()});
      if (bt >= stats_start_) offered_[best]++;
      advance(best);
    }
    if (fifo_.size() > peak_queue_) peak_queue_ = fifo_.size();
  }

  bool empty() const { return fifo_.empty(); }

  Request pop() {
    Request r = fifo_.front();
    fifo_.pop_front();
    return r;
  }

  // Earliest not-yet-materialized arrival; kNever once every generator has
  // run past the end of the run.
  uint64_t nextArrival() const {
    uint64_t bt = kNever;
    for (uint64_t t : next_) bt = t < bt ? t : bt;
    return bt;
  }

  // Post-run: walk the remaining generator output so offered() covers the
  // whole measurement window even when the service fell far behind.
  void drainOffered() {
    for (size_t i = 0; i < next_.size(); ++i) {
      while (next_[i] != kNever) {
        if (next_[i] >= stats_start_) offered_[i]++;
        advance(i);
      }
    }
  }

  uint64_t offered(size_t ci) const { return offered_[ci]; }
  uint64_t peakQueue() const { return peak_queue_; }

 private:
  void advance(size_t ci) {
    const uint64_t a = procs_[ci].next();
    next_[ci] = a >= t_end_ ? kNever : a;
  }

  uint64_t stats_start_;
  uint64_t t_end_;
  std::vector<ArrivalProcess> procs_;
  std::vector<sim::Rng> key_rng_;
  std::vector<uint64_t> next_;     // per class; kNever = exhausted
  std::vector<uint64_t> offered_;  // arrivals with timestamp in the window
  std::deque<Request> fifo_;
  uint64_t peak_queue_ = 0;
};

// Latency accumulation for one class: overall plus per-time-bucket (by
// arrival time within the measurement window).
struct ClassRecorder {
  ClassRecorder(double ghz, uint64_t stats_start, uint64_t t_end, int nb)
      : total(ghz), stats_start_(stats_start), t_end_(t_end) {
    buckets.assign(static_cast<size_t>(nb < 1 ? 1 : nb), LatencyAccum(ghz));
  }

  void record(uint64_t arrival, uint64_t done) {
    const uint64_t lat = done - arrival;
    total.add(lat);
    const uint64_t span = t_end_ - stats_start_;
    size_t b = span > 0 ? static_cast<size_t>((arrival - stats_start_) *
                                              buckets.size() / span)
                        : 0;
    if (b >= buckets.size()) b = buckets.size() - 1;
    buckets[b].add(lat);
  }

  LatencyAccum total;
  std::vector<LatencyAccum> buckets;

 private:
  uint64_t stats_start_;
  uint64_t t_end_;
};

}  // namespace

ServiceResult runService(const ServiceConfig& cfg) {
  ServiceResult out;
  out.model = cfg.model;
  out.classes.resize(cfg.classes.size());

  sim::MachineConfig mc = cfg.machine;
  mc.seed = cfg.seed;
  htm::Env env(mc, true, cfg.placement);
  auto set = makeSet(cfg.ds, env);

  // Prefill to half the key range in random order — identical derivation to
  // runSetBench, so the service and the microbench see the same structure.
  {
    auto& sc = env.setupCtx();
    sim::Rng pre(mc.seed ^ 0xabcdef);
    std::vector<int64_t> keys(cfg.key_range);
    for (int64_t k = 0; k < cfg.key_range; ++k) keys[k] = k;
    for (size_t i = keys.size(); i > 1; --i) {
      std::swap(keys[i - 1], keys[pre.below(i)]);
    }
    for (size_t i = 0; i < keys.size() / 2; ++i) set->insert(sc, keys[i]);
  }

  // unique_ptr + declared after env: a tripped watchdog throws out of
  // env.run() and the locks must still unregister their diagnostics.
  std::unique_ptr<sync::TleLock> tle;
  std::unique_ptr<sync::NatleLock> natle;
  if (cfg.sync == workload::SyncKind::kTle) {
    tle = std::make_unique<sync::TleLock>(env, cfg.tle);
  } else if (cfg.sync == workload::SyncKind::kNatle) {
    natle = std::make_unique<sync::NatleLock>(env, cfg.tle, cfg.natle);
    natle->setActiveRows(cfg.nthreads < 128 ? 128 : cfg.nthreads);
  }

  const uint64_t stats_start = mc.msToCycles(cfg.warmup_ms);
  const uint64_t t_end = mc.msToCycles(cfg.warmup_ms + cfg.measure_ms);
  env.setStatsStart(stats_start);

  if (cfg.fault.enabled()) env.installFaults(cfg.fault);
  if (cfg.watchdog_ms > 0) env.enableWatchdog(mc.msToCycles(cfg.watchdog_ms));
  if (cfg.cycle_limit_ms > 0) {
    env.setCycleLimit(mc.msToCycles(cfg.cycle_limit_ms));
  }

  std::unique_ptr<obs::Tracer> tracer;
  if (cfg.trace) {
    tracer = std::make_unique<obs::Tracer>(cfg.trace_raw);
    std::vector<uint8_t> hops(static_cast<size_t>(mc.sockets) * mc.sockets);
    for (int a = 0; a < mc.sockets; ++a) {
      for (int b = 0; b < mc.sockets; ++b) {
        hops[static_cast<size_t>(a) * mc.sockets + b] =
            static_cast<uint8_t>(a == b ? 0 : mc.hops(a, b));
      }
    }
    tracer->setTopology(mc.sockets, std::move(hops));
    std::vector<std::string> names;
    for (const ClassSpec& c : cfg.classes) names.push_back(c.name);
    tracer->setClassNames(std::move(names));
    env.setTracer(tracer.get());
  }

  std::vector<ClassRecorder> rec;
  rec.reserve(cfg.classes.size());
  for (size_t ci = 0; ci < cfg.classes.size(); ++ci) {
    rec.emplace_back(mc.ghz, stats_start, t_end, cfg.latency_buckets);
  }

  auto exec = [&](htm::ThreadCtx& ctx, auto&& op) {
    if (cfg.sync == workload::SyncKind::kNone) {
      op();
    } else if (tle) {
      tle->execute(ctx, op);
    } else {
      natle->execute(ctx, op);
    }
  };

  // One request = one critical section. All random key material is drawn
  // before the section starts, so an aborted-and-retried section replays
  // identical work.
  auto serve = [&](htm::ThreadCtx& ctx, uint32_t ci, uint64_t key_seed) {
    const ClassSpec& cs = cfg.classes[ci];
    sim::Rng r(key_seed);
    const uint64_t kr = static_cast<uint64_t>(cfg.key_range);
    switch (cs.kind) {
      case RequestKind::kPoint: {
        const int64_t key = static_cast<int64_t>(r.below(kr));
        const bool is_update = r.below(100) < static_cast<uint64_t>(cs.update_pct);
        const bool is_insert = (r.next() & 1) != 0;
        exec(ctx, [&] {
          if (!is_update) {
            set->contains(ctx, key);
          } else if (is_insert) {
            set->insert(ctx, key);
          } else {
            set->erase(ctx, key);
          }
        });
        break;
      }
      case RequestKind::kScan: {
        const int64_t lo = static_cast<int64_t>(r.below(kr));
        exec(ctx, [&] {
          for (int i = 0; i < cs.scan_len; ++i) {
            set->contains(ctx, (lo + i) % cfg.key_range);
          }
        });
        break;
      }
      case RequestKind::kBulk: {
        std::vector<int64_t> keys(static_cast<size_t>(cs.bulk_n));
        const uint64_t ins_bits = r.next();
        for (auto& k : keys) k = static_cast<int64_t>(r.below(kr));
        exec(ctx, [&] {
          for (size_t i = 0; i < keys.size(); ++i) {
            if ((ins_bits >> (i & 63)) & 1) {
              set->insert(ctx, keys[i]);
            } else {
              set->erase(ctx, keys[i]);
            }
          }
        });
        break;
      }
    }
  };

  OpenTraffic q(cfg, mc, stats_start, t_end);
  std::vector<uint64_t> closed_offered(cfg.classes.size(), 0);

  if (cfg.model == ClientModel::kOpen) {
    for (int i = 0; i < cfg.nthreads; ++i) {
      const sim::HwSlot slot = sim::placeThread(mc, cfg.pin, i);
      const bool pinned = cfg.pin != sim::PinPolicy::kUnpinned;
      env.spawnWorker(
          [&, t_end, stats_start](htm::ThreadCtx& ctx) {
            for (;;) {
              const uint64_t now = ctx.nowCycles();
              if (now >= t_end) break;
              q.materialize(now);
              if (q.empty()) {
                const uint64_t na = q.nextArrival();
                if (na == OpenTraffic::kNever) break;
                // Idle until the next arrival: raw cycles (an idle server
                // executes no instructions, so no hyperthread work penalty),
                // and note progress so a deliberately quiet arrival process
                // cannot trip the livelock watchdog.
                env.machine().charge(ctx.simThread(), na - now);
                env.noteProgress(ctx.simThread().clock);
                env.machine().maybeYield(ctx.simThread());
                continue;
              }
              const Request r = q.pop();
              ctx.opBoundary();
              ctx.setClassTag(static_cast<int8_t>(r.cls));
              serve(ctx, r.cls, r.key_seed);
              ctx.work(cfg.op_overhead_cycles);
              const uint64_t done = ctx.nowCycles();
              if (r.arrival >= stats_start) {
                ctx.stats().ops++;
                rec[r.cls].record(r.arrival, done);
              }
            }
          },
          slot, pinned);
    }
  } else {
    // Closed loop: partition client fibers across classes by their
    // `clients` weights (round-robin over the expanded weight pattern).
    std::vector<uint32_t> pattern;
    for (size_t ci = 0; ci < cfg.classes.size(); ++ci) {
      for (int k = 0; k < cfg.classes[ci].clients; ++k) {
        pattern.push_back(static_cast<uint32_t>(ci));
      }
    }
    if (pattern.empty()) pattern.push_back(0);
    for (int i = 0; i < cfg.nthreads; ++i) {
      const sim::HwSlot slot = sim::placeThread(mc, cfg.pin, i);
      const bool pinned = cfg.pin != sim::PinPolicy::kUnpinned;
      const uint32_t ci = pattern[static_cast<size_t>(i) % pattern.size()];
      const uint64_t think_seed =
          sim::streamSeed(mc.seed, sim::kStreamThink,
                          static_cast<uint64_t>(i));
      const uint64_t req_seed =
          sim::streamSeed(mc.seed, sim::kStreamRequest,
                          static_cast<uint64_t>(i));
      env.spawnWorker(
          [&, ci, think_seed, req_seed, t_end, stats_start](
              htm::ThreadCtx& ctx) {
            sim::Rng think(think_seed);
            sim::Rng req(req_seed);
            ctx.setClassTag(static_cast<int8_t>(ci));
            const ClassSpec& cs = cfg.classes[ci];
            for (;;) {
              // Exponential think time, charged as raw cycles: a thinking
              // client holds its hardware thread but executes nothing.
              const double gap_ms =
                  -std::log1p(-think.uniform()) * cs.think_ms;
              env.machine().charge(
                  ctx.simThread(),
                  static_cast<uint64_t>(gap_ms * 1e6 * mc.ghz));
              env.machine().maybeYield(ctx.simThread());
              const uint64_t start = ctx.nowCycles();
              if (start >= t_end) break;
              ctx.opBoundary();
              serve(ctx, ci, req.next());
              ctx.work(cfg.op_overhead_cycles);
              const uint64_t done = ctx.nowCycles();
              if (start >= stats_start) {
                ctx.stats().ops++;
                rec[ci].record(start, done);
                closed_offered[ci]++;
              }
            }
          },
          slot, pinned);
    }
  }

  env.run();

  out.stats = env.totals();
  const uint64_t aborts = out.stats.totalAborts();
  out.abort_rate = out.stats.tx_begins > 0
                       ? static_cast<double>(aborts) /
                             static_cast<double>(out.stats.tx_begins)
                       : 0;
  if (tracer != nullptr) {
    out.has_attribution = true;
    out.attribution = tracer->attribution();
    if (cfg.trace_raw) out.raw_trace = tracer->dumpJsonl();
  }

  out.peak_queue = cfg.model == ClientModel::kOpen ? q.peakQueue() : 0;
  if (cfg.model == ClientModel::kOpen) q.drainOffered();
  for (size_t ci = 0; ci < cfg.classes.size(); ++ci) {
    const ClassSpec& cs = cfg.classes[ci];
    ClassMetrics& m = out.classes[ci];
    m.name = cs.name;
    m.kind = cs.kind;
    m.slo_us = cs.slo_us;
    m.completed = rec[ci].total.count();
    m.offered =
        cfg.model == ClientModel::kOpen ? q.offered(ci) : closed_offered[ci];
    m.latency = rec[ci].total.summary(cs.slo_us);
    m.slo_violations = m.latency.slo_violations;
    if (m.offered > m.completed) m.slo_violations += m.offered - m.completed;
    m.throughput_krps =
        cfg.measure_ms > 0 ? static_cast<double>(m.completed) / cfg.measure_ms
                           : 0;
    out.total_krps += m.throughput_krps;
    if (cfg.model == ClientModel::kOpen && m.offered > m.completed) {
      out.backlog_end += m.offered - m.completed;
    }
    const size_t nb = rec[ci].buckets.size();
    for (size_t b = 0; b < nb; ++b) {
      const LatencyAccum& acc = rec[ci].buckets[b];
      const double start_ms =
          cfg.warmup_ms + static_cast<double>(b) * cfg.measure_ms /
                              static_cast<double>(nb);
      m.series.push_back({start_ms, static_cast<double>(acc.count()),
                          acc.toUs(acc.quantileCycles(990))});
    }
  }
  return out;
}

void appendJson(workload::JsonWriter& w, const ServiceConfig& c) {
  w.beginObject();
  w.key("machine");
  workload::appendJson(w, c.machine);
  w.key("model").value(toString(c.model));
  w.key("nthreads").value(c.nthreads);
  w.key("key_range").value(c.key_range);
  w.key("ds").value(workload::toString(c.ds));
  w.key("sync").value(workload::toString(c.sync));
  w.key("tle");
  workload::appendJson(w, c.tle);
  if (c.sync == workload::SyncKind::kNatle) {
    w.key("natle");
    workload::appendJson(w, c.natle);
  }
  w.key("pin").value(sim::toString(c.pin));
  w.key("warmup_ms").value(c.warmup_ms);
  w.key("measure_ms").value(c.measure_ms);
  w.key("latency_buckets").value(c.latency_buckets);
  w.key("op_overhead_cycles").value(c.op_overhead_cycles);
  w.key("seed").value(c.seed);
  w.key("classes");
  w.beginArray();
  for (const ClassSpec& cs : c.classes) {
    w.beginObject();
    w.key("name").value(cs.name);
    w.key("kind").value(toString(cs.kind));
    w.key("arrival").value(cs.arrival.toSpecString());
    w.key("clients").value(cs.clients);
    w.key("think_ms").value(cs.think_ms);
    w.key("update_pct").value(cs.update_pct);
    w.key("scan_len").value(cs.scan_len);
    w.key("bulk_n").value(cs.bulk_n);
    w.key("slo_us").value(cs.slo_us);
    w.endObject();
  }
  w.endArray();
  // Adversity keys only when active, matching SetBenchConfig's convention.
  if (c.watchdog_ms > 0) w.key("watchdog_ms").value(c.watchdog_ms);
  if (c.cycle_limit_ms > 0) w.key("cycle_limit_ms").value(c.cycle_limit_ms);
  if (c.fault.enabled()) w.key("fault").value(c.fault.toSpecString());
  if (c.placement != mem::PlacePolicy::kFirstTouch) {
    w.key("placement").value(mem::toString(c.placement));
  }
  w.endObject();
}

std::string toJson(const ServiceConfig& c) {
  workload::JsonWriter w;
  appendJson(w, c);
  return w.take();
}

std::string metricsJson(const ServiceResult& r) {
  workload::JsonWriter w;
  w.beginObject();
  w.key("model").value(toString(r.model));
  w.key("backlog_end").value(r.backlog_end);
  w.key("peak_queue").value(r.peak_queue);
  w.key("total_krps").value(r.total_krps);
  w.key("classes");
  w.beginArray();
  for (const ClassMetrics& m : r.classes) {
    w.beginObject();
    w.key("name").value(m.name);
    w.key("kind").value(toString(m.kind));
    w.key("slo_us").value(m.slo_us);
    w.key("offered").value(m.offered);
    w.key("completed").value(m.completed);
    w.key("slo_violations").value(m.slo_violations);
    w.key("throughput_krps").value(m.throughput_krps);
    w.key("latency_us");
    w.beginObject();
    w.key("count").value(m.latency.count);
    w.key("mean").value(m.latency.mean_us);
    w.key("p50").value(m.latency.p50_us);
    w.key("p95").value(m.latency.p95_us);
    w.key("p99").value(m.latency.p99_us);
    w.key("p999").value(m.latency.p999_us);
    w.key("max").value(m.latency.max_us);
    w.endObject();
    w.key("series");
    w.beginArray();
    for (const auto& row : m.series) {
      w.beginArray().value(row[0]).value(row[1]).value(row[2]).endArray();
    }
    w.endArray();
    w.endObject();
  }
  w.endArray();
  w.endObject();
  return w.take();
}

}  // namespace natle::traffic
