// Per-request latency accounting: exact quantiles, SLO violation counts,
// and a time-bucketed series for spotting mid-run tail blowups.
//
// Samples are retained raw (cycles) and quantiles computed by nearest-rank
// over the sorted sample set — exact, deterministic, and mergeable by
// concatenation. Quantiles are requested in permille so the rank computation
// is pure integer math (ceil(p/1000 * N) as (p*N + 999) / 1000): no
// floating-point boundary surprises at e.g. p999 of exactly 1000 samples.
#pragma once

#include <cstdint>
#include <vector>

namespace natle::traffic {

struct LatencySummary {
  uint64_t count = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double max_us = 0;
  uint64_t slo_violations = 0;  // samples strictly above the SLO threshold
};

class LatencyAccum {
 public:
  // `ghz` converts sample cycles to microseconds for the summary.
  explicit LatencyAccum(double ghz = 1.0) : ghz_(ghz) {}

  void add(uint64_t latency_cycles) {
    samples_.push_back(latency_cycles);
    sum_cycles_ += latency_cycles;
    sorted_ = false;
  }

  uint64_t count() const { return samples_.size(); }

  // Nearest-rank quantile: the smallest sample with at least
  // ceil(permille/1000 * N) samples <= it. 0 when empty; permille 1000 (or
  // anything above) selects the maximum.
  uint64_t quantileCycles(uint64_t permille) const;

  double toUs(uint64_t cycles) const {
    return static_cast<double>(cycles) / (ghz_ * 1e3);
  }

  // Full summary; slo_us <= 0 disables violation counting.
  LatencySummary summary(double slo_us) const;

 private:
  void sort() const;

  double ghz_;
  mutable std::vector<uint64_t> samples_;
  mutable bool sorted_ = true;
  uint64_t sum_cycles_ = 0;
};

}  // namespace natle::traffic
