// Traffic-driven service benchmark: request traffic (open- or closed-loop)
// against one shared set structure protected by an elided lock, with
// per-request arrival-to-completion latency in simulated cycles.
//
// Open loop: requests arrive on deterministic arrival processes (one per
// request class) into a global FIFO; cfg.nthreads server fibers drain it.
// When the service cannot keep up the queue grows without bound — queueing
// delay is part of each request's latency, which is exactly the tail-latency
// story fixed-ops microbenchmarks cannot tell. There are no dispatcher
// fibers: arrivals materialize from lazy generators at pop time, so client
// machinery occupies no simulated cores and perturbs no hyperthread
// occupancy.
//
// Closed loop: cfg.nthreads client fibers each run think -> request -> think
// with exponential think times; offered load adapts to service speed (no
// backlog by construction).
//
// Determinism: arrivals, per-request key material, and think times all come
// from dedicated sim::streamSeed domains (kStreamArrival / kStreamRequest /
// kStreamThink), so the offered trace is byte-identical across sync kinds,
// --jobs values, and runs; the serving order is the deterministic fiber
// schedule.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "htm/stats.hpp"
#include "mem/alloc.hpp"
#include "obs/attribution.hpp"
#include "sim/config.hpp"
#include "sim/topology.hpp"
#include "sync/natle.hpp"
#include "sync/tle.hpp"
#include "traffic/arrival.hpp"
#include "traffic/latency.hpp"
#include "workload/json.hpp"
#include "workload/setbench.hpp"

namespace natle::traffic {

enum class ClientModel { kOpen, kClosed };
enum class RequestKind { kPoint, kScan, kBulk };

const char* toString(ClientModel m);
const char* toString(RequestKind k);

// One tenant / request class. All classes hit the same shared structure;
// the kind decides what one request does inside one critical section:
//   point  one contains/insert/erase (update_pct mix, insert/erase split)
//   scan   scan_len consecutive contains calls (large read set)
//   bulk   bulk_n random inserts/erases (large write set; the fallback
//          serialization such requests force on everyone else is the Brown &
//          Ravi concurrent-fallback cost, measured here as tail latency)
struct ClassSpec {
  std::string name = "point";
  RequestKind kind = RequestKind::kPoint;
  ArrivalSpec arrival;     // open loop; rate = 0 makes the class silent
  int clients = 1;         // closed loop: relative share of client threads
  double think_ms = 0.02;  // closed loop: mean exponential think time
  int update_pct = 100;    // point: update fraction (rest lookups)
  int scan_len = 64;       // scan: consecutive keys per request
  int bulk_n = 24;         // bulk: inserts/erases per request
  double slo_us = 100;     // per-class latency SLO threshold
};

struct ServiceConfig {
  sim::MachineConfig machine = sim::LargeMachine();
  ClientModel model = ClientModel::kOpen;
  // Server fibers (open loop) or client fibers (closed loop).
  int nthreads = 18;
  int64_t key_range = 65536;
  workload::DsKind ds = workload::DsKind::kAvl;
  workload::SyncKind sync = workload::SyncKind::kTle;
  sync::TlePolicy tle;
  sync::NatleConfig natle;
  sim::PinPolicy pin = sim::PinPolicy::kFillSocketFirst;
  double warmup_ms = 0.5;   // simulated; requests arriving here are unsampled
  double measure_ms = 2.0;  // simulated measurement window
  // Time buckets the measurement window splits into for the latency series.
  int latency_buckets = 16;
  uint64_t op_overhead_cycles = 140;
  uint64_t seed = 1;
  std::vector<ClassSpec> classes;
  // Adversity knobs, serialized only when active (see SetBenchConfig).
  fault::FaultSpec fault;
  double watchdog_ms = 0;
  double cycle_limit_ms = 0;
  mem::PlacePolicy placement = mem::PlacePolicy::kFirstTouch;
  bool trace = false;
  bool trace_raw = false;
};

struct ClassMetrics {
  std::string name;
  RequestKind kind = RequestKind::kPoint;
  double slo_us = 0;
  // Arrivals with arrival time inside the measurement window.
  uint64_t offered = 0;
  // Of those, requests that completed (possibly after the window's end —
  // in-flight work is allowed to finish and is sampled). offered - completed
  // is this class's contribution to the end-of-run backlog.
  uint64_t completed = 0;
  double throughput_krps = 0;  // completed per simulated ms
  // SLO violations this class suffered: completed requests over slo_us PLUS
  // in-window arrivals never served at all (an overloaded service that stops
  // completing requests must not look SLO-clean because the victims are
  // stuck in the backlog instead of in the latency histogram).
  uint64_t slo_violations = 0;
  LatencySummary latency;      // arrival -> completion, sampled requests only
  // One row per time bucket (by arrival time within the window):
  // [bucket_start_ms, completed_count, p99_us].
  std::vector<std::array<double, 3>> series;
};

struct ServiceResult {
  ClientModel model = ClientModel::kOpen;
  std::vector<ClassMetrics> classes;  // parallel to cfg.classes
  uint64_t backlog_end = 0;  // open loop: in-window arrivals never served
  uint64_t peak_queue = 0;   // open loop: max materialized FIFO length
  double total_krps = 0;     // sum of class throughputs
  htm::TxStats stats;
  double abort_rate = 0;  // aborts / tx begins
  bool has_attribution = false;  // cfg.trace
  obs::Attribution attribution;
  std::string raw_trace;  // cfg.trace_raw: JSONL event stream
};

ServiceResult runService(const ServiceConfig& cfg);

// Deterministic JSON: config (embedded in experiment records) and the
// per-class metrics block (the record's "service" key).
void appendJson(workload::JsonWriter& w, const ServiceConfig& c);
std::string toJson(const ServiceConfig& c);
std::string metricsJson(const ServiceResult& r);

}  // namespace natle::traffic
