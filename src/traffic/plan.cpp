#include "traffic/plan.hpp"

namespace natle::traffic {

exp::PointData runServicePoint(const ServiceConfig& cfg) {
  const ServiceResult r = runService(cfg);
  exp::PointData p;
  p.value = r.total_krps;
  p.stats = r.stats;
  p.has_stats = true;
  // Per-class scalars ride in aux: unlike the raw service block, aux fully
  // round-trips through the isolate-mode pipe, so emit() hooks can derive
  // CSV rows from them even under --isolate.
  for (const ClassMetrics& m : r.classes) {
    p.aux.emplace_back(m.name + "_p50_us", m.latency.p50_us);
    p.aux.emplace_back(m.name + "_p95_us", m.latency.p95_us);
    p.aux.emplace_back(m.name + "_p99_us", m.latency.p99_us);
    p.aux.emplace_back(m.name + "_p999_us", m.latency.p999_us);
    p.aux.emplace_back(m.name + "_max_us", m.latency.max_us);
    p.aux.emplace_back(m.name + "_slo_violations",
                       static_cast<double>(m.slo_violations));
    p.aux.emplace_back(m.name + "_krps", m.throughput_krps);
    p.aux.emplace_back(m.name + "_offered",
                       static_cast<double>(m.offered));
  }
  p.aux.emplace_back("backlog_end", static_cast<double>(r.backlog_end));
  p.aux.emplace_back("peak_queue", static_cast<double>(r.peak_queue));
  p.service_json = metricsJson(r);
  if (r.has_attribution) {
    p.attribution_json = r.attribution.toJson();
    p.has_attribution = true;
    p.attribution = r.attribution;
  }
  return p;
}

ServiceSweep::ServiceSweep(const workload::BenchOptions& opt)
    : trace_(opt.trace),
      watchdog_ms_(opt.watchdog_ms),
      duration_ms_(opt.duration_ms),
      slo_us_(opt.slo_us) {
  if (!opt.fault_spec.empty()) {
    // CLI entry points validate specs up front; a failure here (impossible
    // via the CLIs) just leaves the override disabled.
    fault::FaultSpec::parse(opt.fault_spec, &fault_, nullptr);
  }
  if (!opt.placement.empty()) {
    mem::parsePlacePolicy(opt.placement, &placement_);
  }
  if (!opt.arrival_spec.empty()) {
    have_arrival_ = ArrivalSpec::parse(opt.arrival_spec, &arrival_, nullptr);
  }
}

void ServiceSweep::point(exp::Plan& plan, std::string series, double x,
                         const ServiceConfig& cfg) {
  ServiceConfig c = cfg;
  c.trace = c.trace || trace_;
  if (!c.fault.enabled() && fault_.enabled()) c.fault = fault_;
  if (c.watchdog_ms <= 0 && watchdog_ms_ > 0) c.watchdog_ms = watchdog_ms_;
  if (c.placement == mem::PlacePolicy::kFirstTouch) c.placement = placement_;
  if (have_arrival_) {
    for (ClassSpec& cs : c.classes) cs.arrival = arrival_;
  }
  if (duration_ms_ > 0) c.measure_ms = duration_ms_;
  if (slo_us_ > 0) {
    for (ClassSpec& cs : c.classes) cs.slo_us = slo_us_;
  }
  entries_.push_back({std::move(series), x, plan.jobs.size()});
  exp::Job j;
  j.series = entries_.back().series;
  j.x = x;
  j.trial = 0;
  j.seed = c.seed;
  j.config_json = toJson(c);
  j.run = [c] { return runServicePoint(c); };
  j.dump_trace = [c]() mutable {
    c.trace = true;
    c.trace_raw = true;
    return runService(c).raw_trace;
  };
  // Failures under injected adversity or an armed watchdog are often
  // seed-specific; allow the runner's capped retry-with-reseed. The salt
  // shifts both the workload seed and the fault-stream seed, mirroring
  // SetSweep.
  j.transient = true;
  j.run_reseeded = [c](int salt) {
    ServiceConfig rc = c;
    rc.seed = c.seed + 0x5bd1e995ULL * static_cast<uint64_t>(salt);
    if (rc.fault.enabled()) {
      rc.fault.seed += static_cast<uint64_t>(salt);
    }
    return runServicePoint(rc);
  };
  plan.jobs.push_back(std::move(j));
}

}  // namespace natle::traffic
