#include "mem/alloc.hpp"

#include <cstdlib>
#include <new>

namespace natle::mem {

SimAllocator::~SimAllocator() {
  for (auto& c : chunks_) ::free(c.base);
}

void* SimAllocator::alloc(size_t bytes, int home_socket) {
  if (bytes == 0) bytes = 1;
  size_t padded = pad_ ? (bytes + kLineBytes - 1) / kLineBytes * kLineBytes
                       : (bytes + 15) / 16 * 16;
  auto& fl = free_lists_[{home_socket, padded}];
  void* p;
  if (!fl.empty()) {
    p = fl.back();
    fl.pop_back();
  } else {
    p = carve(padded, home_socket);
  }
  live_[p] = padded;
  live_bytes_ += padded;
  return p;
}

void* SimAllocator::carve(size_t bytes, int home_socket) {
  auto& [cursor, remaining] = arena_[home_socket];
  if (remaining < bytes) {
    size_t chunk_size = bytes > kChunkBytes ? bytes : kChunkBytes;
    chunk_size = (chunk_size + kChunkAlign - 1) / kChunkAlign * kChunkAlign;
    char* base = static_cast<char*>(std::aligned_alloc(kChunkAlign, chunk_size));
    if (base == nullptr) throw std::bad_alloc();
    const uint32_t ordinal = static_cast<uint32_t>(chunks_.size());
    chunks_.push_back(Chunk{base, chunk_size, static_cast<int8_t>(home_socket)});
    uint64_t first = lineOf(base);
    uint64_t last = lineOf(base + chunk_size - 1);
    homes_[first] = {last, static_cast<int8_t>(home_socket), ordinal};
    cursor = base;
    remaining = chunk_size;
  }
  char* p = cursor;
  cursor += bytes;
  remaining -= bytes;
  return p;
}

void SimAllocator::free(void* p) {
  if (p == nullptr) return;
  auto it = live_.find(p);
  if (it == live_.end()) return;  // not ours (or double free): ignore
  size_t padded = it->second;
  live_bytes_ -= padded;
  live_.erase(it);
  int home = homeOf(lineOf(p));
  free_lists_[{home, padded}].push_back(p);
}

int8_t SimAllocator::homeOf(uint64_t line) const {
  auto it = homes_.upper_bound(line);
  if (it == homes_.begin()) return 0;
  --it;
  if (line >= it->first && line <= it->second.end_line) return it->second.home;
  return 0;
}

uint64_t SimAllocator::stableLineId(uint64_t line) const {
  auto it = homes_.upper_bound(line);
  if (it == homes_.begin()) return 0;
  --it;
  if (line < it->first || line > it->second.end_line) return 0;
  const uint64_t offset = line - it->first;
  return (static_cast<uint64_t>(it->second.ordinal) + 1) << 32 | offset;
}

}  // namespace natle::mem
