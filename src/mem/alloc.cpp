#include "mem/alloc.hpp"

#include <cstdlib>
#include <new>

#include "sim/config.hpp"

namespace natle::mem {

const char* toString(PlacePolicy p) {
  switch (p) {
    case PlacePolicy::kFirstTouch: return "first-touch";
    case PlacePolicy::kInterleave: return "interleave";
    case PlacePolicy::kAllocatorSocket: return "allocator-socket";
    case PlacePolicy::kAdversarialRemote: return "adversarial-remote";
  }
  return "?";
}

bool parsePlacePolicy(const std::string& s, PlacePolicy* out) {
  for (PlacePolicy p :
       {PlacePolicy::kFirstTouch, PlacePolicy::kInterleave,
        PlacePolicy::kAllocatorSocket, PlacePolicy::kAdversarialRemote}) {
    if (s == toString(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

SimAllocator::SimAllocator(bool pad_to_line, PlacePolicy place,
                           const sim::MachineConfig* cfg)
    : pad_(pad_to_line), place_(place), sockets_(cfg != nullptr ? cfg->sockets : 2) {
  if (sockets_ < 1) sockets_ = 1;
  farthest_.resize(static_cast<size_t>(sockets_));
  for (int a = 0; a < sockets_; ++a) {
    // Farthest socket by hop count, ties toward the lowest id; with one
    // socket "remote" degenerates to the socket itself.
    int best = a == 0 && sockets_ > 1 ? 1 : 0;
    int best_hops = cfg != nullptr ? cfg->hops(a, best) : (a == best ? 0 : 1);
    for (int b = 0; b < sockets_; ++b) {
      if (b == a) continue;
      const int h = cfg != nullptr ? cfg->hops(a, b) : 1;
      if (h > best_hops) {
        best = b;
        best_hops = h;
      }
    }
    farthest_[static_cast<size_t>(a)] = static_cast<int8_t>(best);
  }
}

SimAllocator::~SimAllocator() {
  for (auto& c : chunks_) ::free(c.base);
}

int SimAllocator::arenaKey(int alloc_socket) const {
  switch (place_) {
    case PlacePolicy::kFirstTouch:
      return alloc_socket;
    case PlacePolicy::kInterleave:
      return kInterleavedHome;
    case PlacePolicy::kAllocatorSocket:
      return 0;
    case PlacePolicy::kAdversarialRemote:
      return alloc_socket >= 0 && alloc_socket < sockets_
                 ? farthest_[static_cast<size_t>(alloc_socket)]
                 : farthest_[0];
  }
  return alloc_socket;
}

void* SimAllocator::alloc(size_t bytes, int home_socket) {
  if (bytes == 0) bytes = 1;
  size_t padded = pad_ ? (bytes + kLineBytes - 1) / kLineBytes * kLineBytes
                       : (bytes + 15) / 16 * 16;
  const int key = arenaKey(home_socket);
  auto& fl = free_lists_[{key, padded}];
  void* p;
  if (!fl.empty()) {
    p = fl.back();
    fl.pop_back();
  } else {
    p = carve(padded, key);
  }
  live_[p] = Live{padded, key};
  live_bytes_ += padded;
  return p;
}

void* SimAllocator::carve(size_t bytes, int key) {
  auto& [cursor, remaining] = arena_[key];
  if (remaining < bytes) {
    size_t chunk_size = bytes > kChunkBytes ? bytes : kChunkBytes;
    chunk_size = (chunk_size + kChunkAlign - 1) / kChunkAlign * kChunkAlign;
    char* base = static_cast<char*>(std::aligned_alloc(kChunkAlign, chunk_size));
    if (base == nullptr) throw std::bad_alloc();
    const uint32_t ordinal = static_cast<uint32_t>(chunks_.size());
    chunks_.push_back(Chunk{base, chunk_size, static_cast<int8_t>(key)});
    uint64_t first = lineOf(base);
    uint64_t last = lineOf(base + chunk_size - 1);
    homes_[first] = {last, static_cast<int8_t>(key), ordinal};
    cursor = base;
    remaining = chunk_size;
  }
  char* p = cursor;
  cursor += bytes;
  remaining -= bytes;
  return p;
}

void SimAllocator::free(void* p) {
  if (p == nullptr) return;
  auto it = live_.find(p);
  if (it == live_.end()) return;  // not ours (or double free): ignore
  const Live l = it->second;
  live_bytes_ -= l.padded;
  live_.erase(it);
  free_lists_[{l.key, l.padded}].push_back(p);
}

int8_t SimAllocator::homeOf(uint64_t line) const {
  auto it = homes_.upper_bound(line);
  if (it == homes_.begin()) return 0;
  --it;
  if (line < it->first || line > it->second.end_line) return 0;
  if (it->second.home == kInterleavedHome) {
    // Per-line round robin by offset within the chunk — with line padding
    // every consecutive object lands on the next socket, the classic
    // page-free interleave approximation.
    return static_cast<int8_t>((line - it->first) %
                               static_cast<uint64_t>(sockets_));
  }
  return it->second.home;
}

uint64_t SimAllocator::stableLineId(uint64_t line) const {
  auto it = homes_.upper_bound(line);
  if (it == homes_.begin()) return 0;
  --it;
  if (line < it->first || line > it->second.end_line) return 0;
  const uint64_t offset = line - it->first;
  return (static_cast<uint64_t>(it->second.ordinal) + 1) << 32 | offset;
}

}  // namespace natle::mem
