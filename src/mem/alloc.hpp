// HTM-friendly simulated-memory allocator.
//
// Mirrors the allocator the paper uses (Dice et al., "The influence of
// malloc placement on TSX hardware transactional memory"): every allocation
// is cache-line aligned and, by default, padded to a whole number of lines so
// that two objects never share a line (no false transactional conflicts).
// Each allocation is homed on a socket, which the latency model uses to
// price cold DRAM misses; *which* socket is decided by a pluggable placement
// policy (Dice et al.'s central knob). Padding can be disabled per-allocator
// for the false-sharing ablation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mem/line.hpp"

namespace natle::sim {
struct MachineConfig;
}

namespace natle::mem {

// Where allocated lines are homed, relative to the allocating thread's
// socket. First-touch is the default (and matches Linux's default NUMA
// policy); the others reproduce the placement regimes Dice et al. compare.
enum class PlacePolicy : uint8_t {
  kFirstTouch,         // home = the allocating thread's socket
  kInterleave,         // per-line round robin across all sockets
  kAllocatorSocket,    // everything homed on socket 0 (one shared heap arena)
  kAdversarialRemote,  // home = the socket farthest from the allocator
};

const char* toString(PlacePolicy p);
// Parse the CLI/JSON spelling ("first-touch", "interleave",
// "allocator-socket", "adversarial-remote"); returns false on anything else.
bool parsePlacePolicy(const std::string& s, PlacePolicy* out);

class SimAllocator {
 public:
  // `cfg` supplies socket count and interconnect distances for the
  // non-default policies; nullptr (unit tests, first-touch use) assumes the
  // default two-socket machine.
  explicit SimAllocator(bool pad_to_line = true,
                        PlacePolicy place = PlacePolicy::kFirstTouch,
                        const sim::MachineConfig* cfg = nullptr);
  ~SimAllocator();

  SimAllocator(const SimAllocator&) = delete;
  SimAllocator& operator=(const SimAllocator&) = delete;

  void* alloc(size_t bytes, int home_socket);
  void free(void* p);

  // DRAM home of a line; 0 for lines the allocator never handed out (static
  // or stack memory used by harness code).
  int8_t homeOf(uint64_t line) const;

  // ASLR-independent identifier for a line: (chunk ordinal + 1) << 32 |
  // line offset within the chunk. Chunk ordinals follow allocation order,
  // which is deterministic per simulation, so trace dumps containing line
  // ids are byte-identical across processes. Returns 0 for lines the
  // allocator never handed out.
  uint64_t stableLineId(uint64_t line) const;

  size_t liveBytes() const { return live_bytes_; }
  bool padded() const { return pad_; }
  PlacePolicy placement() const { return place_; }

 private:
  struct Chunk {
    char* base;
    size_t size;
    int8_t home;
  };

  static constexpr size_t kChunkBytes = 1 << 20;
  // Chunk bases must not perturb the L1 set index (line % sets): the set a
  // line maps to has to depend only on its offset inside the chunk, never on
  // where the OS happened to place the chunk. 64 KiB keeps base % (sets *
  // kLineBytes) == 0 for any sets <= 1024, so simulations are reproducible
  // across processes and across concurrent allocator use by runner threads.
  static constexpr size_t kChunkAlign = 64 * 1024;

  // Sentinel arena key / span home for interleaved placement: lines in such
  // a span are homed per-line by offset, not per-chunk.
  static constexpr int kInterleavedHome = -2;

  // Which bump arena (and free-list family) serves an allocation by a thread
  // on `alloc_socket` — the placement policy's whole effect.
  int arenaKey(int alloc_socket) const;

  void* carve(size_t bytes, int key);

  bool pad_;
  PlacePolicy place_;
  int sockets_;
  std::vector<int8_t> farthest_;  // per allocating socket (adversarial-remote)
  // Per-(arena key, size-class) free lists; size class = padded byte size.
  std::map<std::pair<int, size_t>, std::vector<void*>> free_lists_;
  // Bump arenas per arena key.
  std::vector<Chunk> chunks_;
  std::map<int, std::pair<char*, size_t>> arena_;  // key -> (cursor, remaining)
  // Interval map keyed by first line of a chunk.
  struct ChunkSpan {
    uint64_t end_line;  // inclusive
    int8_t home;        // kInterleavedHome: homed per line, round robin
    uint32_t ordinal;   // index into chunks_ (allocation order)
  };
  std::map<uint64_t, ChunkSpan> homes_;  // start line -> span
  struct Live {
    size_t padded;
    int key;  // arena key, so free() refills the right list
  };
  std::map<void*, Live> live_;
  size_t live_bytes_ = 0;
};

}  // namespace natle::mem
