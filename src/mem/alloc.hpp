// HTM-friendly simulated-memory allocator.
//
// Mirrors the allocator the paper uses (Dice et al., "The influence of
// malloc placement on TSX hardware transactional memory"): every allocation
// is cache-line aligned and, by default, padded to a whole number of lines so
// that two objects never share a line (no false transactional conflicts).
// Each allocation is homed on a socket (first-touch approximation: the
// allocating thread's socket), which the latency model uses to price cold
// DRAM misses. Padding can be disabled per-allocator for the false-sharing
// ablation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "mem/line.hpp"

namespace natle::mem {

class SimAllocator {
 public:
  explicit SimAllocator(bool pad_to_line = true) : pad_(pad_to_line) {}
  ~SimAllocator();

  SimAllocator(const SimAllocator&) = delete;
  SimAllocator& operator=(const SimAllocator&) = delete;

  void* alloc(size_t bytes, int home_socket);
  void free(void* p);

  // DRAM home of a line; 0 for lines the allocator never handed out (static
  // or stack memory used by harness code).
  int8_t homeOf(uint64_t line) const;

  // ASLR-independent identifier for a line: (chunk ordinal + 1) << 32 |
  // line offset within the chunk. Chunk ordinals follow allocation order,
  // which is deterministic per simulation, so trace dumps containing line
  // ids are byte-identical across processes. Returns 0 for lines the
  // allocator never handed out.
  uint64_t stableLineId(uint64_t line) const;

  size_t liveBytes() const { return live_bytes_; }
  bool padded() const { return pad_; }

 private:
  struct Chunk {
    char* base;
    size_t size;
    int8_t home;
  };

  static constexpr size_t kChunkBytes = 1 << 20;
  // Chunk bases must not perturb the L1 set index (line % sets): the set a
  // line maps to has to depend only on its offset inside the chunk, never on
  // where the OS happened to place the chunk. 64 KiB keeps base % (sets *
  // kLineBytes) == 0 for any sets <= 1024, so simulations are reproducible
  // across processes and across concurrent allocator use by runner threads.
  static constexpr size_t kChunkAlign = 64 * 1024;

  void* carve(size_t bytes, int home_socket);

  bool pad_;
  // Per-(home, size-class) free lists; size class = padded byte size.
  std::map<std::pair<int, size_t>, std::vector<void*>> free_lists_;
  // Bump arenas per home socket.
  std::vector<Chunk> chunks_;
  std::map<int, std::pair<char*, size_t>> arena_;  // home -> (cursor, remaining)
  // Interval map keyed by first line of a chunk.
  struct ChunkSpan {
    uint64_t end_line;  // inclusive
    int8_t home;
    uint32_t ordinal;  // index into chunks_ (allocation order)
  };
  std::map<uint64_t, ChunkSpan> homes_;  // start line -> span
  std::map<void*, size_t> live_;                           // ptr -> padded size
  size_t live_bytes_ = 0;
};

}  // namespace natle::mem
