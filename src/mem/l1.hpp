// Per-core L1 filter, shared by the core's hyperthreads.
//
// It plays two roles, both load-bearing for the paper's findings:
//  1. Locality: a valid entry makes repeat accesses cost l1_hit cycles.
//  2. HTM capacity: lines belonging to an in-flight transaction must stay
//     resident. If an insertion can only evict a transactional line, that
//     line's transaction suffers a capacity abort. Because both hyperthreads
//     share the filter, a sibling's footprint can evict a transactional line
//     — a *transient* capacity failure, which is exactly the mechanism behind
//     the paper's Figure 2 observation that hint-clear aborts often succeed
//     on retry.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/line.hpp"

namespace natle::mem {

class L1Cache {
 public:
  // A way can have up to two transactional owners — one per hyperthread
  // sibling. Both siblings can hold the same line in their read sets at
  // once; a single owner slot would let the second reader's tag silently
  // strip the first reader's capacity pin, so the first could then be
  // evicted without the abort the hardware would deliver.
  //
  // Layout: the first owner lives in the entry itself, so the hot-path
  // ownership test (`ownedBy`) is satisfied from the cache line the probe
  // already touched. The second slot — populated only while both siblings
  // pin the same line, a rare state — lives in a parallel array and is
  // consulted only when the first slot does not match.
  struct Entry {
    uint64_t line = 0;
    LineState* state = nullptr;
    uint32_t version = 0;   // valid iff version == state->version
    TxBase* tx = nullptr;   // first transactional owner, if any
    uint64_t tx_seq = 0;
  };

  struct SiblingSlot {
    TxBase* tx2 = nullptr;  // second owner (the hyperthread sibling)
    uint64_t tx2_seq = 0;
  };

  struct InsertResult {
    bool inserted = false;
    // Transactions to abort because eviction had to claim a line they had
    // pinned. Two when both hyperthread siblings owned the evicted line.
    TxBase* capacity_victim = nullptr;
    TxBase* capacity_victim2 = nullptr;
    uint64_t victim_line = 0;  // the line that was displaced
    uint16_t victim_set = 0;
    uint8_t victim_way = 0;
  };

  L1Cache(uint32_t sets, uint32_t ways)
      : sets_(sets),
        ways_(ways),
        entries_(sets * ways),
        siblings_(sets * ways),
        rr_(sets, 0) {}

  // Returns the valid entry for `line`, or nullptr on miss.
  Entry* probe(uint64_t line) {
    Entry* set = &entries_[(line & (sets_ - 1)) * ways_];
    for (uint32_t w = 0; w < ways_; ++w) {
      Entry& e = set[w];
      if (e.line == line && e.state != nullptr && e.version == e.state->version) {
        return &e;
      }
    }
    return nullptr;
  }

  // Install a line. `tx` is the in-flight transaction performing the access
  // (nullptr for plain accesses). If every way in the set holds a line
  // belonging to a live transaction, one of those transactions must lose its
  // line: the victim transaction is reported so the caller can abort it
  // (preferring a victim other than `tx` — the sibling's transaction — and
  // falling back to self-abort, a genuine overflow).
  //
  // `masked_ways` models transient external pressure (fault injection's
  // capacity squeeze): that many high-index ways are unavailable as victim
  // candidates, shrinking effective associativity. Lines already resident in
  // a masked way stay resident and hittable — the squeeze restricts where
  // *new* lines can land, which is what turns a wide footprint into transient
  // capacity aborts.
  InsertResult insert(uint64_t line, LineState* state, TxBase* tx,
                      uint32_t masked_ways = 0) {
    const uint32_t set_idx = static_cast<uint32_t>(line & (sets_ - 1));
    Entry* set = &entries_[set_idx * ways_];
    SiblingSlot* sib = &siblings_[set_idx * ways_];
    InsertResult r;
    // A still-valid entry for this very line: keep it and add `tx` as an
    // owner instead of re-installing (which would drop a sibling's pin).
    // Scans every way, masked or not: residency is unaffected by a squeeze.
    for (uint32_t w = 0; w < ways_; ++w) {
      Entry& e = set[w];
      if (e.line == line && e.state != nullptr && e.version == e.state->version) {
        tagSlots(e, sib[w], tx);
        r.inserted = true;
        return r;
      }
    }
    const uint32_t avail = ways_ > masked_ways ? ways_ - masked_ways : 1;
    uint32_t victim = ways_;
    // Pass 1: invalid or empty way (a stale entry for this line qualifies).
    for (uint32_t w = 0; w < avail; ++w) {
      Entry& e = set[w];
      if (e.state == nullptr || e.version != e.state->version || e.line == line) {
        victim = w;
        break;
      }
    }
    // Pass 2: a way no live transaction has pinned.
    if (victim == ways_) {
      uint32_t start = rr_[set_idx]++;
      for (uint32_t i = 0; i < avail; ++i) {
        const uint32_t w = (start + i) % avail;
        if (!slotLive(set[w].tx, set[w].tx_seq) &&
            !slotLive(sib[w].tx2, sib[w].tx2_seq)) {
          victim = w;
          break;
        }
      }
    }
    if (victim == ways_) {
      // Every way is pinned by a live transaction: evict one. Prefer a line
      // `tx` itself has no stake in (the hyperthread sibling's) over our own.
      uint32_t start = rr_[set_idx]++;
      for (uint32_t i = 0; i < avail; ++i) {
        const uint32_t w = (start + i) % avail;
        if (!holds(set[w], sib[w], tx)) {
          victim = w;
          break;
        }
      }
      if (victim == ways_) victim = start % avail;  // self-abort
      const Entry& ve = set[victim];
      const SiblingSlot& vs = sib[victim];
      if (slotLive(ve.tx, ve.tx_seq)) r.capacity_victim = ve.tx;
      if (slotLive(vs.tx2, vs.tx2_seq)) {
        (r.capacity_victim == nullptr ? r.capacity_victim
                                      : r.capacity_victim2) = vs.tx2;
      }
      r.victim_line = ve.line;
      r.victim_set = static_cast<uint16_t>(set_idx);
      r.victim_way = static_cast<uint8_t>(victim);
    }
    Entry& v = set[victim];
    v.line = line;
    v.state = state;
    v.version = state->version;
    v.tx = tx;
    v.tx_seq = tx != nullptr ? tx->seq : 0;
    sib[victim] = SiblingSlot{};
    r.inserted = true;
    return r;
  }

  // Mark an already-resident line as belonging to `tx` (a transaction that
  // re-reads a line the core cached earlier), preserving any *other* live
  // owner — the hyperthread sibling keeps its capacity pin.
  void tag(Entry* e, TxBase* tx) {
    tagSlots(*e, siblings_[e - entries_.data()], tx);
  }

  // Does `tx` itself hold a live pin on this entry? The first-slot test is
  // resolved entirely from `e`; only a sibling-shared line (first slot held
  // by the other hyperthread) touches the parallel array.
  bool ownedBy(const Entry* e, const TxBase* tx) const {
    if (tx == nullptr) return false;
    if (e->tx == tx) return slotLive(e->tx, e->tx_seq);
    const SiblingSlot& s = siblings_[e - entries_.data()];
    return s.tx2 == tx && slotLive(s.tx2, s.tx2_seq);
  }

  void flush() {
    for (auto& e : entries_) e = Entry{};
    for (auto& s : siblings_) s = SiblingSlot{};
  }

  uint32_t sets() const { return sets_; }
  uint32_t ways() const { return ways_; }

 private:
  static void tagSlots(Entry& e, SiblingSlot& s, TxBase* tx) {
    if (!slotLive(e.tx, e.tx_seq)) {
      e.tx = nullptr;
      e.tx_seq = 0;
    }
    if (!slotLive(s.tx2, s.tx2_seq)) {
      s.tx2 = nullptr;
      s.tx2_seq = 0;
    }
    if (tx == nullptr) return;  // plain access never strips a live pin
    if (e.tx == tx || (e.tx == nullptr && s.tx2 != tx)) {
      e.tx = tx;
      e.tx_seq = tx->seq;
    } else if (s.tx2 == tx || s.tx2 == nullptr) {
      s.tx2 = tx;
      s.tx2_seq = tx->seq;
    } else {
      // Two other live owners already — cannot happen with two hyperthreads
      // per core, but keep the newest owner if it somehow does.
      s.tx2 = tx;
      s.tx2_seq = tx->seq;
    }
  }

  static bool slotLive(const TxBase* tx, uint64_t seq) {
    return tx != nullptr && tx->in_flight && tx->seq == seq;
  }
  static bool holds(const Entry& e, const SiblingSlot& s, const TxBase* tx) {
    return tx != nullptr && ((e.tx == tx && slotLive(e.tx, e.tx_seq)) ||
                             (s.tx2 == tx && slotLive(s.tx2, s.tx2_seq)));
  }

  uint32_t sets_;
  uint32_t ways_;
  std::vector<Entry> entries_;
  std::vector<SiblingSlot> siblings_;
  std::vector<uint32_t> rr_;
};

}  // namespace natle::mem
