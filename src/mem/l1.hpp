// Per-core L1 filter, shared by the core's hyperthreads.
//
// It plays two roles, both load-bearing for the paper's findings:
//  1. Locality: a valid entry makes repeat accesses cost l1_hit cycles.
//  2. HTM capacity: lines belonging to an in-flight transaction must stay
//     resident. If an insertion can only evict a transactional line, that
//     line's transaction suffers a capacity abort. Because both hyperthreads
//     share the filter, a sibling's footprint can evict a transactional line
//     — a *transient* capacity failure, which is exactly the mechanism behind
//     the paper's Figure 2 observation that hint-clear aborts often succeed
//     on retry.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/line.hpp"

namespace natle::mem {

class L1Cache {
 public:
  struct Entry {
    uint64_t line = 0;
    LineState* state = nullptr;
    uint32_t version = 0;  // valid iff version == state->version
    TxBase* tx = nullptr;  // transaction that touched it, if any
    uint64_t tx_seq = 0;
  };

  struct InsertResult {
    bool inserted = false;
    TxBase* capacity_victim = nullptr;  // transaction to abort, if eviction
                                        // had to claim a transactional line
  };

  L1Cache(uint32_t sets, uint32_t ways)
      : sets_(sets), ways_(ways), entries_(sets * ways), rr_(sets, 0) {}

  // Returns the valid entry for `line`, or nullptr on miss.
  Entry* probe(uint64_t line) {
    Entry* set = &entries_[(line & (sets_ - 1)) * ways_];
    for (uint32_t w = 0; w < ways_; ++w) {
      Entry& e = set[w];
      if (e.line == line && e.state != nullptr && e.version == e.state->version) {
        return &e;
      }
    }
    return nullptr;
  }

  // Install a line. `tx` is the in-flight transaction performing the access
  // (nullptr for plain accesses). If every way in the set holds a line
  // belonging to a live transaction, one of those transactions must lose its
  // line: the victim transaction is reported so the caller can abort it
  // (preferring a victim other than `tx` — the sibling's transaction — and
  // falling back to self-abort, a genuine overflow).
  InsertResult insert(uint64_t line, LineState* state, TxBase* tx) {
    Entry* set = &entries_[(line & (sets_ - 1)) * ways_];
    Entry* victim = nullptr;
    // Pass 1: invalid or empty way.
    for (uint32_t w = 0; w < ways_; ++w) {
      Entry& e = set[w];
      if (e.state == nullptr || e.version != e.state->version || e.line == line) {
        victim = &e;
        break;
      }
    }
    // Pass 2: a way whose transaction is no longer live (or was plain).
    if (victim == nullptr) {
      uint32_t start = rr_[line & (sets_ - 1)]++;
      for (uint32_t i = 0; i < ways_; ++i) {
        Entry& e = set[(start + i) % ways_];
        if (!txLive(e)) {
          victim = &e;
          break;
        }
      }
    }
    InsertResult r;
    if (victim == nullptr) {
      // Every way is pinned by a live transaction: evict one. Prefer a line
      // of some *other* transaction (hyperthread sibling) over our own.
      uint32_t start = rr_[line & (sets_ - 1)]++;
      for (uint32_t i = 0; i < ways_; ++i) {
        Entry& e = set[(start + i) % ways_];
        if (e.tx != tx) {
          victim = &e;
          break;
        }
      }
      if (victim == nullptr) victim = &set[start % ways_];  // self-abort
      r.capacity_victim = victim->tx;
    }
    victim->line = line;
    victim->state = state;
    victim->version = state->version;
    victim->tx = tx;
    victim->tx_seq = tx != nullptr ? tx->seq : 0;
    r.inserted = true;
    return r;
  }

  // Mark an already-resident line as belonging to `tx` (a transaction that
  // re-reads a line the core cached earlier).
  static void tag(Entry& e, TxBase* tx) {
    e.tx = tx;
    e.tx_seq = tx != nullptr ? tx->seq : 0;
  }

  void flush() {
    for (auto& e : entries_) e = Entry{};
  }

  uint32_t sets() const { return sets_; }
  uint32_t ways() const { return ways_; }

 private:
  static bool txLive(const Entry& e) {
    return e.tx != nullptr && e.tx->in_flight && e.tx->seq == e.tx_seq;
  }

  uint32_t sets_;
  uint32_t ways_;
  std::vector<Entry> entries_;
  std::vector<uint32_t> rr_;
};

}  // namespace natle::mem
