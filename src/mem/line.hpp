// Per-cache-line coherence and transactional bookkeeping.
//
// The directory tracks state at socket granularity: which sockets hold a
// valid copy and which socket last gained exclusive ownership. On top of the
// coherence state it records the in-flight hardware transactions that have
// the line in their read or write set, which is what makes TSX-style
// invalidation-triggered aborts cheap to detect at the requesting access.
#pragma once

#include <cstdint>

#include "sim/small_vec.hpp"

namespace natle::mem {

constexpr uint32_t kLineBytes = 64;

inline uint64_t lineOf(const void* p) {
  return reinterpret_cast<uint64_t>(p) / kLineBytes;
}

// Base of the HTM layer's transaction descriptor: the fields the memory
// system needs to tell whether a cached tag still refers to a live
// transaction. `seq` increments on every begin, so a stale (tx, seq) pair
// never matches a later transaction of the same thread.
struct TxBase {
  bool in_flight = false;
  uint64_t seq = 0;
};

struct LineState {
  // Coherence (socket granularity).
  uint32_t version = 0;      // bumped on every write; cached copies validate against it
  uint16_t sharer_mask = 0;  // sockets holding a valid copy
  int8_t owner_socket = -1;  // socket with the exclusive/modified copy, -1 none
  int8_t home_socket = 0;    // DRAM home for cold-miss cost

  // In-flight transactional footprint, maintained by the HTM layer.
  TxBase* tx_writer = nullptr;
  sim::SmallVec<TxBase*, 4> tx_readers;

  bool hasSharer(int socket) const { return (sharer_mask >> socket) & 1u; }
  void addSharer(int socket) { sharer_mask |= static_cast<uint16_t>(1u << socket); }
};

}  // namespace natle::mem
