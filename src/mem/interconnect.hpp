// The socket-to-socket transport: hop-count latency scaling and per-link
// bandwidth occupancy for the simulated interconnect.
//
// Each unordered socket pair owns its own link with an independent occupancy
// queue; a transfer between sockets d hops apart pays a latency multiplier of
// 1 + (d - 1) * hop_factor and occupies its link for d times the configured
// per-hop occupancy. On the default fully connected topology every pair is
// one hop apart, both factors collapse to 1, and with two sockets there is
// exactly one link — making transferDelay() bit-identical to the original
// single-shared-link model.
//
// Fault injection's `link` channel plugs in here: a NUMA latency spike both
// delays the transfer and extends the link reservation (queueing
// amplification), and can target one socket pair or all links incident to a
// socket (see FaultSchedule::linkPenalty).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "sim/config.hpp"

namespace natle::mem {

class Interconnect {
 public:
  explicit Interconnect(const sim::MachineConfig& cfg)
      : sockets_(cfg.sockets),
        occupancy_(cfg.link_occupancy),
        hop_factor_(cfg.hop_factor),
        hops_(static_cast<size_t>(cfg.sockets) * cfg.sockets, 0),
        link_free_(cfg.sockets > 1
                       ? static_cast<size_t>(cfg.sockets) * (cfg.sockets - 1) / 2
                       : 0,
                   0) {
    for (int a = 0; a < sockets_; ++a) {
      for (int b = 0; b < sockets_; ++b) {
        hops_[static_cast<size_t>(a) * sockets_ + b] =
            static_cast<uint8_t>(cfg.hops(a, b));
      }
    }
  }

  // Attach (or detach, with nullptr) a fault schedule. While attached,
  // transfers pay an extra penalty during NUMA latency spike windows. Not
  // owned.
  void setFaults(fault::FaultSchedule* f) { faults_ = f; }

  int sockets() const { return sockets_; }
  int hops(int a, int b) const {
    return hops_[static_cast<size_t>(a) * sockets_ + b];
  }

  // Hop-scaled transfer latency. Exactly `base` at one hop — no floating
  // point touches the default topology's costs.
  uint32_t scaled(uint32_t base, int a, int b) const {
    const int h = hops(a, b);
    if (h <= 1) return base;
    return static_cast<uint32_t>(static_cast<double>(base) *
                                 (1.0 + (h - 1) * hop_factor_));
  }

  // Reserve the (a, b) link for one transfer issued at `now`; returns the
  // queueing delay the transfer suffers (plus any injected spike). A d-hop
  // transfer holds the link d times longer — bandwidth across distant
  // sockets is the scarcer resource.
  uint64_t transferDelay(int a, int b, uint64_t now) {
    const uint64_t spike =
        faults_ != nullptr ? faults_->linkPenalty(a, b, now) : 0;
    uint64_t& free_at = link_free_[pairIndex(a, b)];
    const uint64_t start = now > free_at ? now : free_at;
    free_at = start +
              static_cast<uint64_t>(occupancy_) *
                  static_cast<uint64_t>(hops(a, b)) +
              spike;
    return start - now + spike;
  }

 private:
  // Unordered-pair index: {a, b} with a != b maps into a triangular array.
  size_t pairIndex(int a, int b) const {
    assert(a != b);
    const int lo = a < b ? a : b;
    const int hi = a < b ? b : a;
    return static_cast<size_t>(hi) * (hi - 1) / 2 + lo;
  }

  int sockets_;
  uint32_t occupancy_;
  double hop_factor_;
  std::vector<uint8_t> hops_;       // row-major [a * sockets + b]
  std::vector<uint64_t> link_free_; // per unordered pair: earliest free cycle
  fault::FaultSchedule* faults_ = nullptr;
};

}  // namespace natle::mem
