// The memory hierarchy, as one layer: MemorySystem owns the allocator (data
// placement), the line directory (coherence state), the per-core L1 filters
// (locality + HTM capacity) and the Interconnect (socket distances and link
// bandwidth), and is the single place that prices memory accesses and decides
// coherence transitions.
//
// The HTM layer above (htm::Env / ThreadCtx) keeps only transaction
// bookkeeping: it resolves transactional conflicts, then asks this layer to
// perform the fill and charges the returned latency. The layer below is the
// declarative topology in sim::MachineConfig.
//
// Determinism contract: fillRead/fillWrite perform no yields and consume no
// randomness; on the default fully connected topology every cost they return
// is bit-identical to the pre-refactor inline model in htm/env.cpp.
#pragma once

#include <vector>

#include "mem/alloc.hpp"
#include "mem/directory.hpp"
#include "mem/interconnect.hpp"
#include "mem/l1.hpp"
#include "sim/config.hpp"

namespace natle::mem {

// How an access was served — the statistics bucket it belongs to.
enum class AccessClass : uint8_t {
  kL1Hit,           // resident in the core's L1 filter
  kLocalHit,        // same-socket L3 / peer cache
  kRemoteTransfer,  // cross-socket transfer or invalidation round
  kDramMiss,        // cold miss served from a home node's memory
};

// The outcome of a fill: the cycle cost to charge and the bucket to count.
struct Access {
  uint32_t latency = 0;
  AccessClass cls = AccessClass::kL1Hit;
};

class MemorySystem {
 public:
  MemorySystem(const sim::MachineConfig& cfg, bool pad_alloc,
               PlacePolicy placement);

  SimAllocator& allocator() { return alloc_; }
  Directory& directory() { return dir_; }
  L1Cache& l1(int core) { return l1s_[static_cast<size_t>(core)]; }
  Interconnect& interconnect() { return net_; }

  // Route fault injection's link channel to the interconnect (nullptr
  // detaches). Not owned.
  void setFaults(fault::FaultSchedule* f) { net_.setFaults(f); }

  // Directory state for a line, homed by the allocator's placement on first
  // touch.
  LineState& lookup(uint64_t line) {
    return dir_.lookup(line, alloc_.homeOf(line));
  }

  // Cost of an access served by the L1 filter (the read fast path).
  uint32_t l1HitCost() const { return cfg_.l1_hit; }

  // A read miss reaching the directory: prices the fill (local hit, remote
  // cache-to-cache transfer with link reservation, or DRAM), downgrades a
  // remote exclusive owner to shared and records this socket as a sharer.
  // Any transactional conflict must be resolved by the caller *before* this
  // (aborting a writer rolls the line's coherence state back).
  Access fillRead(uint64_t line, LineState& s, int socket, uint64_t now);

  // A write's ownership acquisition: prices it (owned locally, remote
  // transfer, invalidation round over remote sharers, store upgrade, or
  // DRAM), then applies the coherence transition — version bump, this socket
  // becomes exclusive owner and sole sharer. Conflicting transactions must
  // already be aborted. `core` is consulted for the L1-resident fast price.
  Access fillWrite(uint64_t line, LineState& s, int socket, int core,
                   uint64_t now);

  // Install a just-filled line in the core's L1 filter. Called *after* the
  // fill's latency has been charged, because `masked_ways` (fault
  // injection's way squeeze) is sampled from the clock at insertion time.
  // Returns any capacity eviction the HTM layer must turn into an abort.
  L1Cache::InsertResult install(uint64_t line, LineState& s, int core,
                                TxBase* tx, uint32_t masked_ways) {
    return l1s_[static_cast<size_t>(core)].insert(line, &s, tx, masked_ways);
  }

  // Coherence rollback for one line of an aborted transaction's write set:
  // the speculative copy is discarded, but the pre-transaction value is
  // still present in the victim socket's LLC (transactional stores never
  // reached it), so the line stays cached there.
  void rollbackWrite(LineState& s, int victim_socket) {
    s.version++;
    s.owner_socket = -1;
    s.sharer_mask = static_cast<uint16_t>(1u << victim_socket);
  }

 private:
  const sim::MachineConfig cfg_;
  SimAllocator alloc_;
  Directory dir_;
  Interconnect net_;
  std::vector<L1Cache> l1s_;
};

}  // namespace natle::mem
