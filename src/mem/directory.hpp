// The line directory: lazily materialised coherence state for every cache
// line the simulation touches. unordered_map gives us reference stability,
// which the per-core L1 filters rely on (they cache LineState pointers).
#pragma once

#include <unordered_map>

#include "fault/fault.hpp"
#include "mem/line.hpp"

namespace natle::mem {

class Directory {
 public:
  Directory() { map_.reserve(1 << 16); }

  // Attach (or detach, with nullptr) a fault schedule. While attached, the
  // interconnect charges an extra per-transfer penalty during NUMA latency
  // spike windows. Not owned.
  void setFaults(fault::FaultSchedule* f) { faults_ = f; }

  // Extra cycles a cross-socket transfer issued at `now` must pay.
  uint64_t interconnectPenalty(uint64_t now) {
    return faults_ != nullptr ? faults_->linkPenalty(now) : 0;
  }

  // Get-or-create the state for a line. New lines start uncached in DRAM at
  // the given home socket.
  LineState& lookup(uint64_t line, int8_t home_socket) {
    auto [it, inserted] = map_.try_emplace(line);
    if (inserted) it->second.home_socket = home_socket;
    return it->second;
  }

  LineState* find(uint64_t line) {
    auto it = map_.find(line);
    return it == map_.end() ? nullptr : &it->second;
  }

  size_t size() const { return map_.size(); }

  // Debug iteration (auditing only).
  template <typename F>
  void forEach(F&& f) {
    for (auto& [line, state] : map_) f(line, state);
  }

  // Drop all coherence state (used between trials; transaction footprints
  // must be empty when called).
  void reset() { map_.clear(); }

 private:
  std::unordered_map<uint64_t, LineState> map_;
  fault::FaultSchedule* faults_ = nullptr;
};

}  // namespace natle::mem
