// The line directory: lazily materialised coherence state for every cache
// line the simulation touches. unordered_map gives us reference stability,
// which the per-core L1 filters rely on (they cache LineState pointers).
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "mem/line.hpp"

namespace natle::mem {

class Directory {
 public:
  Directory() { map_.reserve(1 << 16); }

  // Get-or-create the state for a line. New lines start uncached in DRAM at
  // the given home socket.
  LineState& lookup(uint64_t line, int8_t home_socket) {
    auto [it, inserted] = map_.try_emplace(line);
    if (inserted) it->second.home_socket = home_socket;
    return it->second;
  }

  LineState* find(uint64_t line) {
    auto it = map_.find(line);
    return it == map_.end() ? nullptr : &it->second;
  }

  size_t size() const { return map_.size(); }

  // Iterate every materialised line. GUARANTEE (API contract, not an
  // implementation detail): f is invoked exactly once per line, in strictly
  // ascending line order. unordered_map's hash order varies across libstdc++
  // versions and with the insertion history, but everything built from this
  // walk — watchdog footprint dumps, audit reports, attribution tables —
  // ends up in committed byte-compared output, so the order must be
  // deterministic everywhere. Keep the sort if the map type ever changes;
  // mem_test has a regression test pinning the contract.
  template <typename F>
  void forEach(F&& f) {
    std::vector<uint64_t> lines;
    lines.reserve(map_.size());
    for (const auto& [line, state] : map_) lines.push_back(line);
    std::sort(lines.begin(), lines.end());
    for (uint64_t line : lines) f(line, map_.find(line)->second);
  }

  // Drop all coherence state (used between trials; transaction footprints
  // must be empty when called).
  void reset() { map_.clear(); }

 private:
  std::unordered_map<uint64_t, LineState> map_;
};

}  // namespace natle::mem
