#include "mem/memsystem.hpp"

namespace natle::mem {

MemorySystem::MemorySystem(const sim::MachineConfig& cfg, bool pad_alloc,
                           PlacePolicy placement)
    : cfg_(cfg), alloc_(pad_alloc, placement, &cfg_), net_(cfg_) {
  l1s_.reserve(static_cast<size_t>(cfg_.coresTotal()));
  for (int i = 0; i < cfg_.coresTotal(); ++i) {
    l1s_.emplace_back(cfg_.l1_sets, cfg_.l1_ways);
  }
}

Access MemorySystem::fillRead(uint64_t line, LineState& s, int socket,
                              uint64_t now) {
  (void)line;
  Access a;
  if (s.owner_socket == socket || s.hasSharer(socket)) {
    a.latency = cfg_.local_hit;
    a.cls = AccessClass::kLocalHit;
  } else if (s.owner_socket >= 0) {
    // Modified in another socket: cross-socket cache-to-cache transfer,
    // which downgrades the owner to shared.
    a.latency = static_cast<uint32_t>(
        net_.scaled(cfg_.remote_transfer, socket, s.owner_socket) +
        net_.transferDelay(socket, s.owner_socket, now));
    a.cls = AccessClass::kRemoteTransfer;
    s.owner_socket = -1;
  } else {
    // Clean (or uncached): served from the home node's memory; a clean copy
    // in another socket does not make this more expensive.
    if (s.home_socket == socket) {
      a.latency = cfg_.local_dram;
    } else {
      a.latency = static_cast<uint32_t>(
          net_.scaled(cfg_.remote_dram, socket, s.home_socket) +
          net_.transferDelay(socket, s.home_socket, now));
    }
    a.cls = AccessClass::kDramMiss;
  }
  s.addSharer(socket);
  return a;
}

Access MemorySystem::fillWrite(uint64_t line, LineState& s, int socket,
                               int core, uint64_t now) {
  Access a;
  const bool l1hit = l1s_[static_cast<size_t>(core)].probe(line) != nullptr;
  const uint16_t remote_sharers =
      static_cast<uint16_t>(s.sharer_mask & ~(1u << socket));
  if (s.owner_socket == socket) {
    a.latency = l1hit ? cfg_.l1_hit : cfg_.local_hit;
    a.cls = l1hit ? AccessClass::kL1Hit : AccessClass::kLocalHit;
  } else if (s.owner_socket >= 0) {
    // Modified in another socket: full cross-socket transfer for ownership.
    a.latency = static_cast<uint32_t>(
        net_.scaled(cfg_.remote_transfer, socket, s.owner_socket) +
        net_.transferDelay(socket, s.owner_socket, now));
    a.cls = AccessClass::kRemoteTransfer;
  } else if (remote_sharers != 0) {
    // Clean copies in other sockets must be invalidated (snoop round),
    // cheaper than pulling a modified line. Every sharer's link is occupied;
    // the round completes when the farthest acknowledgement arrives, so the
    // latency is priced to the most distant sharer.
    uint64_t queue = 0;
    int far = -1;
    for (int t = 0; t < net_.sockets(); ++t) {
      if (t == socket || ((remote_sharers >> t) & 1u) == 0) continue;
      const uint64_t d = net_.transferDelay(socket, t, now);
      if (d > queue) queue = d;
      if (far < 0 || net_.hops(socket, t) > net_.hops(socket, far)) far = t;
    }
    a.latency = static_cast<uint32_t>(
        net_.scaled(cfg_.remote_inval, socket, far) + queue);
    a.cls = AccessClass::kRemoteTransfer;
  } else if (s.hasSharer(socket)) {
    a.latency = (l1hit ? cfg_.l1_hit : cfg_.local_hit) + cfg_.store_upgrade;
    a.cls = l1hit ? AccessClass::kL1Hit : AccessClass::kLocalHit;
  } else {
    if (s.home_socket == socket) {
      a.latency = cfg_.local_dram + cfg_.store_upgrade;
    } else {
      a.latency = static_cast<uint32_t>(
          net_.scaled(cfg_.remote_dram, socket, s.home_socket) +
          net_.transferDelay(socket, s.home_socket, now) + cfg_.store_upgrade);
    }
    a.cls = AccessClass::kDramMiss;
  }
  s.version++;
  s.owner_socket = static_cast<int8_t>(socket);
  s.sharer_mask = static_cast<uint16_t>(1u << socket);
  return a;
}

}  // namespace natle::mem
