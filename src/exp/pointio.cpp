#include "exp/pointio.hpp"

#include <charconv>

#include "htm/abort.hpp"
#include "htm/stats.hpp"

namespace natle::exp {

namespace {

// Shortest round-trip rendering, identical to JsonWriter's number format —
// jobKey must produce the same text whether the x came from a Job (double)
// or from a parsed record (double decoded from that same text).
void appendNum(std::string* out, double v) {
  char buf[32];
  auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  out->append(buf, p);
}

void appendU64(std::string* out, uint64_t v) {
  char buf[24];
  auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  out->append(buf, p);
}

// Shared middle section of a record / child payload: the result fields for
// an ok point, or the structured failure object.
void appendPointPayload(workload::JsonWriter& w, const PointData& p) {
  if (p.status == PointStatus::kFailed) {
    w.key("failed");
    w.beginObject();
    w.key("kind").value(p.failure_kind);
    w.key("diagnostic").value(p.failure_diagnostic);
    w.endObject();
    return;
  }
  w.key("value").value(p.value);
  if (p.has_stats) {
    w.key("stats");
    appendJson(w, p.stats);
  }
  if (!p.aux.empty()) {
    w.key("aux");
    w.beginObject();
    for (const auto& [k, v] : p.aux) w.key(k).value(v);
    w.endObject();
  }
  if (!p.curve.empty()) {
    w.key("curve");
    w.beginArray();
    for (const auto& [cx, cy] : p.curve) {
      w.beginArray().value(cx).value(cy).endArray();
    }
    w.endArray();
  }
  if (!p.attribution_json.empty()) {
    w.key("attribution").raw(p.attribution_json);
  }
  if (!p.service_json.empty()) {
    w.key("service").raw(p.service_json);
  }
}

bool statsFromJson(const workload::JsonValue& v, htm::TxStats* s) {
  if (!v.isObject()) return false;
  auto u64 = [&v](const char* k, uint64_t* dst) {
    if (const workload::JsonValue* f = v.find(k)) *dst = f->asU64();
  };
  u64("ops", &s->ops);
  u64("tx_begins", &s->tx_begins);
  u64("tx_commits", &s->tx_commits);
  if (const workload::JsonValue* ab = v.find("aborts")) {
    for (int r = 1; r < htm::kAbortReasonCount; ++r) {
      if (const workload::JsonValue* f =
              ab->find(htm::toString(static_cast<htm::AbortReason>(r)))) {
        s->tx_aborts[r] = f->asU64();
      }
    }
  }
  u64("commits_after_hintclear_fail", &s->commits_after_hintclear_fail);
  u64("lock_acquires", &s->lock_acquires);
  u64("l1_hits", &s->l1_hits);
  u64("local_hits", &s->local_hits);
  u64("remote_transfers", &s->remote_transfers);
  u64("dram_misses", &s->dram_misses);
  return true;
}

}  // namespace

std::string jobKey(std::string_view series, double x, int trial,
                   uint64_t seed, std::string_view config_json) {
  std::string k;
  k.reserve(series.size() + config_json.size() + 48);
  k.append(series);
  k += '\x1f';
  appendNum(&k, x);
  k += '\x1f';
  appendU64(&k, static_cast<uint64_t>(trial));
  k += '\x1f';
  appendU64(&k, seed);
  k += '\x1f';
  k.append(config_json);
  return k;
}

std::string jobKey(const Job& j) {
  return jobKey(j.series, j.x, j.trial, j.seed, j.config_json);
}

void appendRecordJson(workload::JsonWriter& w, const Job& j,
                      const PointData& p, double wall_ms) {
  if (!p.resumed_record.empty()) {
    w.raw(p.resumed_record);
    return;
  }
  w.beginObject();
  w.key("series").value(j.series);
  w.key("x").value(j.x);
  w.key("trial").value(j.trial);
  w.key("seed").value(j.seed);
  if (!j.config_json.empty()) w.key("config").raw(j.config_json);
  appendPointPayload(w, p);
  if (p.retries > 0) w.key("retries").value(p.retries);
  // Keep wall_ms last: it is the one nondeterministic field, and a fixed
  // position lets determinism checks strip it with a one-line filter.
  w.key("wall_ms").value(wall_ms);
  w.endObject();
}

std::string pointDataToJson(const PointData& p) {
  workload::JsonWriter w;
  w.beginObject();
  w.key("status").value(p.status == PointStatus::kFailed ? "failed" : "ok");
  appendPointPayload(w, p);
  w.endObject();
  return w.take();
}

bool pointDataFromJson(const workload::JsonValue& v, PointData* out) {
  if (!v.isObject()) return false;
  *out = PointData{};
  if (const workload::JsonValue* failed = v.find("failed")) {
    out->status = PointStatus::kFailed;
    if (const workload::JsonValue* k = failed->find("kind")) {
      out->failure_kind = k->str;
    }
    if (const workload::JsonValue* d = failed->find("diagnostic")) {
      out->failure_diagnostic = d->str;
    }
    return true;
  }
  const workload::JsonValue* value = v.find("value");
  if (value == nullptr || !value->isNumber()) return false;
  out->value = value->number;
  if (const workload::JsonValue* stats = v.find("stats")) {
    if (!statsFromJson(*stats, &out->stats)) return false;
    out->has_stats = true;
  }
  if (const workload::JsonValue* aux = v.find("aux")) {
    if (!aux->isObject()) return false;
    for (const auto& [k, f] : aux->members) {
      out->aux.emplace_back(k, f.number);
    }
  }
  if (const workload::JsonValue* curve = v.find("curve")) {
    if (!curve->isArray()) return false;
    for (const workload::JsonValue& pt : curve->items) {
      if (!pt.isArray() || pt.items.size() != 2) return false;
      out->curve.emplace_back(pt.items[0].number, pt.items[1].number);
    }
  }
  if (const workload::JsonValue* attr = v.find("attribution")) {
    out->attribution_json = attr->raw;
  }
  if (const workload::JsonValue* svc = v.find("service")) {
    out->service_json = svc->raw;
  }
  if (const workload::JsonValue* retries = v.find("retries")) {
    out->retries = static_cast<int>(retries->asI64());
  }
  return true;
}

bool loadResumeFile(std::string_view text,
                    std::map<std::string, ResumePoint>* out,
                    std::string* experiment_name, std::string* err) {
  workload::JsonValue doc;
  if (!parseJson(text, &doc, err)) return false;
  if (!doc.isObject()) {
    if (err != nullptr) *err = "result file is not a JSON object";
    return false;
  }
  if (experiment_name != nullptr) {
    if (const workload::JsonValue* n = doc.find("experiment")) {
      *experiment_name = n->str;
    }
  }
  const workload::JsonValue* points = doc.find("points");
  if (points == nullptr || !points->isArray()) {
    if (err != nullptr) *err = "result file has no points array";
    return false;
  }
  for (const workload::JsonValue& rec : points->items) {
    if (!rec.isObject()) continue;
    if (rec.find("failed") != nullptr) continue;  // rerun failed points
    const workload::JsonValue* series = rec.find("series");
    const workload::JsonValue* x = rec.find("x");
    const workload::JsonValue* trial = rec.find("trial");
    const workload::JsonValue* seed = rec.find("seed");
    if (series == nullptr || x == nullptr || trial == nullptr ||
        seed == nullptr) {
      continue;
    }
    const workload::JsonValue* config = rec.find("config");
    ResumePoint rp;
    if (!pointDataFromJson(rec, &rp.data)) continue;
    if (const workload::JsonValue* wall = rec.find("wall_ms")) {
      rp.wall_ms = wall->number;
    }
    rp.raw = rec.raw;
    const std::string key =
        jobKey(series->str, x->number, static_cast<int>(trial->asI64()),
               seed->asU64(), config != nullptr ? config->raw : "");
    (*out)[key] = std::move(rp);
  }
  return true;
}

}  // namespace natle::exp
