#include "exp/standalone.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exp/runner.hpp"
#include "fault/fault.hpp"
#include "mem/alloc.hpp"

namespace natle::exp {

namespace {

void printUsage(const char* prog, std::FILE* to) {
  std::fprintf(to,
               "usage: %s [--full] [--jobs N] [--progress] [--fault SPEC]\n"
               "       [--placement P] [--watchdog-ms N] [--help]\n"
               "  --full       denser thread axis, longer trials, 3 "
               "trials/point\n"
               "  --jobs N     run data points on N worker threads (0 = all "
               "host cores)\n"
               "  --progress   per-data-point completion lines on stderr\n"
               "  --fault SPEC     inject a deterministic fault schedule "
               "into every point\n"
               "  --placement P    data-placement policy: first-touch, "
               "interleave,\n"
               "                   allocator-socket, adversarial-remote\n"
               "  --watchdog-ms N  fail any point making no progress for N "
               "simulated ms\n"
               "traffic experiments (service_*):\n"
               "  --arrival SPEC   arrival process for every request class\n"
               "  --duration-ms N  simulated measurement window in ms\n"
               "  --slo-us N       per-class latency SLO threshold in us\n"
               "environment:\n"
               "  NATLE_SIM_SCALE=<float>  scale simulated trial length\n",
               prog);
}

}  // namespace

void printFailureSummary(const ExperimentOutput& o, std::FILE* to) {
  if (o.n_failed == 0) return;
  std::fprintf(to, "%s: %zu point(s) FAILED:\n", o.experiment->name,
               o.n_failed);
  for (const PointFailure& f : o.failures) {
    std::fprintf(to, "  %s x=%g trial=%d: %s\n", f.series.c_str(), f.x,
                 f.trial, f.kind.c_str());
  }
}

int standaloneMain(const char* experiment_name, int argc, char** argv) {
  const char* prog = argc > 0 ? argv[0] : experiment_name;
  workload::BenchOptions opt;
  RunnerOptions ropt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--full") == 0) {
      opt.full = true;
    } else if (std::strcmp(a, "--progress") == 0) {
      ropt.progress = true;
    } else if (std::strcmp(a, "--jobs") == 0 || std::strcmp(a, "-j") == 0 ||
               std::strncmp(a, "--jobs=", 7) == 0 ||
               (std::strncmp(a, "-j", 2) == 0 && a[2] != '\0')) {
      // Accept the make/ninja spellings too: -j8, --jobs=8.
      const char* v;
      if (std::strncmp(a, "--jobs=", 7) == 0) {
        v = a + 7;
      } else if (a[1] == 'j' && a[2] != '\0') {
        v = a + 2;
      } else {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s needs a value\n", a);
          return 2;
        }
        v = argv[++i];
      }
      char* end = nullptr;
      const long n = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || n < 0 || n > 4096) {
        std::fprintf(stderr, "invalid --jobs value: %s\n", v);
        return 2;
      }
      ropt.jobs = static_cast<int>(n);
    } else if (std::strncmp(a, "--fault=", 8) == 0) {
      opt.fault_spec = a + 8;
    } else if (std::strcmp(a, "--fault") == 0 && i + 1 < argc) {
      opt.fault_spec = argv[++i];
    } else if (std::strncmp(a, "--placement=", 12) == 0) {
      opt.placement = a + 12;
    } else if (std::strcmp(a, "--placement") == 0 && i + 1 < argc) {
      opt.placement = argv[++i];
    } else if (std::strncmp(a, "--watchdog-ms=", 14) == 0 ||
               (std::strcmp(a, "--watchdog-ms") == 0 && i + 1 < argc)) {
      const char* v = a[13] == '=' ? a + 14 : argv[++i];
      if (!workload::BenchOptions::parseScale(v, &opt.watchdog_ms)) {
        std::fprintf(stderr, "invalid --watchdog-ms value: %s\n", v);
        return 2;
      }
    } else if (std::strncmp(a, "--arrival=", 10) == 0) {
      opt.arrival_spec = a + 10;
    } else if (std::strcmp(a, "--arrival") == 0 && i + 1 < argc) {
      // Spec validated by the traffic planner (this library does not link
      // src/traffic); an unparsable spec leaves experiment defaults in
      // place, same contract as an unused --fault on a faultless plan.
      opt.arrival_spec = argv[++i];
    } else if (std::strncmp(a, "--duration-ms=", 14) == 0 ||
               (std::strcmp(a, "--duration-ms") == 0 && i + 1 < argc)) {
      const char* v = a[13] == '=' ? a + 14 : argv[++i];
      if (!workload::BenchOptions::parseScale(v, &opt.duration_ms)) {
        std::fprintf(stderr, "invalid --duration-ms value: %s\n", v);
        return 2;
      }
    } else if (std::strncmp(a, "--slo-us=", 9) == 0 ||
               (std::strcmp(a, "--slo-us") == 0 && i + 1 < argc)) {
      const char* v = a[8] == '=' ? a + 9 : argv[++i];
      if (!workload::BenchOptions::parseScale(v, &opt.slo_us)) {
        std::fprintf(stderr, "invalid --slo-us value: %s\n", v);
        return 2;
      }
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      printUsage(prog, stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a);
      printUsage(prog, stderr);
      return 2;
    }
  }
  if (const char* s = std::getenv("NATLE_SIM_SCALE")) {
    if (!workload::BenchOptions::parseScale(s, &opt.time_scale)) {
      std::fprintf(stderr,
                   "invalid NATLE_SIM_SCALE value: \"%s\" (want a finite "
                   "number > 0)\n",
                   s);
      return 2;
    }
  }
  if (!opt.fault_spec.empty()) {
    fault::FaultSpec spec;
    std::string err;
    if (!fault::FaultSpec::parse(opt.fault_spec, &spec, &err)) {
      std::fprintf(stderr, "invalid --fault spec: %s\n", err.c_str());
      return 2;
    }
  }
  if (!opt.placement.empty()) {
    mem::PlacePolicy p;
    if (!mem::parsePlacePolicy(opt.placement, &p)) {
      std::fprintf(stderr,
                   "invalid --placement value: \"%s\" (want first-touch, "
                   "interleave, allocator-socket, or adversarial-remote)\n",
                   opt.placement.c_str());
      return 2;
    }
  }

  const Experiment* e = Registry::instance().find(experiment_name);
  if (e == nullptr) {
    std::fprintf(stderr, "experiment \"%s\" is not registered in this binary\n",
                 experiment_name);
    return 1;
  }
  const ExperimentOutput out = runExperiment(*e, opt, ropt);
  std::fputs(out.csv.c_str(), stdout);
  std::fprintf(stderr, "%s: %zu data points, %zu rows, %.2fs simulated work\n",
               e->name, out.n_jobs, out.n_records, out.job_wall_ms / 1e3);
  printFailureSummary(out, stderr);
  return out.n_failed > 0 ? 1 : 0;
}

}  // namespace natle::exp
