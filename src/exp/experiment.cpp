#include "exp/experiment.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>

namespace natle::exp {

bool globMatch(std::string_view pattern, std::string_view text) {
  // Iterative wildcard match with backtracking over the last `*`.
  size_t p = 0, t = 0;
  size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

struct Registry::Impl {
  // std::map: stable addresses and name-sorted iteration for free.
  std::map<std::string, Experiment, std::less<>> by_name;
};

Registry::Registry() : impl_(new Impl) {}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

void Registry::add(Experiment e) {
  const auto [it, inserted] = impl_->by_name.emplace(e.name, std::move(e));
  if (!inserted) {
    std::fprintf(stderr, "natle::exp: duplicate experiment name \"%s\"\n",
                 it->first.c_str());
    std::abort();
  }
}

const Experiment* Registry::find(std::string_view name) const {
  const auto it = impl_->by_name.find(name);
  return it == impl_->by_name.end() ? nullptr : &it->second;
}

std::vector<const Experiment*> Registry::all() const {
  std::vector<const Experiment*> out;
  out.reserve(impl_->by_name.size());
  for (const auto& [_, e] : impl_->by_name) out.push_back(&e);
  return out;
}

std::vector<const Experiment*> Registry::match(std::string_view pattern) const {
  std::vector<const Experiment*> out;
  const std::string prefixed = std::string(pattern) + "*";
  for (const auto& [name, e] : impl_->by_name) {
    if (globMatch(pattern, name) || globMatch(prefixed, name)) {
      out.push_back(&e);
    }
  }
  return out;
}

Registrar::Registrar(Experiment e) { Registry::instance().add(std::move(e)); }

}  // namespace natle::exp
