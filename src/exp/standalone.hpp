// Entry point for per-figure standalone binaries: each bench/fig*.cpp keeps
// a thin main() that delegates here, so one binary still means one figure
// (CSV on stdout, as always) while the experiment itself lives in the
// registry shared with `natle-bench`.
#pragma once

#include <cstdio>

#include "exp/runner.hpp"

namespace natle::exp {

// Runs the named registered experiment and prints its CSV to stdout.
// Accepts --full, --jobs/-j N, --progress, --fault, --watchdog-ms, --help;
// returns the process exit code (nonzero when any point failed).
int standaloneMain(const char* experiment_name, int argc, char** argv);

// Per-experiment failed-point listing (series, x, trial, failure kind);
// shared by the standalone binaries and natle-bench.
void printFailureSummary(const ExperimentOutput& o, std::FILE* to);

}  // namespace natle::exp
