// Entry point for per-figure standalone binaries: each bench/fig*.cpp keeps
// a thin main() that delegates here, so one binary still means one figure
// (CSV on stdout, as always) while the experiment itself lives in the
// registry shared with `natle-bench`.
#pragma once

namespace natle::exp {

// Runs the named registered experiment and prints its CSV to stdout.
// Accepts --full, --jobs/-j N, --progress, --help; returns the process exit
// code.
int standaloneMain(const char* experiment_name, int argc, char** argv);

}  // namespace natle::exp
