// Point-record serialization shared by the runner's JSON renderer, the
// isolate-mode child/parent pipe protocol, and --resume ingestion.
//
// A record's byte layout is part of the determinism contract: appendRecordJson
// is the single writer, and a resumed point is re-emitted by splicing the
// prior file's raw record text, so a resumed run's output is byte-identical
// to an uninterrupted one (wall_ms included — it is carried over).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "exp/experiment.hpp"
#include "exp/record.hpp"
#include "workload/json.hpp"
#include "workload/json_parse.hpp"

namespace natle::exp {

// Identity of a job inside one experiment; the --resume map key. Two jobs
// with the same key are interchangeable by construction (same series, x,
// trial, seed, and full serialized config).
std::string jobKey(std::string_view series, double x, int trial,
                   uint64_t seed, std::string_view config_json);
std::string jobKey(const Job& j);

// Appends one result record object (an element of the result file's
// "points" array). Resumed points splice their stored record verbatim.
void appendRecordJson(workload::JsonWriter& w, const Job& j,
                      const PointData& p, double wall_ms);

// Bare PointData <-> JSON, for shipping a result across the isolate-mode
// pipe. The payload keys match the record layout (value/stats/aux/curve/
// attribution or failed{kind,diagnostic}).
std::string pointDataToJson(const PointData& p);
bool pointDataFromJson(const workload::JsonValue& v, PointData* out);

struct ResumePoint {
  PointData data;       // reconstructed result (status kOk)
  double wall_ms = 0;   // prior run's timing, carried into the new file
  std::string raw;      // exact record text, re-spliced on emission
};

// Parses a result file previously written by the runner and collects every
// successful record keyed by jobKey. Failed records are skipped (a resumed
// run retries them). Returns false with a message on malformed input.
bool loadResumeFile(std::string_view text,
                    std::map<std::string, ResumePoint>* out,
                    std::string* experiment_name, std::string* err);

}  // namespace natle::exp
