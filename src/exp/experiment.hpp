// Experiment registry.
//
// Each paper figure registers itself once (name, description, paper
// reference, planning function) via NATLE_REGISTER_EXPERIMENT; the
// `natle-bench` CLI and the per-figure standalone binaries both go through
// the registry, so adding an experiment is one file with one macro line.
//
// A plan expands the experiment into independent (config, seed, trial) jobs.
// Jobs must be self-contained: each owns its configs by value, builds its
// own simulator Env, and touches no shared mutable state — that is what
// makes the runner free to execute them on any OS thread in any order.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "exp/record.hpp"
#include "workload/options.hpp"

namespace natle::exp {

// One schedulable simulation.
struct Job {
  std::string series;  // output series this point feeds (display + JSON)
  double x = 0;        // x coordinate (thread count, delay, ...)
  int trial = 0;
  uint64_t seed = 0;
  std::string config_json;  // serialized sim config, embedded in the record
  std::function<PointData()> run;
  // Re-runs this job with raw event retention and returns the JSONL event
  // stream (`natle-bench trace <experiment>`). Unset for jobs whose planner
  // does not support tracing.
  std::function<std::string()> dump_trace;
  // Reruns the job with a salt (>= 1) folded into its seeds; used by the
  // runner's capped retry-with-reseed when a transient-flagged point fails.
  // Unset jobs are never retried.
  std::function<PointData(int salt)> run_reseeded;
  // Marks failures of this job as plausibly transient (fault injection or a
  // watchdog armed): the runner may retry via run_reseeded.
  bool transient = false;
};

struct Plan {
  std::vector<Job> jobs;
  // Folds completed results (parallel to `jobs`) into ordered CSV rows.
  // Runs single-threaded after every job finishes; trial averaging and
  // cross-job derivations (speedup baselines, abort breakdowns) live here.
  // When unset, the runner emits one row per job: (series, x, value).
  std::function<std::vector<Record>(const std::vector<PointData>&)> emit;
};

struct Experiment {
  const char* name;         // e.g. "fig01_avl_two_machines"
  const char* description;  // one line, shown by `natle-bench list`
  const char* paper_ref;    // e.g. "Figure 1", "Section 4.1"
  const char* axes;         // CSV header note, e.g. "y = Mops/s"
  std::function<void(const workload::BenchOptions&, Plan&)> plan;
};

// `*` and `?` wildcard match (full-string).
bool globMatch(std::string_view pattern, std::string_view text);

class Registry {
 public:
  static Registry& instance();

  // Registers an experiment; duplicate names abort (two figures claiming one
  // name is a build bug, not a runtime condition).
  void add(Experiment e);

  const Experiment* find(std::string_view name) const;
  // All experiments, name-sorted.
  std::vector<const Experiment*> all() const;
  // Experiments whose name matches `pattern` (or is prefixed by it, so
  // `--filter fig01` works without trailing `*`), name-sorted.
  std::vector<const Experiment*> match(std::string_view pattern) const;

 private:
  struct Impl;
  Impl* impl_;
  Registry();
};

struct Registrar {
  explicit Registrar(Experiment e);
};

}  // namespace natle::exp

// Static registration: one line at namespace scope per experiment.
#define NATLE_REGISTER_EXPERIMENT(tag, ...)                       \
  static const ::natle::exp::Registrar natle_exp_registrar_##tag{ \
      ::natle::exp::Experiment{__VA_ARGS__}}
