// Parallel experiment runner.
//
// Expands experiments into their job lists and executes all jobs across a
// pool of `--jobs N` OS threads — legal because every simulation is a
// self-contained, deterministic, single-threaded fiber run. Results are
// stored by job index and rendered single-threaded afterwards, so the CSV
// and JSON outputs are byte-identical for any worker count.
//
// Robustness layers on top of the pool:
//   - a job that throws (sim::WatchdogError from a tripped livelock
//     watchdog, or any std::exception) becomes a structured "failed" record
//     instead of taking the process down;
//   - isolate mode forks each point into its own process, so a hard crash
//     (segfault, abort) or a wall-clock timeout is also just a failed
//     record;
//   - transient-flagged jobs get capped retry-with-reseed;
//   - a StopToken (SIGINT/SIGTERM) stops dispatch, finishes or kills
//     in-flight points, and leaves the rest "not run" so --resume can pick
//     the sweep back up from the completed prefix.
#pragma once

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/pointio.hpp"

namespace natle::exp {

// Cooperative cancellation flag; safe to set from a signal handler.
struct StopToken {
  std::atomic<bool> flag{false};
  void request() { flag.store(true, std::memory_order_relaxed); }
  bool stopped() const { return flag.load(std::memory_order_relaxed); }
};

struct RunnerOptions {
  int jobs = 1;           // worker threads / concurrent children; 0 = all cores
  bool progress = false;  // per-job completion lines on stderr
  // Fork each point into a throwaway child process. Crashes and timeouts
  // become failed records instead of killing the sweep. The parent stays
  // single-threaded (fork from a multithreaded process is unsafe); `jobs`
  // bounds the number of concurrent children.
  bool isolate = false;
  // Wall-clock budget per point; overdue children are SIGKILLed and
  // recorded as "timeout" failures. Isolate mode only (threads cannot be
  // killed safely); 0 disables.
  double point_timeout_s = 0;
  // Extra attempts (with a reseed salt) for transient-flagged jobs whose
  // first run fails. 0 disables retries.
  int transient_retries = 0;
  // When set, dispatch stops as soon as the flag goes up; completed points
  // are still rendered and unstarted ones are marked not-run.
  StopToken* stop = nullptr;
  // Prior results keyed by experiment name then jobKey(); matching jobs are
  // satisfied from the map (record text spliced verbatim) instead of rerun.
  const std::map<std::string, std::map<std::string, ResumePoint>>* resume =
      nullptr;
};

// One failed point, for the CLI failure summary.
struct PointFailure {
  std::string series;
  double x = 0;
  int trial = 0;
  std::string kind;  // watchdog | deadlock | cycle_limit | exception | crash | timeout
};

struct ExperimentOutput {
  const Experiment* experiment = nullptr;
  std::string csv;   // header + series,x,y rows (same format benches printed)
  std::string json;  // one JSON record per job; wall_ms is the only
                     // nondeterministic field (always last in each record)
  size_t n_jobs = 0;
  size_t n_records = 0;
  size_t n_failed = 0;   // points recorded as structured failures
  size_t n_not_run = 0;  // points skipped after a stop request
  size_t n_resumed = 0;  // points satisfied from a --resume file
  std::vector<PointFailure> failures;
  double job_wall_ms = 0;  // summed per-job wall time (CPU-work proxy)
};

// Runs every experiment's jobs over one shared worker pool (better load
// balancing than per-experiment pools) and returns outputs in input order.
std::vector<ExperimentOutput> runExperiments(
    const std::vector<const Experiment*>& exps,
    const workload::BenchOptions& opt, const RunnerOptions& ropt);

// Single-experiment convenience wrapper.
ExperimentOutput runExperiment(const Experiment& e,
                               const workload::BenchOptions& opt,
                               const RunnerOptions& ropt);

// Effective worker count (resolves jobs==0 to hardware concurrency).
int resolveWorkers(int jobs);

}  // namespace natle::exp
