// Parallel experiment runner.
//
// Expands experiments into their job lists and executes all jobs across a
// pool of `--jobs N` OS threads — legal because every simulation is a
// self-contained, deterministic, single-threaded fiber run. Results are
// stored by job index and rendered single-threaded afterwards, so the CSV
// and JSON outputs are byte-identical for any worker count.
#pragma once

#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace natle::exp {

struct RunnerOptions {
  int jobs = 1;           // worker threads; 0 = hardware concurrency
  bool progress = false;  // per-job completion lines on stderr
};

struct ExperimentOutput {
  const Experiment* experiment = nullptr;
  std::string csv;   // header + series,x,y rows (same format benches printed)
  std::string json;  // one JSON record per job; wall_ms is the only
                     // nondeterministic field (always last in each record)
  size_t n_jobs = 0;
  size_t n_records = 0;
  double job_wall_ms = 0;  // summed per-job wall time (CPU-work proxy)
};

// Runs every experiment's jobs over one shared worker pool (better load
// balancing than per-experiment pools) and returns outputs in input order.
std::vector<ExperimentOutput> runExperiments(
    const std::vector<const Experiment*>& exps,
    const workload::BenchOptions& opt, const RunnerOptions& ropt);

// Single-experiment convenience wrapper.
ExperimentOutput runExperiment(const Experiment& e,
                               const workload::BenchOptions& opt,
                               const RunnerOptions& ropt);

// Effective worker count (resolves jobs==0 to hardware concurrency).
int resolveWorkers(int jobs);

}  // namespace natle::exp
