// Umbrella header for experiment definitions: everything a bench/*.cpp
// needs to register itself and keep its thin standalone main().
#pragma once

#include "exp/experiment.hpp"  // IWYU pragma: export
#include "exp/record.hpp"      // IWYU pragma: export
#include "exp/runner.hpp"      // IWYU pragma: export
#include "exp/standalone.hpp"  // IWYU pragma: export
#include "exp/sweep.hpp"       // IWYU pragma: export
