// Result types flowing through the experiment harness.
//
// A Job (one self-contained simulation) produces a PointData; an
// experiment's emit() hook folds the full ordered PointData vector into
// Records (the `series,x,y` CSV rows). Everything in PointData is
// deterministic — wall-clock timing is tracked separately by the runner so
// result files stay byte-identical across worker counts.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "htm/stats.hpp"
#include "obs/attribution.hpp"

namespace natle::exp {

// How a point ended. kFailed points carry a structured failure record
// instead of a value; kNotRun points (interrupted or skipped) are omitted
// from result files entirely so --resume reruns them.
enum class PointStatus { kOk, kFailed, kNotRun };

// Raw outcome of one (config, seed, trial) simulation.
struct PointData {
  double value = 0;     // primary metric (Mops/s, simulated ms, ...)
  htm::TxStats stats;   // transaction/memory counters, when the job has them
  bool has_stats = false;
  // Named secondary metrics (e.g. update_mops/search_mops for Figure 16).
  std::vector<std::pair<std::string, double>> aux;
  // Optional per-run history curve (e.g. Figure 18(b)'s socket-0 share per
  // NATLE cycle); emitted to JSON and expandable into CSV rows by emit().
  std::vector<std::pair<double, double>> curve;
  // Serialized obs::Attribution object (abort attribution, killer matrix,
  // hot lines) when the job ran with tracing; empty otherwise. Spliced into
  // the JSON record verbatim.
  std::string attribution_json;
  // Serialized traffic::ServiceResult metrics block (per-class latency
  // quantiles, SLO violations, time-bucketed latency series) when the job is
  // a traffic-driven service run; empty otherwise. Spliced verbatim, like
  // attribution_json.
  std::string service_json;
  // The same attribution in structured form so emit() hooks can derive
  // cross-point metrics (e.g. cross-socket abort share) without re-parsing
  // the JSON. Never serialized directly.
  bool has_attribution = false;
  obs::Attribution attribution;

  PointStatus status = PointStatus::kOk;
  // Failure classification when status == kFailed: "watchdog", "deadlock",
  // "cycle_limit" (sim::WatchdogError kinds), "exception", or — isolate
  // mode only — "crash" and "timeout".
  std::string failure_kind;
  // Deterministic diagnostic (watchdog dump, exception message, exit
  // status). Emitted verbatim inside the failed record.
  std::string failure_diagnostic;
  // Extra attempts spent before this outcome (retry-with-reseed); > 0 means
  // the recorded result came from a reseeded rerun.
  int retries = 0;
  // Set by the runner when the point was satisfied from a --resume file:
  // the prior run's record text, re-emitted verbatim (guarantees resumed
  // output is byte-identical to an uninterrupted run).
  std::string resumed_record;
};

// One CSV output row.
struct Record {
  std::string series;
  double x = 0;
  double y = 0;
};

}  // namespace natle::exp
