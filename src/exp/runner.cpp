#include "exp/runner.hpp"

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "exp/pointio.hpp"
#include "sim/machine.hpp"
#include "workload/json.hpp"
#include "workload/json_parse.hpp"

namespace natle::exp {

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

bool stopRequested(const RunnerOptions& ropt) {
  return ropt.stop != nullptr && ropt.stop->stopped();
}

// Runs one job attempt, converting anything it throws into a failed point.
// A tripped watchdog arrives as sim::WatchdogError and keeps its structured
// kind + diagnostic; other exceptions are classified "exception".
PointData guardedRun(const Job& j, int salt) {
  try {
    return salt > 0 && j.run_reseeded ? j.run_reseeded(salt) : j.run();
  } catch (const sim::WatchdogError& e) {
    PointData p;
    p.status = PointStatus::kFailed;
    p.failure_kind = e.kind;
    p.failure_diagnostic = e.diagnostic;
    return p;
  } catch (const std::exception& e) {
    PointData p;
    p.status = PointStatus::kFailed;
    p.failure_kind = "exception";
    p.failure_diagnostic = e.what();
    return p;
  }
}

bool retryEligible(const Job& j, const PointData& p, int salt,
                   const RunnerOptions& ropt) {
  return p.status == PointStatus::kFailed && j.transient &&
         static_cast<bool>(j.run_reseeded) && salt < ropt.transient_retries &&
         !stopRequested(ropt);
}

std::string renderCsv(const Experiment& e, const std::vector<Record>& rows) {
  std::string out = "# bench=";
  out += e.name;
  if (e.axes != nullptr && e.axes[0] != '\0') {
    out += " (";
    out += e.axes;
    out += ")";
  }
  out += "\nseries,x,y\n";
  char buf[160];
  for (const Record& r : rows) {
    std::snprintf(buf, sizeof buf, ",%g,%g\n", r.x, r.y);
    out += r.series;
    out += buf;
  }
  return out;
}

std::string renderJson(const Experiment& e, const workload::BenchOptions& opt,
                       const std::vector<Job>& jobs,
                       const std::vector<PointData>& results,
                       const std::vector<double>& wall_ms) {
  workload::JsonWriter w;
  w.beginObject();
  w.key("experiment").value(e.name);
  w.key("paper_ref").value(e.paper_ref);
  w.key("description").value(e.description);
  w.key("sim_scale").value(opt.time_scale);
  w.key("full").value(opt.full);
  w.key("points");
  w.beginArray().newline();
  for (size_t i = 0; i < jobs.size(); ++i) {
    // Skipped points are omitted entirely: the file then only claims what
    // actually ran, and --resume retries exactly the missing keys.
    if (results[i].status == PointStatus::kNotRun) continue;
    appendRecordJson(w, jobs[i], results[i], wall_ms[i]);
    w.newline();
  }
  w.endArray();
  w.endObject().newline();
  return w.take();
}

std::vector<Record> defaultEmit(const std::vector<Job>& jobs,
                                const std::vector<PointData>& results) {
  std::vector<Record> rows;
  rows.reserve(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (results[i].status != PointStatus::kOk) continue;
    rows.push_back({jobs[i].series, jobs[i].x, results[i].value});
  }
  return rows;
}

struct Slot {
  size_t exp, job;
};

void printProgress(std::mutex& io_mu, size_t finished, size_t total,
                   const char* exp_name, const Job& j, double wall,
                   const PointData& p) {
  std::lock_guard<std::mutex> lk(io_mu);
  if (p.status == PointStatus::kFailed) {
    std::fprintf(stderr, "[%4zu/%zu] %s %s x=%g trial=%d FAILED (%s) (%.2fs)\n",
                 finished, total, exp_name, j.series.c_str(), j.x, j.trial,
                 p.failure_kind.c_str(), wall / 1e3);
  } else {
    std::fprintf(stderr, "[%4zu/%zu] %s %s x=%g trial=%d (%.2fs)\n", finished,
                 total, exp_name, j.series.c_str(), j.x, j.trial, wall / 1e3);
  }
}

// --- thread mode ----------------------------------------------------------

void runPool(const std::vector<const Experiment*>& exps,
             const std::vector<Plan>& plans, const std::vector<Slot>& queue,
             const RunnerOptions& ropt,
             std::vector<std::vector<PointData>>& results,
             std::vector<std::vector<double>>& wall_ms) {
  const int workers =
      std::min(resolveWorkers(ropt.jobs),
               static_cast<int>(std::max<size_t>(queue.size(), 1)));
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex io_mu;
  auto work = [&] {
    for (;;) {
      if (stopRequested(ropt)) return;  // queued work stays kNotRun
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= queue.size()) return;
      const Slot s = queue[i];
      const Job& j = plans[s.exp].jobs[s.job];
      const auto t0 = Clock::now();
      int salt = 0;
      PointData p = guardedRun(j, salt);
      while (retryEligible(j, p, salt, ropt)) {
        p = guardedRun(j, ++salt);
      }
      p.retries = salt;
      results[s.exp][s.job] = std::move(p);
      wall_ms[s.exp][s.job] = msSince(t0);
      const size_t finished = done.fetch_add(1) + 1;
      if (ropt.progress) {
        printProgress(io_mu, finished, queue.size(), exps[s.exp]->name, j,
                      wall_ms[s.exp][s.job], results[s.exp][s.job]);
      }
    }
  };
  if (workers <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (int t = 0; t < workers; ++t) pool.emplace_back(work);
    for (auto& th : pool) th.join();
  }
}

// --- isolate mode ---------------------------------------------------------

struct IsolateChild {
  pid_t pid = -1;
  int fd = -1;         // read end of the result pipe
  size_t qi = 0;       // queue index
  int salt = 0;
  bool timed_out = false;
  bool has_deadline = false;
  Clock::time_point start;
  Clock::time_point deadline;
  std::string buf;
};

void spawnChild(const Job& j, size_t qi, int salt, double timeout_s,
                std::vector<IsolateChild>& active) {
  int fds[2];
  if (::pipe(fds) != 0) {
    std::perror("natle: pipe");
    std::abort();
  }
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child: run the point, ship the serialized result, vanish. _exit skips
    // atexit/stdio teardown inherited from the parent.
    ::close(fds[0]);
    for (const IsolateChild& c : active) ::close(c.fd);
    ::signal(SIGINT, SIG_DFL);
    ::signal(SIGTERM, SIG_DFL);
    const PointData p = guardedRun(j, salt);
    const std::string msg = pointDataToJson(p);
    size_t off = 0;
    while (off < msg.size()) {
      const ssize_t n = ::write(fds[1], msg.data() + off, msg.size() - off);
      if (n <= 0) {
        if (errno == EINTR) continue;
        break;
      }
      off += static_cast<size_t>(n);
    }
    ::close(fds[1]);
    ::_exit(0);
  }
  ::close(fds[1]);
  IsolateChild c;
  c.pid = pid;
  c.fd = fds[0];
  c.qi = qi;
  c.salt = salt;
  c.start = Clock::now();
  if (timeout_s > 0) {
    c.has_deadline = true;
    c.deadline = c.start + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(timeout_s));
  }
  active.push_back(std::move(c));
}

// Interprets a reaped child: parse its payload on a clean exit, otherwise
// synthesize a crash/timeout failure with the exit detail as diagnostic.
PointData childOutcome(const IsolateChild& c, int wait_status) {
  PointData p;
  if (c.timed_out) {
    p.status = PointStatus::kFailed;
    p.failure_kind = "timeout";
    p.failure_diagnostic = "point exceeded wall-clock budget; child killed";
    return p;
  }
  if (WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0) {
    workload::JsonValue v;
    std::string err;
    if (workload::parseJson(c.buf, &v, &err) && pointDataFromJson(v, &p)) {
      return p;
    }
    p = PointData{};
    p.status = PointStatus::kFailed;
    p.failure_kind = "crash";
    p.failure_diagnostic = "child result unparseable: " + err;
    return p;
  }
  p.status = PointStatus::kFailed;
  p.failure_kind = "crash";
  if (WIFSIGNALED(wait_status)) {
    const int sig = WTERMSIG(wait_status);
    const char* name = ::strsignal(sig);
    p.failure_diagnostic = "child killed by signal " + std::to_string(sig) +
                           (name != nullptr ? std::string(" (") + name + ")"
                                            : std::string());
  } else {
    p.failure_diagnostic =
        "child exited with status " + std::to_string(WEXITSTATUS(wait_status));
  }
  return p;
}

void runIsolated(const std::vector<const Experiment*>& exps,
                 const std::vector<Plan>& plans, const std::vector<Slot>& queue,
                 const RunnerOptions& ropt,
                 std::vector<std::vector<PointData>>& results,
                 std::vector<std::vector<double>>& wall_ms) {
  const int workers =
      std::min(resolveWorkers(ropt.jobs),
               static_cast<int>(std::max<size_t>(queue.size(), 1)));
  std::deque<size_t> pending;
  for (size_t i = 0; i < queue.size(); ++i) pending.push_back(i);
  std::vector<int> salt(queue.size(), 0);
  std::vector<IsolateChild> active;
  std::mutex io_mu;  // single-threaded here; reused for printProgress's API
  size_t finished = 0;
  bool aborted = false;

  auto finalize = [&](IsolateChild& c, int wait_status) {
    const Slot s = queue[c.qi];
    const Job& j = plans[s.exp].jobs[s.job];
    PointData p = childOutcome(c, wait_status);
    const double wall = msSince(c.start);
    if (retryEligible(j, p, c.salt, ropt)) {
      salt[c.qi] = c.salt + 1;
      pending.push_front(c.qi);  // retry before fresh work: fail fast
      return;
    }
    p.retries = c.salt;
    results[s.exp][s.job] = std::move(p);
    wall_ms[s.exp][s.job] += wall;
    finished++;
    if (ropt.progress) {
      printProgress(io_mu, finished, queue.size(), exps[s.exp]->name, j,
                    wall_ms[s.exp][s.job], results[s.exp][s.job]);
    }
  };

  while (!pending.empty() || !active.empty()) {
    if (stopRequested(ropt) && !aborted) {
      // Flush policy on SIGINT/SIGTERM: everything already finalized is
      // kept; in-flight children are killed and left not-run (a killed
      // child is an interruption artifact, not a real crash), so --resume
      // reruns them.
      aborted = true;
      pending.clear();
      for (IsolateChild& c : active) ::kill(c.pid, SIGKILL);
    }
    while (!aborted && static_cast<int>(active.size()) < workers &&
           !pending.empty()) {
      const size_t qi = pending.front();
      pending.pop_front();
      const Slot s = queue[qi];
      spawnChild(plans[s.exp].jobs[s.job], qi, salt[qi],
                 ropt.point_timeout_s, active);
    }
    if (active.empty()) break;

    // Poll for output/EOF, bounded so deadlines and stop requests are
    // noticed promptly.
    std::vector<pollfd> fds(active.size());
    for (size_t i = 0; i < active.size(); ++i) {
      fds[i] = {active[i].fd, POLLIN, 0};
    }
    int timeout_ms = 200;
    const auto now = Clock::now();
    for (const IsolateChild& c : active) {
      if (!c.has_deadline) continue;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            c.deadline - now)
                            .count();
      timeout_ms = std::min<int>(
          timeout_ms, static_cast<int>(std::max<long long>(0, left)));
    }
    const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      std::perror("natle: poll");
      std::abort();
    }

    const auto after = Clock::now();
    for (size_t i = 0; i < active.size();) {
      IsolateChild& c = active[i];
      if (!c.timed_out && c.has_deadline && after >= c.deadline &&
          !aborted) {
        c.timed_out = true;
        ::kill(c.pid, SIGKILL);
      }
      bool reap = false;
      if (fds[i].revents != 0) {
        char buf[4096];
        const ssize_t n = ::read(c.fd, buf, sizeof buf);
        if (n > 0) {
          c.buf.append(buf, static_cast<size_t>(n));
        } else if (n == 0 || (n < 0 && errno != EINTR)) {
          reap = true;  // EOF: child exited (or was killed)
        }
      }
      if (reap) {
        int wait_status = 0;
        while (::waitpid(c.pid, &wait_status, 0) < 0 && errno == EINTR) {
        }
        ::close(c.fd);
        if (!aborted) finalize(c, wait_status);
        active.erase(active.begin() + static_cast<long>(i));
        fds.erase(fds.begin() + static_cast<long>(i));
        continue;
      }
      ++i;
    }
  }
}

}  // namespace

int resolveWorkers(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::vector<ExperimentOutput> runExperiments(
    const std::vector<const Experiment*>& exps,
    const workload::BenchOptions& opt, const RunnerOptions& ropt) {
  // Expand every experiment's plan up front.
  std::vector<Plan> plans(exps.size());
  std::vector<std::vector<PointData>> results(exps.size());
  std::vector<std::vector<double>> wall_ms(exps.size());
  std::vector<size_t> resumed(exps.size(), 0);
  std::vector<Slot> queue;
  for (size_t ei = 0; ei < exps.size(); ++ei) {
    exps[ei]->plan(opt, plans[ei]);
    results[ei].resize(plans[ei].jobs.size());
    wall_ms[ei].resize(plans[ei].jobs.size(), 0);
    const std::map<std::string, ResumePoint>* prior = nullptr;
    if (ropt.resume != nullptr) {
      const auto it = ropt.resume->find(exps[ei]->name);
      if (it != ropt.resume->end()) prior = &it->second;
    }
    for (size_t ji = 0; ji < plans[ei].jobs.size(); ++ji) {
      // Everything starts "not run"; only finalized points change state, so
      // an interrupted run renders exactly what completed.
      results[ei][ji].status = PointStatus::kNotRun;
      if (prior != nullptr) {
        const auto it = prior->find(jobKey(plans[ei].jobs[ji]));
        if (it != prior->end()) {
          results[ei][ji] = it->second.data;
          results[ei][ji].resumed_record = it->second.raw;
          wall_ms[ei][ji] = it->second.wall_ms;
          resumed[ei]++;
          continue;
        }
      }
      queue.push_back({ei, ji});
    }
  }

  // Job order in the queue is irrelevant to output: results land in their
  // preassigned slot and all rendering happens after the pool drains.
  if (!queue.empty()) {
    if (ropt.isolate) {
      runIsolated(exps, plans, queue, ropt, results, wall_ms);
    } else {
      runPool(exps, plans, queue, ropt, results, wall_ms);
    }
  }

  // Deterministic single-threaded rendering, in experiment order.
  std::vector<ExperimentOutput> out(exps.size());
  for (size_t ei = 0; ei < exps.size(); ++ei) {
    const std::vector<Record> rows =
        plans[ei].emit ? plans[ei].emit(results[ei])
                       : defaultEmit(plans[ei].jobs, results[ei]);
    ExperimentOutput& o = out[ei];
    o.experiment = exps[ei];
    o.csv = renderCsv(*exps[ei], rows);
    o.json = renderJson(*exps[ei], opt, plans[ei].jobs, results[ei],
                        wall_ms[ei]);
    o.n_jobs = plans[ei].jobs.size();
    o.n_records = rows.size();
    o.n_resumed = resumed[ei];
    for (size_t ji = 0; ji < plans[ei].jobs.size(); ++ji) {
      const PointData& p = results[ei][ji];
      if (p.status == PointStatus::kFailed) {
        o.n_failed++;
        o.failures.push_back({plans[ei].jobs[ji].series,
                              plans[ei].jobs[ji].x, plans[ei].jobs[ji].trial,
                              p.failure_kind});
      } else if (p.status == PointStatus::kNotRun) {
        o.n_not_run++;
      }
    }
    for (double ms : wall_ms[ei]) o.job_wall_ms += ms;
  }
  return out;
}

ExperimentOutput runExperiment(const Experiment& e,
                               const workload::BenchOptions& opt,
                               const RunnerOptions& ropt) {
  return runExperiments({&e}, opt, ropt)[0];
}

}  // namespace natle::exp
