#include "exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include "workload/json.hpp"

namespace natle::exp {

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::string renderCsv(const Experiment& e, const std::vector<Record>& rows) {
  std::string out = "# bench=";
  out += e.name;
  if (e.axes != nullptr && e.axes[0] != '\0') {
    out += " (";
    out += e.axes;
    out += ")";
  }
  out += "\nseries,x,y\n";
  char buf[160];
  for (const Record& r : rows) {
    std::snprintf(buf, sizeof buf, ",%g,%g\n", r.x, r.y);
    out += r.series;
    out += buf;
  }
  return out;
}

std::string renderJson(const Experiment& e, const workload::BenchOptions& opt,
                       const std::vector<Job>& jobs,
                       const std::vector<PointData>& results,
                       const std::vector<double>& wall_ms) {
  workload::JsonWriter w;
  w.beginObject();
  w.key("experiment").value(e.name);
  w.key("paper_ref").value(e.paper_ref);
  w.key("description").value(e.description);
  w.key("sim_scale").value(opt.time_scale);
  w.key("full").value(opt.full);
  w.key("points");
  w.beginArray().newline();
  for (size_t i = 0; i < jobs.size(); ++i) {
    const Job& j = jobs[i];
    const PointData& p = results[i];
    w.beginObject();
    w.key("series").value(j.series);
    w.key("x").value(j.x);
    w.key("trial").value(j.trial);
    w.key("seed").value(j.seed);
    if (!j.config_json.empty()) w.key("config").raw(j.config_json);
    w.key("value").value(p.value);
    if (p.has_stats) {
      w.key("stats");
      appendJson(w, p.stats);
    }
    if (!p.aux.empty()) {
      w.key("aux");
      w.beginObject();
      for (const auto& [k, v] : p.aux) w.key(k).value(v);
      w.endObject();
    }
    if (!p.curve.empty()) {
      w.key("curve");
      w.beginArray();
      for (const auto& [cx, cy] : p.curve) {
        w.beginArray().value(cx).value(cy).endArray();
      }
      w.endArray();
    }
    if (!p.attribution_json.empty()) {
      w.key("attribution").raw(p.attribution_json);
    }
    // Keep wall_ms last: it is the one nondeterministic field, and a fixed
    // position lets determinism checks strip it with a one-line filter.
    w.key("wall_ms").value(wall_ms[i]);
    w.endObject().newline();
  }
  w.endArray();
  w.endObject().newline();
  return w.take();
}

std::vector<Record> defaultEmit(const std::vector<Job>& jobs,
                                const std::vector<PointData>& results) {
  std::vector<Record> rows;
  rows.reserve(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    rows.push_back({jobs[i].series, jobs[i].x, results[i].value});
  }
  return rows;
}

}  // namespace

int resolveWorkers(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::vector<ExperimentOutput> runExperiments(
    const std::vector<const Experiment*>& exps,
    const workload::BenchOptions& opt, const RunnerOptions& ropt) {
  // Expand every experiment's plan up front.
  std::vector<Plan> plans(exps.size());
  std::vector<std::vector<PointData>> results(exps.size());
  std::vector<std::vector<double>> wall_ms(exps.size());
  struct Slot {
    size_t exp, job;
  };
  std::vector<Slot> queue;
  for (size_t ei = 0; ei < exps.size(); ++ei) {
    exps[ei]->plan(opt, plans[ei]);
    results[ei].resize(plans[ei].jobs.size());
    wall_ms[ei].resize(plans[ei].jobs.size(), 0);
    for (size_t ji = 0; ji < plans[ei].jobs.size(); ++ji) {
      queue.push_back({ei, ji});
    }
  }

  // Shared pool over the flat job list; each worker pulls the next index.
  // Job order in the queue is irrelevant to output: results land in their
  // preassigned slot and all rendering happens after the pool joins.
  const int workers =
      std::min(resolveWorkers(ropt.jobs),
               static_cast<int>(std::max<size_t>(queue.size(), 1)));
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex io_mu;
  auto work = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= queue.size()) return;
      const Slot s = queue[i];
      const Job& j = plans[s.exp].jobs[s.job];
      const auto t0 = Clock::now();
      results[s.exp][s.job] = j.run();
      wall_ms[s.exp][s.job] = msSince(t0);
      const size_t finished = done.fetch_add(1) + 1;
      if (ropt.progress) {
        std::lock_guard<std::mutex> lk(io_mu);
        std::fprintf(stderr, "[%4zu/%zu] %s %s x=%g trial=%d (%.2fs)\n",
                     finished, queue.size(), exps[s.exp]->name,
                     j.series.c_str(), j.x, j.trial,
                     wall_ms[s.exp][s.job] / 1e3);
      }
    }
  };
  if (workers <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (int t = 0; t < workers; ++t) pool.emplace_back(work);
    for (auto& th : pool) th.join();
  }

  // Deterministic single-threaded rendering, in experiment order.
  std::vector<ExperimentOutput> out(exps.size());
  for (size_t ei = 0; ei < exps.size(); ++ei) {
    const std::vector<Record> rows =
        plans[ei].emit ? plans[ei].emit(results[ei])
                       : defaultEmit(plans[ei].jobs, results[ei]);
    ExperimentOutput& o = out[ei];
    o.experiment = exps[ei];
    o.csv = renderCsv(*exps[ei], rows);
    o.json = renderJson(*exps[ei], opt, plans[ei].jobs, results[ei],
                        wall_ms[ei]);
    o.n_jobs = plans[ei].jobs.size();
    o.n_records = rows.size();
    for (double ms : wall_ms[ei]) o.job_wall_ms += ms;
  }
  return out;
}

ExperimentOutput runExperiment(const Experiment& e,
                               const workload::BenchOptions& opt,
                               const RunnerOptions& ropt) {
  return runExperiments({&e}, opt, ropt)[0];
}

}  // namespace natle::exp
