// Planning helpers for set-microbenchmark sweeps.
//
// SetSweep turns a grid of SetBenchConfig points into (config, seed, trial)
// jobs — one job per trial, seeded exactly as runSetBench's internal trial
// loop used to be — and aggregates the finished trials back into the same
// per-point statistics runSetBench(trials=N) computed inline.
#pragma once

#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "workload/setbench.hpp"

namespace natle::exp {

// Runs one single-trial simulation and packages it for the harness.
PointData runSetBenchPoint(const workload::SetBenchConfig& cfg);

class SetSweep {
 public:
  explicit SetSweep(int trials) : trials_(trials < 1 ? 1 : trials) {}

  // Standard bench-option mapping: 3 trials under --full (1 otherwise,
  // unless `trials_override` pins it) and trace/fault/watchdog propagation
  // into every planned config. `trials_override` < 1 means "derive from
  // opt.full".
  explicit SetSweep(const workload::BenchOptions& opt, int trials_override = 0);

  // Queue all trials of one data point onto the plan. `cfg.trials` is
  // ignored; this class owns trial expansion.
  void point(Plan& plan, std::string series, double x,
             const workload::SetBenchConfig& cfg);

  struct Agg {
    std::string series;
    double x = 0;
    workload::SetBenchResult r;  // trial-aggregated, as runSetBench returned
  };
  // Folds the runner's results (parallel to the plan this sweep filled) back
  // into per-point aggregates, in planning order.
  std::vector<Agg> aggregate(const std::vector<PointData>& results) const;

  int trials() const { return trials_; }

 private:
  struct Entry {
    std::string series;
    double x;
    size_t first_job;
  };
  std::vector<Entry> entries_;
  int trials_;
  bool trace_ = false;
  // CLI-level adversity, applied to every planned point that does not carry
  // its own (a point's explicit cfg.fault/cfg.watchdog_ms wins).
  fault::FaultSpec fault_;
  double watchdog_ms_ = 0;
  // CLI-level data placement, applied to points left at the default policy.
  mem::PlacePolicy placement_ = mem::PlacePolicy::kFirstTouch;
};

}  // namespace natle::exp
