#include "exp/sweep.hpp"

#include "htm/abort.hpp"
#include "workload/json.hpp"

namespace natle::exp {

PointData runSetBenchPoint(const workload::SetBenchConfig& cfg) {
  const workload::SetBenchResult r = workload::runSetBench(cfg);
  PointData p;
  p.value = r.mops;
  p.stats = r.stats;
  p.has_stats = true;
  if (r.has_attribution) p.attribution_json = r.attribution.toJson();
  return p;
}

void SetSweep::point(Plan& plan, std::string series, double x,
                     const workload::SetBenchConfig& cfg) {
  entries_.push_back({series, x, plan.jobs.size()});
  for (int t = 0; t < trials_; ++t) {
    workload::SetBenchConfig c = cfg;
    c.trials = 1;
    c.trace = trace_;
    // Same per-trial seed derivation runSetBench used internally, so a
    // sharded sweep reproduces the serial sweep's numbers exactly.
    c.seed = cfg.seed + 1000003ULL * static_cast<uint64_t>(t);
    Job j;
    j.series = series;
    j.x = x;
    j.trial = t;
    j.seed = c.seed;
    j.config_json = workload::toJson(c);
    j.run = [c] { return runSetBenchPoint(c); };
    j.dump_trace = [c]() mutable {
      c.trace = true;
      c.trace_raw = true;
      return workload::runSetBench(c).raw_trace;
    };
    plan.jobs.push_back(std::move(j));
  }
}

std::vector<SetSweep::Agg> SetSweep::aggregate(
    const std::vector<PointData>& results) const {
  std::vector<Agg> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    Agg a;
    a.series = e.series;
    a.x = e.x;
    double mops_sum = 0;
    for (int t = 0; t < trials_; ++t) {
      const PointData& p = results.at(e.first_job + static_cast<size_t>(t));
      mops_sum += p.value;
      a.r.stats += p.stats;
    }
    a.r.mops = mops_sum / trials_;
    // Derived ratios recomputed from the summed counters, mirroring
    // runSetBench's aggregation across its internal trial loop.
    const auto& s = a.r.stats;
    const uint64_t aborts = s.totalAborts();
    a.r.abort_rate = s.tx_begins > 0 ? static_cast<double>(aborts) /
                                           static_cast<double>(s.tx_begins)
                                     : 0;
    a.r.conflict_abort_fraction =
        aborts > 0
            ? static_cast<double>(
                  s.tx_aborts[static_cast<int>(htm::AbortReason::kConflict)]) /
                  static_cast<double>(aborts)
            : 0;
    a.r.hintclear_commit_pct =
        s.tx_commits > 0
            ? 100.0 * static_cast<double>(s.commits_after_hintclear_fail) /
                  static_cast<double>(s.tx_commits)
            : 0;
    out.push_back(std::move(a));
  }
  return out;
}

}  // namespace natle::exp
