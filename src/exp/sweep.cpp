#include "exp/sweep.hpp"

#include "htm/abort.hpp"
#include "workload/json.hpp"

namespace natle::exp {

PointData runSetBenchPoint(const workload::SetBenchConfig& cfg) {
  const workload::SetBenchResult r = workload::runSetBench(cfg);
  PointData p;
  p.value = r.mops;
  p.stats = r.stats;
  p.has_stats = true;
  if (r.has_attribution) {
    p.attribution_json = r.attribution.toJson();
    p.has_attribution = true;
    p.attribution = r.attribution;
  }
  return p;
}

SetSweep::SetSweep(const workload::BenchOptions& opt, int trials_override)
    : trials_(trials_override >= 1 ? trials_override : (opt.full ? 3 : 1)),
      trace_(opt.trace),
      watchdog_ms_(opt.watchdog_ms) {
  if (!opt.fault_spec.empty()) {
    // CLI entry points validate the spec before planning; a failure here
    // (impossible via the CLIs) just leaves faults disabled.
    fault::FaultSpec::parse(opt.fault_spec, &fault_, nullptr);
  }
  if (!opt.placement.empty()) {
    // Same contract: CLIs reject bad spellings up front, so an unparsable
    // name here simply keeps the default first-touch policy.
    mem::parsePlacePolicy(opt.placement, &placement_);
  }
}

void SetSweep::point(Plan& plan, std::string series, double x,
                     const workload::SetBenchConfig& cfg) {
  entries_.push_back({series, x, plan.jobs.size()});
  for (int t = 0; t < trials_; ++t) {
    workload::SetBenchConfig c = cfg;
    c.trials = 1;
    c.trace = trace_;
    if (!c.fault.enabled() && fault_.enabled()) c.fault = fault_;
    if (c.watchdog_ms <= 0 && watchdog_ms_ > 0) c.watchdog_ms = watchdog_ms_;
    if (c.placement == mem::PlacePolicy::kFirstTouch) c.placement = placement_;
    // Same per-trial seed derivation runSetBench used internally, so a
    // sharded sweep reproduces the serial sweep's numbers exactly.
    c.seed = cfg.seed + 1000003ULL * static_cast<uint64_t>(t);
    Job j;
    j.series = series;
    j.x = x;
    j.trial = t;
    j.seed = c.seed;
    j.config_json = workload::toJson(c);
    j.run = [c] { return runSetBenchPoint(c); };
    j.dump_trace = [c]() mutable {
      c.trace = true;
      c.trace_raw = true;
      return workload::runSetBench(c).raw_trace;
    };
    // Failures under injected adversity (or a tripped watchdog) are often
    // seed-specific; allow the runner's capped retry-with-reseed. The salt
    // shifts both the workload seed and the fault-stream seed.
    j.transient = true;
    j.run_reseeded = [c](int salt) {
      workload::SetBenchConfig rc = c;
      rc.seed = c.seed + 0x5bd1e995ULL * static_cast<uint64_t>(salt);
      if (rc.fault.enabled()) {
        rc.fault.seed += static_cast<uint64_t>(salt);
      }
      return runSetBenchPoint(rc);
    };
    plan.jobs.push_back(std::move(j));
  }
}

std::vector<SetSweep::Agg> SetSweep::aggregate(
    const std::vector<PointData>& results) const {
  std::vector<Agg> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    Agg a;
    a.series = e.series;
    a.x = e.x;
    double mops_sum = 0;
    int ok_trials = 0;
    for (int t = 0; t < trials_; ++t) {
      const PointData& p = results.at(e.first_job + static_cast<size_t>(t));
      // Failed or skipped trials contribute nothing; the point aggregates
      // whatever completed, and vanishes from the CSV if nothing did (its
      // failure is still a structured record in the JSON output).
      if (p.status != PointStatus::kOk) continue;
      mops_sum += p.value;
      a.r.stats += p.stats;
      if (p.has_attribution) {
        a.r.has_attribution = true;
        a.r.attribution += p.attribution;
      }
      ok_trials++;
    }
    if (ok_trials == 0) continue;
    a.r.mops = mops_sum / ok_trials;
    // Derived ratios recomputed from the summed counters, mirroring
    // runSetBench's aggregation across its internal trial loop.
    const auto& s = a.r.stats;
    const uint64_t aborts = s.totalAborts();
    a.r.abort_rate = s.tx_begins > 0 ? static_cast<double>(aborts) /
                                           static_cast<double>(s.tx_begins)
                                     : 0;
    a.r.conflict_abort_fraction =
        aborts > 0
            ? static_cast<double>(
                  s.tx_aborts[static_cast<int>(htm::AbortReason::kConflict)]) /
                  static_cast<double>(aborts)
            : 0;
    a.r.hintclear_commit_pct =
        s.tx_commits > 0
            ? 100.0 * static_cast<double>(s.commits_after_hintclear_fail) /
                  static_cast<double>(s.tx_commits)
            : 0;
    out.push_back(std::move(a));
  }
  return out;
}

}  // namespace natle::exp
