// Unbalanced internal binary search tree (keys in every node, no
// rebalancing). Complements the leaf-oriented BST: deletions of two-child
// nodes overwrite a key higher up the tree, giving it a conflict profile
// between the AVL tree and the external BST.
#pragma once

#include <cstdint>

#include "htm/env.hpp"

namespace natle::ds {

class InternalBst {
 public:
  struct Node {
    int64_t key;
    Node* left;
    Node* right;
  };

  explicit InternalBst(htm::Env& env) {
    root_ = static_cast<Node**>(env.allocShared(sizeof(Node*)));
    *root_ = nullptr;
  }

  bool contains(htm::ThreadCtx& c, int64_t k) const {
    Node* n = c.load(*root_);
    while (n != nullptr) {
      const int64_t nk = c.load(n->key);
      if (k == nk) return true;
      n = k < nk ? c.load(n->left) : c.load(n->right);
    }
    return false;
  }

  bool insert(htm::ThreadCtx& c, int64_t k) {
    Node* n = c.load(*root_);
    if (n == nullptr) {
      c.store(*root_, newNode(c, k));
      return true;
    }
    for (;;) {
      const int64_t nk = c.load(n->key);
      if (k == nk) return false;
      if (k < nk) {
        Node* l = c.load(n->left);
        if (l == nullptr) {
          c.store(n->left, newNode(c, k));
          return true;
        }
        n = l;
      } else {
        Node* r = c.load(n->right);
        if (r == nullptr) {
          c.store(n->right, newNode(c, k));
          return true;
        }
        n = r;
      }
    }
  }

  bool erase(htm::ThreadCtx& c, int64_t k) {
    Node* parent = nullptr;
    bool from_left = false;
    Node* n = c.load(*root_);
    while (n != nullptr) {
      const int64_t nk = c.load(n->key);
      if (k == nk) break;
      parent = n;
      from_left = k < nk;
      n = from_left ? c.load(n->left) : c.load(n->right);
    }
    if (n == nullptr) return false;
    Node* l = c.load(n->left);
    Node* r = c.load(n->right);
    if (l != nullptr && r != nullptr) {
      // Two children: overwrite with in-order successor's key, then unlink
      // the successor (which has no left child).
      Node* sp = n;
      Node* s = r;
      Node* sl = c.load(s->left);
      while (sl != nullptr) {
        sp = s;
        s = sl;
        sl = c.load(s->left);
      }
      c.store(n->key, c.load(s->key));
      Node* sr = c.load(s->right);
      if (sp == n) {
        c.store(sp->right, sr);
      } else {
        c.store(sp->left, sr);
      }
      c.free(s);
      return true;
    }
    Node* child = l != nullptr ? l : r;
    if (parent == nullptr) {
      c.store(*root_, child);
    } else if (from_left) {
      c.store(parent->left, child);
    } else {
      c.store(parent->right, child);
    }
    c.free(n);
    return true;
  }

  size_t size(htm::ThreadCtx& c) const { return count(c, c.load(*root_)); }

  bool validate(htm::ThreadCtx& c) const {
    bool ok = true;
    check(c, c.load(*root_), INT64_MIN, INT64_MAX, ok);
    return ok;
  }

 private:
  Node* newNode(htm::ThreadCtx& c, int64_t k) {
    Node* n = static_cast<Node*>(c.alloc(sizeof(Node)));
    c.store(n->key, k);
    c.store(n->left, static_cast<Node*>(nullptr));
    c.store(n->right, static_cast<Node*>(nullptr));
    return n;
  }

  size_t count(htm::ThreadCtx& c, Node* n) const {
    if (n == nullptr) return 0;
    return 1 + count(c, c.load(n->left)) + count(c, c.load(n->right));
  }

  void check(htm::ThreadCtx& c, Node* n, int64_t lo, int64_t hi,
             bool& ok) const {
    if (n == nullptr) return;
    const int64_t k = c.load(n->key);
    if (k <= lo || k >= hi) ok = false;
    check(c, c.load(n->left), lo, k, ok);
    check(c, c.load(n->right), k, hi, ok);
  }

  Node** root_;
};

}  // namespace natle::ds
