// Skip list set (Pugh 1990) with geometric tower heights — the third
// microbenchmark structure in the paper's Section 5.1. Like the AVL tree it
// has hot upper levels that updates occasionally modify, so its TLE behavior
// resembles the AVL tree's (Figure 13, right).
#pragma once

#include <cstdint>

#include "htm/env.hpp"

namespace natle::ds {

class SkipList {
 public:
  static constexpr int kMaxLevel = 16;

  struct Node {
    int64_t key;
    int64_t top_level;     // levels [0, top_level] are linked
    Node* next[kMaxLevel];
  };

  explicit SkipList(htm::Env& env) {
    head_ = static_cast<Node*>(env.allocShared(sizeof(Node)));
    head_->key = INT64_MIN;
    head_->top_level = kMaxLevel - 1;
    for (auto& n : head_->next) n = nullptr;
  }

  bool contains(htm::ThreadCtx& c, int64_t k) const {
    Node* pred = head_;
    for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
      Node* cur = c.load(pred->next[lvl]);
      while (cur != nullptr && c.load(cur->key) < k) {
        pred = cur;
        cur = c.load(pred->next[lvl]);
      }
      if (cur != nullptr && c.load(cur->key) == k) return true;
    }
    return false;
  }

  bool insert(htm::ThreadCtx& c, int64_t k) {
    Node* preds[kMaxLevel];
    Node* pred = head_;
    Node* found = nullptr;
    for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
      Node* cur = c.load(pred->next[lvl]);
      while (cur != nullptr && c.load(cur->key) < k) {
        pred = cur;
        cur = c.load(pred->next[lvl]);
      }
      if (cur != nullptr && c.load(cur->key) == k) found = cur;
      preds[lvl] = pred;
    }
    if (found != nullptr) return false;
    const int level = randomLevel(c);
    Node* n = static_cast<Node*>(c.alloc(sizeof(Node)));
    c.store(n->key, k);
    c.store(n->top_level, static_cast<int64_t>(level));
    for (int lvl = 0; lvl <= level; ++lvl) {
      c.store(n->next[lvl], c.load(preds[lvl]->next[lvl]));
      c.store(preds[lvl]->next[lvl], n);
    }
    return true;
  }

  bool erase(htm::ThreadCtx& c, int64_t k) {
    Node* preds[kMaxLevel];
    Node* pred = head_;
    Node* victim = nullptr;
    for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
      Node* cur = c.load(pred->next[lvl]);
      while (cur != nullptr && c.load(cur->key) < k) {
        pred = cur;
        cur = c.load(pred->next[lvl]);
      }
      if (cur != nullptr && c.load(cur->key) == k) victim = cur;
      preds[lvl] = pred;
    }
    if (victim == nullptr) return false;
    const int level = static_cast<int>(c.load(victim->top_level));
    // An out-of-range level would index past next[] below; the guard makes
    // it a hard stop (see ThreadCtx::requireConsistent).
    c.requireConsistent(level >= 0 && level < kMaxLevel);
    for (int lvl = 0; lvl <= level; ++lvl) {
      if (c.load(preds[lvl]->next[lvl]) == victim) {
        c.store(preds[lvl]->next[lvl], c.load(victim->next[lvl]));
      }
    }
    c.free(victim);
    return true;
  }

  size_t size(htm::ThreadCtx& c) const {
    size_t n = 0;
    Node* cur = c.load(head_->next[0]);
    while (cur != nullptr) {
      ++n;
      cur = c.load(cur->next[0]);
    }
    return n;
  }

  // Test support: bottom level sorted; every tower member linked at all its
  // levels consistently.
  bool validate(htm::ThreadCtx& c) const {
    int64_t prev = INT64_MIN;
    Node* cur = c.load(head_->next[0]);
    while (cur != nullptr) {
      const int64_t k = c.load(cur->key);
      if (k <= prev) return false;
      prev = k;
      cur = c.load(cur->next[0]);
    }
    for (int lvl = 1; lvl < kMaxLevel; ++lvl) {
      int64_t p = INT64_MIN;
      Node* x = c.load(head_->next[lvl]);
      while (x != nullptr) {
        const int64_t k = c.load(x->key);
        if (k <= p || c.load(x->top_level) < lvl) return false;
        p = k;
        x = c.load(x->next[lvl]);
      }
    }
    return true;
  }

 private:
  int randomLevel(htm::ThreadCtx& c) {
    int level = 0;
    while (level < kMaxLevel - 1 && (c.rng().next() & 1) != 0) ++level;
    return level;
  }

  Node* head_;
};

}  // namespace natle::ds
