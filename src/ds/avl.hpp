// AVL tree (Adelson-Velsky & Landis 1962) — the paper's primary
// microbenchmark structure. A single coarse lock (elided via TLE/NATLE)
// protects every operation; the tree itself is sequential code whose shared
// accesses go through the ThreadCtx.
//
// Heights are only written when they actually change, as in a careful
// implementation: after warm-up most updates therefore touch just a few
// lines near a leaf, while occasional rotations near the root conflict with
// everything — exactly the conflict profile the paper describes.
#pragma once

#include <cstdint>

#include "htm/env.hpp"

namespace natle::ds {

class AvlTree {
 public:
  struct Node {
    int64_t key;
    Node* left;
    Node* right;
    int64_t height;
  };

  explicit AvlTree(htm::Env& env) {
    root_ = static_cast<Node**>(env.allocShared(sizeof(Node*)));
    *root_ = nullptr;
  }

  bool contains(htm::ThreadCtx& c, int64_t k) const {
    Node* n = c.load(*root_);
    while (n != nullptr) {
      const int64_t nk = c.load(n->key);
      if (k == nk) return true;
      n = k < nk ? c.load(n->left) : c.load(n->right);
    }
    return false;
  }

  bool insert(htm::ThreadCtx& c, int64_t k) {
    bool inserted = false;
    bool grew = false;
    Node* r = c.load(*root_);
    Node* nr = insertRec(c, r, k, inserted, grew);
    if (nr != r) c.store(*root_, nr);
    return inserted;
  }

  bool erase(htm::ThreadCtx& c, int64_t k) {
    bool erased = false;
    bool shrunk = false;
    Node* r = c.load(*root_);
    Node* nr = eraseRec(c, r, k, erased, shrunk);
    if (nr != r) c.store(*root_, nr);
    return erased;
  }

  // Figure 4's search-and-replace: walk toward `k` and rewrite the key field
  // of the last node visited with the value it already holds. Semantically a
  // no-op, but the store still acquires line ownership — the experiment that
  // isolates coherence cost from synchronization cost.
  void searchReplace(htm::ThreadCtx& c, int64_t k) {
    Node* n = c.load(*root_);
    Node* last = nullptr;
    int64_t last_key = 0;
    while (n != nullptr) {
      last = n;
      last_key = c.load(n->key);
      if (k == last_key) break;
      n = k < last_key ? c.load(n->left) : c.load(n->right);
    }
    if (last != nullptr) c.store(last->key, last_key);
  }

  size_t size(htm::ThreadCtx& c) const { return count(c, c.load(*root_)); }

  // Raw (uninstrumented) root, for debug auditing when no transaction is in
  // flight. Never use from simulated code.
  Node* rawRoot() const { return *root_; }
  Node* const& rawRootRef() const { return *root_; }

  // Test support: checks BST order and the AVL balance invariant.
  bool validate(htm::ThreadCtx& c) const {
    bool ok = true;
    check(c, c.load(*root_), INT64_MIN, INT64_MAX, ok);
    return ok;
  }

 private:
  Node* newNode(htm::ThreadCtx& c, int64_t k) {
    Node* n = static_cast<Node*>(c.alloc(sizeof(Node)));
    c.store(n->key, k);
    c.store(n->left, static_cast<Node*>(nullptr));
    c.store(n->right, static_cast<Node*>(nullptr));
    c.store(n->height, int64_t{1});
    return n;
  }

  int64_t heightOf(htm::ThreadCtx& c, Node* n) const {
    return n == nullptr ? 0 : c.load(n->height);
  }

  void updateHeight(htm::ThreadCtx& c, Node* n) {
    const int64_t hl = heightOf(c, c.load(n->left));
    const int64_t hr = heightOf(c, c.load(n->right));
    const int64_t h = (hl > hr ? hl : hr) + 1;
    if (c.load(n->height) != h) c.store(n->height, h);
  }

  // Rotations and rebalance dereference children that the balance invariant
  // guarantees exist. The guards make a violated invariant a hard stop (and
  // drain a pending abort first) instead of undefined behavior — see
  // ThreadCtx::requireConsistent.
  Node* rotateRight(htm::ThreadCtx& c, Node* y) {
    Node* x = c.load(y->left);
    c.requireConsistent(x != nullptr);
    Node* t2 = c.load(x->right);
    c.store(x->right, y);
    c.store(y->left, t2);
    updateHeight(c, y);
    updateHeight(c, x);
    return x;
  }

  Node* rotateLeft(htm::ThreadCtx& c, Node* x) {
    Node* y = c.load(x->right);
    c.requireConsistent(y != nullptr);
    Node* t2 = c.load(y->left);
    c.store(y->left, x);
    c.store(x->right, t2);
    updateHeight(c, x);
    updateHeight(c, y);
    return y;
  }

  Node* rebalance(htm::ThreadCtx& c, Node* n) {
    updateHeight(c, n);
    const int64_t bal =
        heightOf(c, c.load(n->left)) - heightOf(c, c.load(n->right));
    if (bal > 1) {
      Node* l = c.load(n->left);
      c.requireConsistent(l != nullptr);
      if (heightOf(c, c.load(l->left)) < heightOf(c, c.load(l->right))) {
        c.store(n->left, rotateLeft(c, l));
      }
      return rotateRight(c, n);
    }
    if (bal < -1) {
      Node* r = c.load(n->right);
      c.requireConsistent(r != nullptr);
      if (heightOf(c, c.load(r->right)) < heightOf(c, c.load(r->left))) {
        c.store(n->right, rotateRight(c, r));
      }
      return rotateLeft(c, n);
    }
    return n;
  }

  // Insert with height-change propagation: once a child subtree's height is
  // unchanged, no ancestor needs to read its sibling or write anything — the
  // classic implementation whose updates "modify only a few nodes at the
  // bottom of the tree" (the paper's premise). `grew` reports whether the
  // height of the subtree rooted here increased.
  Node* insertRec(htm::ThreadCtx& c, Node* n, int64_t k, bool& inserted,
                  bool& grew) {
    if (n == nullptr) {
      inserted = true;
      grew = true;
      return newNode(c, k);
    }
    const int64_t nk = c.load(n->key);
    if (k == nk) {
      inserted = false;
      grew = false;
      return n;
    }
    bool child_grew = false;
    if (k < nk) {
      Node* l = c.load(n->left);
      Node* nl = insertRec(c, l, k, inserted, child_grew);
      if (nl != l) c.store(n->left, nl);
    } else {
      Node* r = c.load(n->right);
      Node* nr = insertRec(c, r, k, inserted, child_grew);
      if (nr != r) c.store(n->right, nr);
    }
    if (!child_grew) {
      grew = false;
      return n;
    }
    const int64_t old_h = c.load(n->height);
    Node* nn = rebalance(c, n);
    grew = c.load(nn->height) > old_h;
    return nn;
  }

  Node* eraseRec(htm::ThreadCtx& c, Node* n, int64_t k, bool& erased,
                 bool& shrunk) {
    if (n == nullptr) {
      erased = false;
      shrunk = false;
      return nullptr;
    }
    const int64_t nk = c.load(n->key);
    bool child_shrunk = false;
    if (k < nk) {
      Node* l = c.load(n->left);
      Node* nl = eraseRec(c, l, k, erased, child_shrunk);
      if (nl != l) c.store(n->left, nl);
    } else if (k > nk) {
      Node* r = c.load(n->right);
      Node* nr = eraseRec(c, r, k, erased, child_shrunk);
      if (nr != r) c.store(n->right, nr);
    } else {
      erased = true;
      Node* l = c.load(n->left);
      Node* r = c.load(n->right);
      if (l == nullptr || r == nullptr) {
        Node* child = l != nullptr ? l : r;
        c.free(n);
        shrunk = true;
        return child;
      }
      // Two children: pull up the in-order successor's key, then remove the
      // successor node from the right subtree.
      Node* s = r;
      Node* sl = c.load(s->left);
      while (sl != nullptr) {
        s = sl;
        sl = c.load(s->left);
      }
      const int64_t sk = c.load(s->key);
      c.store(n->key, sk);
      bool e2 = false;
      Node* nr = eraseRec(c, r, sk, e2, child_shrunk);
      if (nr != r) c.store(n->right, nr);
    }
    if (!erased || !child_shrunk) {
      shrunk = false;
      return n;
    }
    const int64_t old_h = c.load(n->height);
    Node* nn = rebalance(c, n);
    shrunk = c.load(nn->height) < old_h;
    return nn;
  }

  size_t count(htm::ThreadCtx& c, Node* n) const {
    if (n == nullptr) return 0;
    return 1 + count(c, c.load(n->left)) + count(c, c.load(n->right));
  }

  int64_t check(htm::ThreadCtx& c, Node* n, int64_t lo, int64_t hi,
                bool& ok) const {
    if (n == nullptr) return 0;
    const int64_t k = c.load(n->key);
    if (k <= lo || k >= hi) ok = false;
    const int64_t hl = check(c, c.load(n->left), lo, k, ok);
    const int64_t hr = check(c, c.load(n->right), k, hi, ok);
    const int64_t bal = hl - hr;
    if (bal < -1 || bal > 1) ok = false;
    const int64_t h = (hl > hr ? hl : hr) + 1;
    if (h != c.load(n->height)) ok = false;
    return h;
  }

  Node** root_;
};

}  // namespace natle::ds
