// Separate-chaining hash map, the synchronization skeleton of ccTSA (one
// lock-protected map) and a building block of the STAMP kernels (vacation's
// reservation tables, genome's segment table, intruder's flow map).
#pragma once

#include <cstdint>

#include "htm/env.hpp"

namespace natle::ds {

class HashMap {
 public:
  struct Node {
    int64_t key;
    int64_t value;
    Node* next;
  };

  // track_size=false avoids a shared size counter that would otherwise make
  // every mutating transaction conflict on one line (used by kernels whose
  // real counterpart keeps no global count).
  HashMap(htm::Env& env, size_t buckets, bool track_size = true)
      : nbuckets_(roundPow2(buckets)), track_size_(track_size) {
    buckets_ = static_cast<Node**>(
        env.allocShared(nbuckets_ * sizeof(Node*)));
    for (size_t i = 0; i < nbuckets_; ++i) buckets_[i] = nullptr;
    size_ = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
    *size_ = 0;
  }

  bool contains(htm::ThreadCtx& c, int64_t k) const {
    Node* n = c.load(buckets_[slot(k)]);
    while (n != nullptr) {
      if (c.load(n->key) == k) return true;
      n = c.load(n->next);
    }
    return false;
  }

  // Returns true and fills out if present.
  bool get(htm::ThreadCtx& c, int64_t k, int64_t& out) const {
    Node* n = c.load(buckets_[slot(k)]);
    while (n != nullptr) {
      if (c.load(n->key) == k) {
        out = c.load(n->value);
        return true;
      }
      n = c.load(n->next);
    }
    return false;
  }

  // Insert k->v if absent; returns true if inserted.
  bool insert(htm::ThreadCtx& c, int64_t k, int64_t v) {
    Node*& head = buckets_[slot(k)];
    Node* n = c.load(head);
    while (n != nullptr) {
      if (c.load(n->key) == k) return false;
      n = c.load(n->next);
    }
    Node* nn = static_cast<Node*>(c.alloc(sizeof(Node)));
    c.store(nn->key, k);
    c.store(nn->value, v);
    c.store(nn->next, c.load(head));
    c.store(head, nn);
    if (track_size_) c.store(*size_, c.load(*size_) + 1);
    return true;
  }

  // Insert k->v or add v to the existing value; returns the new value.
  // (ccTSA-style accumulate: count k-mer occurrences.)
  int64_t upsertAdd(htm::ThreadCtx& c, int64_t k, int64_t v) {
    Node*& head = buckets_[slot(k)];
    Node* n = c.load(head);
    while (n != nullptr) {
      if (c.load(n->key) == k) {
        const int64_t nv = c.load(n->value) + v;
        c.store(n->value, nv);
        return nv;
      }
      n = c.load(n->next);
    }
    Node* nn = static_cast<Node*>(c.alloc(sizeof(Node)));
    c.store(nn->key, k);
    c.store(nn->value, v);
    c.store(nn->next, c.load(head));
    c.store(head, nn);
    if (track_size_) c.store(*size_, c.load(*size_) + 1);
    return v;
  }

  bool erase(htm::ThreadCtx& c, int64_t k) {
    Node*& head = buckets_[slot(k)];
    Node* prev = nullptr;
    Node* n = c.load(head);
    while (n != nullptr) {
      if (c.load(n->key) == k) {
        Node* nx = c.load(n->next);
        if (prev == nullptr) {
          c.store(head, nx);
        } else {
          c.store(prev->next, nx);
        }
        c.free(n);
        if (track_size_) c.store(*size_, c.load(*size_) - 1);
        return true;
      }
      prev = n;
      n = c.load(n->next);
    }
    return false;
  }

  int64_t size(htm::ThreadCtx& c) const { return c.load(*size_); }
  size_t bucketCount() const { return nbuckets_; }

 private:
  static size_t roundPow2(size_t x) {
    size_t p = 1;
    while (p < x) p <<= 1;
    return p;
  }

  size_t slot(int64_t k) const {
    uint64_t h = static_cast<uint64_t>(k) * 0x9e3779b97f4a7c15ULL;
    return (h >> 17) & (nbuckets_ - 1);
  }

  size_t nbuckets_;
  bool track_size_;
  Node** buckets_;
  int64_t* size_;
};

}  // namespace natle::ds
