// Unbalanced leaf-oriented (external) binary search tree.
//
// Keys live only in leaves; internal nodes are routers. Inserts replace a
// leaf with a router over two leaves; deletes splice the leaf's parent out.
// Updates therefore modify only nodes at the very bottom of the tree, so the
// tree's upper levels stay cached on every socket — the structural property
// behind the paper's Figure 7 ("NUMA effects will be less significant for
// unbalanced leaf-oriented trees").
#pragma once

#include <cstdint>

#include "htm/env.hpp"

namespace natle::ds {

class LeafBst {
 public:
  struct Node {
    int64_t key;
    Node* left;   // nullptr in leaves
    Node* right;  // nullptr in leaves
  };

  explicit LeafBst(htm::Env& env) {
    root_ = static_cast<Node**>(env.allocShared(sizeof(Node*)));
    *root_ = nullptr;
  }

  bool contains(htm::ThreadCtx& c, int64_t k) const {
    Node* n = c.load(*root_);
    if (n == nullptr) return false;
    Node* l = c.load(n->left);
    while (l != nullptr) {  // descend while internal
      // An internal node always has two children; the guard turns a
      // violation into a hard stop (see ThreadCtx::requireConsistent).
      n = k < c.load(n->key) ? l : c.load(n->right);
      c.requireConsistent(n != nullptr);
      l = c.load(n->left);
    }
    return c.load(n->key) == k;
  }

  bool insert(htm::ThreadCtx& c, int64_t k) {
    Node* n = c.load(*root_);
    if (n == nullptr) {
      c.store(*root_, newLeaf(c, k));
      return true;
    }
    Node* parent = nullptr;
    bool went_left = false;
    Node* l = c.load(n->left);
    while (l != nullptr) {
      parent = n;
      went_left = k < c.load(n->key);
      n = went_left ? l : c.load(n->right);
      c.requireConsistent(n != nullptr);
      l = c.load(n->left);
    }
    const int64_t leaf_key = c.load(n->key);
    if (leaf_key == k) return false;
    // Replace leaf n with router(two leaves). Router key = larger of the two,
    // routing strictly-less keys left.
    Node* nl = newLeaf(c, k);
    Node* router = static_cast<Node*>(c.alloc(sizeof(Node)));
    if (k < leaf_key) {
      c.store(router->key, leaf_key);
      c.store(router->left, nl);
      c.store(router->right, n);
    } else {
      c.store(router->key, k);
      c.store(router->left, n);
      c.store(router->right, nl);
    }
    if (parent == nullptr) {
      c.store(*root_, router);
    } else if (went_left) {
      c.store(parent->left, router);
    } else {
      c.store(parent->right, router);
    }
    return true;
  }

  bool erase(htm::ThreadCtx& c, int64_t k) {
    Node* n = c.load(*root_);
    if (n == nullptr) return false;
    Node* grand = nullptr;
    bool grand_left = false;
    Node* parent = nullptr;
    bool parent_left = false;
    Node* l = c.load(n->left);
    while (l != nullptr) {
      grand = parent;
      grand_left = parent_left;
      parent = n;
      parent_left = k < c.load(n->key);
      n = parent_left ? l : c.load(n->right);
      c.requireConsistent(n != nullptr);
      l = c.load(n->left);
    }
    if (c.load(n->key) != k) return false;
    if (parent == nullptr) {
      c.store(*root_, static_cast<Node*>(nullptr));
    } else {
      Node* sibling =
          parent_left ? c.load(parent->right) : c.load(parent->left);
      if (grand == nullptr) {
        c.store(*root_, sibling);
      } else if (grand_left) {
        c.store(grand->left, sibling);
      } else {
        c.store(grand->right, sibling);
      }
      c.free(parent);
    }
    c.free(n);
    return true;
  }

  size_t size(htm::ThreadCtx& c) const { return countLeaves(c, c.load(*root_)); }

  // Test support: every leaf reachable obeys routing; returns validity.
  bool validate(htm::ThreadCtx& c) const {
    bool ok = true;
    check(c, c.load(*root_), INT64_MIN, INT64_MAX, ok);
    return ok;
  }

 private:
  Node* newLeaf(htm::ThreadCtx& c, int64_t k) {
    Node* n = static_cast<Node*>(c.alloc(sizeof(Node)));
    c.store(n->key, k);
    c.store(n->left, static_cast<Node*>(nullptr));
    c.store(n->right, static_cast<Node*>(nullptr));
    return n;
  }

  size_t countLeaves(htm::ThreadCtx& c, Node* n) const {
    if (n == nullptr) return 0;
    Node* l = c.load(n->left);
    if (l == nullptr) return 1;
    return countLeaves(c, l) + countLeaves(c, c.load(n->right));
  }

  void check(htm::ThreadCtx& c, Node* n, int64_t lo, int64_t hi,
             bool& ok) const {
    if (n == nullptr) return;
    const int64_t k = c.load(n->key);
    Node* l = c.load(n->left);
    if (l == nullptr) {
      if (k < lo || k >= hi) ok = false;  // leaves: lo <= key < hi
      return;
    }
    // Router: left subtree keys < k, right subtree keys >= k... our routers
    // hold the max of the split point, routing strictly-less left.
    check(c, l, lo, k, ok);
    check(c, c.load(n->right), k, hi, ok);
  }

  Node** root_;
};

}  // namespace natle::ds
