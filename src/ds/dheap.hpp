// Array-based binary min-heap — the lock-protected heap at the center of
// paraheap-k (Jenne et al., "Studying the Milky Way galaxy using
// paraheap-k"): worker threads push (distance, point) pairs and the
// consumers pop minima.
#pragma once

#include <cstdint>

#include "htm/env.hpp"

namespace natle::ds {

class DHeap {
 public:
  DHeap(htm::Env& env, size_t capacity) : capacity_(capacity) {
    slots_ = static_cast<int64_t*>(
        env.allocShared(capacity * 2 * sizeof(int64_t)));
    count_ = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
    *count_ = 0;
  }

  bool push(htm::ThreadCtx& c, int64_t prio, int64_t payload) {
    int64_t n = c.load(*count_);
    if (n >= static_cast<int64_t>(capacity_)) return false;
    setPrio(c, n, prio);
    setPayload(c, n, payload);
    c.store(*count_, n + 1);
    // Sift up.
    int64_t i = n;
    while (i > 0) {
      const int64_t parent = (i - 1) / 2;
      if (getPrio(c, parent) <= getPrio(c, i)) break;
      swap(c, parent, i);
      i = parent;
    }
    return true;
  }

  // Pops the minimum; returns false when empty.
  bool pop(htm::ThreadCtx& c, int64_t& prio, int64_t& payload) {
    int64_t n = c.load(*count_);
    if (n == 0) return false;
    prio = getPrio(c, 0);
    payload = getPayload(c, 0);
    --n;
    if (n > 0) {
      setPrio(c, 0, getPrio(c, n));
      setPayload(c, 0, getPayload(c, n));
    }
    c.store(*count_, n);
    // Sift down.
    int64_t i = 0;
    for (;;) {
      const int64_t l = 2 * i + 1;
      const int64_t r = 2 * i + 2;
      int64_t m = i;
      if (l < n && getPrio(c, l) < getPrio(c, m)) m = l;
      if (r < n && getPrio(c, r) < getPrio(c, m)) m = r;
      if (m == i) break;
      swap(c, m, i);
      i = m;
    }
    return true;
  }

  int64_t size(htm::ThreadCtx& c) const { return c.load(*count_); }
  size_t capacity() const { return capacity_; }

  // Test support: parent <= children for all nodes.
  bool validate(htm::ThreadCtx& c) const {
    const int64_t n = c.load(*count_);
    for (int64_t i = 1; i < n; ++i) {
      if (getPrio(c, (i - 1) / 2) > getPrio(c, i)) return false;
    }
    return true;
  }

 private:
  int64_t getPrio(htm::ThreadCtx& c, int64_t i) const {
    return c.load(slots_[2 * i]);
  }
  int64_t getPayload(htm::ThreadCtx& c, int64_t i) const {
    return c.load(slots_[2 * i + 1]);
  }
  void setPrio(htm::ThreadCtx& c, int64_t i, int64_t v) {
    c.store(slots_[2 * i], v);
  }
  void setPayload(htm::ThreadCtx& c, int64_t i, int64_t v) {
    c.store(slots_[2 * i + 1], v);
  }
  void swap(htm::ThreadCtx& c, int64_t i, int64_t j) {
    const int64_t pi = getPrio(c, i);
    const int64_t vi = getPayload(c, i);
    setPrio(c, i, getPrio(c, j));
    setPayload(c, i, getPayload(c, j));
    setPrio(c, j, pi);
    setPayload(c, j, vi);
  }

  size_t capacity_;
  int64_t* slots_;
  int64_t* count_;
};

}  // namespace natle::ds
