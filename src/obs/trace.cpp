#include "obs/trace.hpp"

#include <algorithm>

#include "workload/json.hpp"

namespace natle::obs {

const char* toString(EventKind k) {
  switch (k) {
    case EventKind::kTxBegin: return "tx_begin";
    case EventKind::kTxCommit: return "tx_commit";
    case EventKind::kTxAbort: return "tx_abort";
    case EventKind::kLockFallback: return "lock_fallback";
    case EventKind::kCapacityEvict: return "capacity_evict";
  }
  return "?";
}

void Tracer::record(TraceEvent e) {
  e.seq = n_events_++;
  attribution_.consume(e);
  if (!keep_events_) return;
  const size_t idx = e.tid >= 0 ? static_cast<size_t>(e.tid) : 0;
  if (bufs_.size() <= idx) bufs_.resize(idx + 1);
  ThreadBuf& b = bufs_[idx];
  if (ring_capacity_ > 0 && b.events.size() >= ring_capacity_) {
    b.events[b.head] = e;
    b.head = (b.head + 1) % ring_capacity_;
    n_dropped_++;
  } else {
    b.events.push_back(e);
  }
}

void appendJson(std::string& out, const TraceEvent& e) {
  workload::JsonWriter w;
  w.beginObject();
  w.key("t").value(e.clock);
  w.key("seq").value(e.seq);
  w.key("kind").value(toString(e.kind));
  w.key("tid").value(static_cast<int64_t>(e.tid));
  w.key("socket").value(static_cast<int64_t>(e.socket));
  // Class tags only when tagged: untagged (single-class) runs keep their
  // pre-traffic byte layout.
  if (e.cls >= 0) w.key("cls").value(static_cast<int64_t>(e.cls));
  switch (e.kind) {
    case EventKind::kTxBegin:
      w.key("attempt").value(static_cast<uint64_t>(e.attempt));
      break;
    case EventKind::kTxCommit:
    case EventKind::kLockFallback:
      break;
    case EventKind::kTxAbort:
      w.key("reason").value(htm::toString(e.reason));
      w.key("may_retry").value(e.may_retry);
      w.key("killer_tid").value(static_cast<int64_t>(e.killer_tid));
      w.key("killer_socket").value(static_cast<int64_t>(e.killer_socket));
      if (e.killer_cls >= 0) {
        w.key("killer_cls").value(static_cast<int64_t>(e.killer_cls));
      }
      w.key("line").value(e.line);
      w.key("attempt").value(static_cast<uint64_t>(e.attempt));
      break;
    case EventKind::kCapacityEvict:
      w.key("victim_tid").value(static_cast<int64_t>(e.killer_tid));
      if (e.killer_cls >= 0) {
        w.key("victim_cls").value(static_cast<int64_t>(e.killer_cls));
      }
      w.key("line").value(e.line);
      w.key("set").value(static_cast<uint64_t>(e.set));
      w.key("way").value(static_cast<uint64_t>(e.way));
      break;
  }
  w.endObject();
  out += w.str();
}

std::string Tracer::dumpJsonl() const {
  // Unwind each thread's ring into chronological order, then merge all
  // threads back into global emission order by seq.
  std::vector<const TraceEvent*> merged;
  merged.reserve(static_cast<size_t>(n_events_ - n_dropped_));
  for (const ThreadBuf& b : bufs_) {
    for (size_t i = 0; i < b.events.size(); ++i) {
      merged.push_back(&b.events[(b.head + i) % b.events.size()]);
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              return a->seq < b->seq;
            });
  std::string out;
  out.reserve(merged.size() * 96);
  for (const TraceEvent* e : merged) {
    appendJson(out, *e);
    out += '\n';
  }
  return out;
}

}  // namespace natle::obs
