// Streaming aggregation of the trace event stream into the paper-grade
// attribution summaries: a killer→victim conflict matrix at socket
// granularity (the cross- vs intra-socket abort split is the paper's core
// NUMA-amplification claim, Figs. 2/5), a per-line conflict heatmap, and
// fallback/lemming episode statistics.
//
// Everything here is mergeable (operator+=) so multi-trial sweeps can sum
// attribution the same way they sum TxStats, and the JSON rendering is
// deterministic: maps iterate in key order and top-K ties break toward the
// lower line id.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "htm/abort.hpp"

namespace natle::obs {

struct TraceEvent;

class Attribution {
 public:
  // Consume one event (called by Tracer::record, in emission order).
  void consume(const TraceEvent& e);

  Attribution& operator+=(const Attribution& o);

  // --- counters -----------------------------------------------------------
  uint64_t txBegins() const { return tx_begins_; }
  uint64_t txCommits() const { return tx_commits_; }
  uint64_t txAborts() const { return tx_aborts_total_; }
  uint64_t abortsByReason(htm::AbortReason r) const {
    return aborts_by_reason_[static_cast<int>(r)];
  }
  uint64_t capacityEvictions() const { return capacity_evictions_; }
  uint64_t lockFallbacks() const { return lock_fallbacks_; }
  // Maximal runs of >= 2 fallbacks each within kEpisodeGapCycles of the
  // previous one: the lemming-effect signature (a convoy on the lock).
  uint64_t fallbackEpisodes() const { return fallback_episodes_; }
  uint64_t longestFallbackEpisode() const { return longest_episode_; }

  // --- killer → victim matrix ---------------------------------------------
  // matrix()[killer_socket][victim_socket] counts aborts whose killer is
  // known; killer -1 (self-inflicted or hardware-internal: self-capacity,
  // explicit, spurious) is accumulated in selfOrUnknownAborts().
  const std::vector<std::vector<uint64_t>>& matrix() const { return matrix_; }
  uint64_t crossSocketAborts() const { return cross_socket_aborts_; }
  uint64_t intraSocketAborts() const { return intra_socket_aborts_; }
  uint64_t selfOrUnknownAborts() const { return self_or_unknown_aborts_; }

  // --- hop-distance histogram ----------------------------------------------
  // Install the machine's socket distance matrix (row-major hops, sockets^2
  // entries) so attributed aborts are additionally bucketed by the hop
  // distance between killer and victim socket. A trivial topology (every
  // pair <= 1 hop) is a no-op: the binary cross/intra split already carries
  // the full story there and the JSON layout stays unchanged.
  void setTopology(int sockets, std::vector<uint8_t> hops);
  // abortsByHops()[h] counts killer-known aborts at hop distance h
  // (0 = same socket). Empty unless a non-trivial topology is installed.
  const std::vector<uint64_t>& abortsByHops() const { return aborts_by_hops_; }

  // --- per-class blame (multi-tenant traffic) -------------------------------
  // Class-tagged events (src/traffic stamps every request with its tenant
  // class) additionally aggregate a victim-class histogram and a
  // killer-class → victim-class matrix. Untagged runs collect nothing and
  // the JSON layout is unchanged.
  void setClassNames(std::vector<std::string> names) {
    class_names_ = std::move(names);
  }
  // Aborts whose victim carried a class tag, by victim class id.
  const std::map<int, uint64_t>& victimAbortsByClass() const {
    return victim_aborts_by_class_;
  }
  // (killer class, victim class) → aborts; killer -1 = self-inflicted,
  // hardware-internal, or an untagged killer.
  const std::map<std::pair<int, int>, uint64_t>& classMatrix() const {
    return class_matrix_;
  }

  // --- per-line heatmap ----------------------------------------------------
  // Aborts attributed to each (stable) line id, and the top-K hottest lines
  // (count desc, line id asc on ties).
  const std::map<uint64_t, uint64_t>& lineAborts() const { return line_aborts_; }
  std::vector<std::pair<uint64_t, uint64_t>> hotLines(size_t k) const;

  // Deterministic JSON object (single line, no trailing newline).
  std::string toJson(size_t top_k = 8) const;

  // Gap between consecutive fallbacks that still counts as one episode.
  static constexpr uint64_t kEpisodeGapCycles = 50000;

 private:
  void growMatrix(int socket);
  void countAbort(int killer_socket, int victim_socket);

  uint64_t tx_begins_ = 0;
  uint64_t tx_commits_ = 0;
  uint64_t tx_aborts_total_ = 0;
  uint64_t aborts_by_reason_[htm::kAbortReasonCount] = {};
  uint64_t capacity_evictions_ = 0;

  std::vector<std::vector<uint64_t>> matrix_;  // grown to max socket seen + 1
  uint64_t cross_socket_aborts_ = 0;
  uint64_t intra_socket_aborts_ = 0;
  uint64_t self_or_unknown_aborts_ = 0;

  int topo_sockets_ = 0;        // 0 = no (or trivial) topology installed
  std::vector<uint8_t> hops_;   // row-major, topo_sockets_^2 when installed
  std::vector<uint64_t> aborts_by_hops_;

  std::map<uint64_t, uint64_t> line_aborts_;

  std::vector<std::string> class_names_;
  std::map<int, uint64_t> victim_aborts_by_class_;
  std::map<std::pair<int, int>, uint64_t> class_matrix_;

  uint64_t lock_fallbacks_ = 0;
  uint64_t fallback_episodes_ = 0;
  uint64_t longest_episode_ = 0;
  uint64_t last_fallback_clock_ = 0;
  uint64_t current_episode_len_ = 0;
};

}  // namespace natle::obs
