#include "obs/attribution.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "workload/json.hpp"

namespace natle::obs {

void Attribution::growMatrix(int socket) {
  const size_t need = static_cast<size_t>(socket) + 1;
  if (matrix_.size() < need) {
    for (auto& row : matrix_) row.resize(need, 0);
    while (matrix_.size() < need) {
      matrix_.emplace_back(need, 0);
    }
  }
}

void Attribution::setTopology(int sockets, std::vector<uint8_t> hops) {
  if (sockets < 1 || hops.size() != static_cast<size_t>(sockets) * sockets) {
    return;
  }
  uint8_t max_hop = 0;
  for (uint8_t h : hops) max_hop = std::max(max_hop, h);
  // All pairs adjacent: the cross/intra split is already the whole story.
  if (max_hop <= 1) return;
  topo_sockets_ = sockets;
  hops_ = std::move(hops);
  aborts_by_hops_.assign(static_cast<size_t>(max_hop) + 1, 0);
}

void Attribution::countAbort(int killer_socket, int victim_socket) {
  if (killer_socket < 0 || victim_socket < 0) {
    self_or_unknown_aborts_++;
    return;
  }
  growMatrix(std::max(killer_socket, victim_socket));
  matrix_[static_cast<size_t>(killer_socket)][static_cast<size_t>(victim_socket)]++;
  if (killer_socket == victim_socket) {
    intra_socket_aborts_++;
  } else {
    cross_socket_aborts_++;
  }
  if (topo_sockets_ > 0 && killer_socket < topo_sockets_ &&
      victim_socket < topo_sockets_) {
    const uint8_t h =
        killer_socket == victim_socket
            ? 0
            : hops_[static_cast<size_t>(killer_socket) * topo_sockets_ +
                    victim_socket];
    if (h < aborts_by_hops_.size()) aborts_by_hops_[h]++;
  }
}

void Attribution::consume(const TraceEvent& e) {
  switch (e.kind) {
    case EventKind::kTxBegin:
      tx_begins_++;
      break;
    case EventKind::kTxCommit:
      tx_commits_++;
      break;
    case EventKind::kTxAbort:
      tx_aborts_total_++;
      aborts_by_reason_[static_cast<int>(e.reason)]++;
      countAbort(e.killer_tid >= 0 ? e.killer_socket : -1, e.socket);
      if (e.line != 0) line_aborts_[e.line]++;
      if (e.cls >= 0) {
        victim_aborts_by_class_[e.cls]++;
        class_matrix_[{e.killer_cls, e.cls}]++;
      }
      break;
    case EventKind::kLockFallback: {
      lock_fallbacks_++;
      const bool continues = current_episode_len_ > 0 &&
                             e.clock - last_fallback_clock_ <= kEpisodeGapCycles;
      if (continues) {
        if (++current_episode_len_ == 2) fallback_episodes_++;
      } else {
        current_episode_len_ = 1;
      }
      if (current_episode_len_ > longest_episode_) {
        longest_episode_ = current_episode_len_;
      }
      last_fallback_clock_ = e.clock;
      break;
    }
    case EventKind::kCapacityEvict:
      capacity_evictions_++;
      break;
  }
}

Attribution& Attribution::operator+=(const Attribution& o) {
  tx_begins_ += o.tx_begins_;
  tx_commits_ += o.tx_commits_;
  tx_aborts_total_ += o.tx_aborts_total_;
  for (int i = 0; i < htm::kAbortReasonCount; ++i) {
    aborts_by_reason_[i] += o.aborts_by_reason_[i];
  }
  capacity_evictions_ += o.capacity_evictions_;
  if (!o.matrix_.empty()) {
    growMatrix(static_cast<int>(o.matrix_.size()) - 1);
    for (size_t k = 0; k < o.matrix_.size(); ++k) {
      for (size_t v = 0; v < o.matrix_[k].size(); ++v) {
        matrix_[k][v] += o.matrix_[k][v];
      }
    }
  }
  cross_socket_aborts_ += o.cross_socket_aborts_;
  intra_socket_aborts_ += o.intra_socket_aborts_;
  self_or_unknown_aborts_ += o.self_or_unknown_aborts_;
  if (o.topo_sockets_ > 0) {
    if (topo_sockets_ == 0) {
      topo_sockets_ = o.topo_sockets_;
      hops_ = o.hops_;
      aborts_by_hops_.resize(o.aborts_by_hops_.size(), 0);
    }
    if (aborts_by_hops_.size() < o.aborts_by_hops_.size()) {
      aborts_by_hops_.resize(o.aborts_by_hops_.size(), 0);
    }
    for (size_t h = 0; h < o.aborts_by_hops_.size(); ++h) {
      aborts_by_hops_[h] += o.aborts_by_hops_[h];
    }
  }
  for (const auto& [line, n] : o.line_aborts_) line_aborts_[line] += n;
  if (class_names_.empty()) class_names_ = o.class_names_;
  for (const auto& [cls, n] : o.victim_aborts_by_class_) {
    victim_aborts_by_class_[cls] += n;
  }
  for (const auto& [kv, n] : o.class_matrix_) class_matrix_[kv] += n;
  lock_fallbacks_ += o.lock_fallbacks_;
  fallback_episodes_ += o.fallback_episodes_;
  longest_episode_ = std::max(longest_episode_, o.longest_episode_);
  // Episodes never span trials: the in-progress run state is not merged.
  return *this;
}

std::vector<std::pair<uint64_t, uint64_t>> Attribution::hotLines(
    size_t k) const {
  std::vector<std::pair<uint64_t, uint64_t>> all(line_aborts_.begin(),
                                                 line_aborts_.end());
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

std::string Attribution::toJson(size_t top_k) const {
  workload::JsonWriter w;
  w.beginObject();
  w.key("tx_begins").value(tx_begins_);
  w.key("tx_commits").value(tx_commits_);
  w.key("tx_aborts").value(tx_aborts_total_);
  w.key("aborts_by_reason");
  w.beginObject();
  for (int i = 1; i < htm::kAbortReasonCount; ++i) {
    w.key(htm::toString(static_cast<htm::AbortReason>(i)))
        .value(aborts_by_reason_[i]);
  }
  w.endObject();
  w.key("killer_matrix");  // [killer_socket][victim_socket]
  w.beginArray();
  for (const auto& row : matrix_) {
    w.beginArray();
    for (uint64_t n : row) w.value(n);
    w.endArray();
  }
  w.endArray();
  w.key("cross_socket_aborts").value(cross_socket_aborts_);
  w.key("intra_socket_aborts").value(intra_socket_aborts_);
  w.key("self_or_unknown_aborts").value(self_or_unknown_aborts_);
  if (topo_sockets_ > 0) {
    w.key("aborts_by_hops");  // index = hop distance, 0 = same socket
    w.beginArray();
    for (uint64_t n : aborts_by_hops_) w.value(n);
    w.endArray();
  }
  if (!victim_aborts_by_class_.empty()) {
    // Per-tenant blame, only when class-tagged events were seen (untagged
    // runs keep the pre-traffic byte layout). Classes are labeled with the
    // installed names, falling back to the numeric id.
    auto label = [this](int cls) {
      if (cls < 0) return std::string("self_or_unknown");
      if (static_cast<size_t>(cls) < class_names_.size()) {
        return class_names_[static_cast<size_t>(cls)];
      }
      return std::to_string(cls);
    };
    w.key("aborts_by_victim_class");
    w.beginObject();
    for (const auto& [cls, n] : victim_aborts_by_class_) {
      w.key(label(cls)).value(n);
    }
    w.endObject();
    w.key("class_killer_matrix");
    w.beginArray();
    for (const auto& [kv, n] : class_matrix_) {
      w.beginObject();
      w.key("killer").value(label(kv.first));
      w.key("victim").value(label(kv.second));
      w.key("aborts").value(n);
      w.endObject();
    }
    w.endArray();
  }
  w.key("hot_lines");
  w.beginArray();
  for (const auto& [line, n] : hotLines(top_k)) {
    w.beginObject();
    w.key("line").value(line);
    w.key("aborts").value(n);
    w.endObject();
  }
  w.endArray();
  w.key("capacity_evictions").value(capacity_evictions_);
  w.key("lock_fallbacks").value(lock_fallbacks_);
  w.key("fallback_episodes").value(fallback_episodes_);
  w.key("longest_fallback_episode").value(longest_episode_);
  w.endObject();
  return w.take();
}

}  // namespace natle::obs
