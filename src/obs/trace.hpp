// Transaction event tracing: the observability layer behind abort
// attribution (who killed whom, on which line, from which socket).
//
// The simulator's discrete-event core executes actions in nondecreasing
// simulated time, so a single Tracer attached to an Env observes a globally
// time-ordered event stream with zero synchronization. Recording is strictly
// observational: it charges no cycles and consumes no randomness, so a
// traced run produces byte-identical simulation results to an untraced one.
//
// Cost model: when no Tracer is attached (the default) every emission site
// is one pointer test. When attached, aggregation is streaming (constant
// memory via Attribution); raw event retention is opt-in and per-thread,
// with an optional ring cap for long runs.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "htm/abort.hpp"
#include "obs/attribution.hpp"

namespace natle::obs {

enum class EventKind : uint8_t {
  kTxBegin,        // transaction attempt started
  kTxCommit,       // transaction retired
  kTxAbort,        // transaction rolled back (see reason/killer fields)
  kLockFallback,   // elision gave up; critical section ran under the lock
  kCapacityEvict,  // a transactional L1 line was displaced (set/way recorded)
};

const char* toString(EventKind k);

// One structured trace event. Line identifiers are the allocator's *stable*
// ids (chunk ordinal + offset), never raw addresses, so dumps are
// byte-identical across processes despite ASLR.
struct TraceEvent {
  uint64_t clock = 0;  // simulated cycles at emission
  uint64_t seq = 0;    // global emission index (assigned by Tracer::record)
  EventKind kind = EventKind::kTxBegin;
  htm::AbortReason reason = htm::AbortReason::kNone;  // kTxAbort only
  bool may_retry = false;                             // kTxAbort only
  int16_t tid = -1;    // the thread the event happened to (victim on abort)
  int8_t socket = -1;
  // The "other party": for kTxAbort the aborting thread (-1 = self-inflicted
  // or hardware-internal); for kCapacityEvict the *victim* whose line the
  // thread in `tid` displaced.
  int16_t killer_tid = -1;
  int8_t killer_socket = -1;
  uint64_t line = 0;     // stable line id of the conflicting/evicted line
  uint16_t attempt = 0;  // attempt number within the critical-section sequence
  uint16_t set = 0;      // kCapacityEvict: L1 set index
  uint8_t way = 0;       // kCapacityEvict: way within the set
  // Multi-tenant request-class tags (src/traffic): the class of the thread
  // the event happened to, and of the other party. -1 = untagged; the JSON
  // rendering omits the keys then, preserving single-class byte layouts.
  int8_t cls = -1;
  int8_t killer_cls = -1;
};

class Tracer {
 public:
  // `keep_events` retains the raw stream (per-thread append buffers) for
  // dumpJsonl; aggregation into attribution() always happens. When
  // `ring_capacity` > 0 each thread keeps only its most recent events.
  explicit Tracer(bool keep_events = false, size_t ring_capacity = 0)
      : keep_events_(keep_events), ring_capacity_(ring_capacity) {}

  void record(TraceEvent e);

  const Attribution& attribution() const { return attribution_; }

  // Forward the machine's socket distance matrix so attribution can bucket
  // aborts by hop distance (no-op on trivial all-adjacent topologies).
  void setTopology(int sockets, std::vector<uint8_t> hops) {
    attribution_.setTopology(sockets, std::move(hops));
  }

  // Names for the request-class tags (index = class id) so the attribution
  // JSON can label the per-class keys.
  void setClassNames(std::vector<std::string> names) {
    attribution_.setClassNames(std::move(names));
  }

  // Retained events merged across threads back into emission (seq) order,
  // one JSON object per line. Empty when keep_events is false.
  std::string dumpJsonl() const;

  uint64_t eventCount() const { return n_events_; }
  uint64_t droppedCount() const { return n_dropped_; }
  // Whether the raw stream is retained (the watchdog diagnostic attaches a
  // trace tail only when it is).
  bool keepsEvents() const { return keep_events_; }

 private:
  struct ThreadBuf {
    std::vector<TraceEvent> events;
    size_t head = 0;  // ring start once the capacity wrapped
  };

  bool keep_events_;
  size_t ring_capacity_;
  uint64_t n_events_ = 0;
  uint64_t n_dropped_ = 0;
  std::vector<ThreadBuf> bufs_;  // indexed by tid
  Attribution attribution_;
};

void appendJson(std::string& out, const TraceEvent& e);

}  // namespace natle::obs
