// Abort classification, mirroring the information the Intel TSX/RTM
// interface reports: a cause (condition code) plus a "may retry" hint bit.
// Per the ISA and the paper: conflict aborts set the hint; capacity-style
// aborts clear it. The paper's key Fig. 2 observation is that a clear hint
// does NOT imply retrying is futile — our capacity mechanism (shared-L1
// eviction by the hyperthread sibling) makes that emerge naturally.
#pragma once

#include <cstdint>

namespace natle::htm {

enum class AbortReason : uint8_t {
  kNone = 0,
  kConflict,   // another thread touched a line in our read/write set
  kCapacity,   // a transactional line was evicted from the core's L1
  kExplicit,   // ctx.txAbort(code): used by TLE's lock-held subscription abort
  kSpurious,   // interrupt / ring transition hazard
  kCount_,
};

constexpr int kAbortReasonCount = static_cast<int>(AbortReason::kCount_);

const char* toString(AbortReason r);

// Status returned by ThreadCtx::txBegin(), RTM-style.
constexpr unsigned kTxStarted = ~0u;

struct AbortStatus {
  AbortReason reason = AbortReason::kNone;
  bool may_retry = false;   // the hardware hint bit
  uint8_t xabort_code = 0;  // payload of an explicit abort
};

inline const char* toString(AbortReason r) {
  switch (r) {
    case AbortReason::kNone: return "none";
    case AbortReason::kConflict: return "conflict";
    case AbortReason::kCapacity: return "capacity";
    case AbortReason::kExplicit: return "explicit";
    case AbortReason::kSpurious: return "spurious";
    default: return "?";
  }
}

}  // namespace natle::htm
