#include "htm/env.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/trace.hpp"

namespace natle::htm {

namespace {
constexpr unsigned kReasonMask = 0x7;
constexpr unsigned kRetryBit = 0x8;
}  // namespace

unsigned ThreadCtx::encodeStatus(const AbortStatus& a) {
  return (static_cast<unsigned>(a.reason) & kReasonMask) |
         (a.may_retry ? kRetryBit : 0) |
         (static_cast<unsigned>(a.xabort_code) << 8);
}

AbortStatus decodeStatus(unsigned status) {
  AbortStatus a;
  a.reason = static_cast<AbortReason>(status & kReasonMask);
  a.may_retry = (status & kRetryBit) != 0;
  a.xabort_code = static_cast<uint8_t>(status >> 8);
  return a;
}

ThreadCtx::ThreadCtx(Env& env, sim::SimThread* st) : env_(env), st_(st) {
  env_.stats_.emplace_back();
  stats_ = &env_.stats_.back();
  l1_ = &env_.mem_.l1(st_->slot.core_global);
  txn_.owner = this;
}

bool ThreadCtx::setupMode() const { return !env_.machine_.running(); }

uint64_t ThreadCtx::nowCycles() const { return st_->clock; }

uint64_t ThreadCtx::nowNs() const {
  return static_cast<uint64_t>(static_cast<double>(st_->clock) / env_.cfg().ghz);
}

void ThreadCtx::chargeMem(uint64_t cycles) { env_.machine_.charge(*st_, cycles); }

void ThreadCtx::countClass(mem::AccessClass cls) {
  switch (cls) {
    case mem::AccessClass::kL1Hit: stats_->l1_hits++; break;
    case mem::AccessClass::kLocalHit: stats_->local_hits++; break;
    case mem::AccessClass::kRemoteTransfer: stats_->remote_transfers++; break;
    case mem::AccessClass::kDramMiss: stats_->dram_misses++; break;
  }
}

void ThreadCtx::work(uint64_t cycles) {
  if (setupMode()) return;
  checkPendingAbort();
  env_.machine_.chargeWork(*st_, cycles);
  if (txn_.in_flight) spuriousHazard();
  env_.machine_.maybeYield(*st_);
}

void ThreadCtx::requireConsistent(bool invariant_holds) {
  if (invariant_holds) [[likely]] return;
  checkPendingAbort();  // doomed transaction: longjmps to the landing pad
  std::abort();         // consistent view with a broken invariant
}

void ThreadCtx::checkPendingAbort() {
  if (txn_.pending_abort) {
    txn_.pending_abort = false;
    chargeMem(env_.cfg().tx_abort_cost);
    std::longjmp(txn_.jb, 1);
  }
}

void ThreadCtx::spuriousHazard() {
  const uint64_t elapsed = st_->clock - txn_.last_hazard_clock;
  if (elapsed == 0) return;
  const uint64_t prev = txn_.last_hazard_clock;
  txn_.last_hazard_clock = st_->clock;
  // Hazards arrive as a Poisson process with the configured per-cycle rate;
  // the hit probability over `elapsed` cycles is 1 - e^(-rate * elapsed).
  // (The naive `elapsed * rate` overestimates and exceeds 1 for windows
  // longer than 1/rate.)
  // expm1 is too slow for this per-access path, so the typical tiny
  // exponent takes the two-term series, exact to ~x^3/6.
  double x = env_.cfg().spurious_abort_per_cycle * static_cast<double>(elapsed);
  // An injected abort storm folds into the same Poisson exponent and the
  // same RNG draw below, so the workload stream advances identically whether
  // or not a storm window is open.
  if (env_.faults_ != nullptr) {
    x += env_.faults_->stormHazard(st_->slot.socket, prev, st_->clock);
  }
  const double p = x < 1e-4 ? x - 0.5 * x * x : -std::expm1(-x);
  if (p > 0 && st_->rng.chance(p)) {
    selfAbort(AbortReason::kSpurious, false, 0);
  }
}

void ThreadCtx::selfAbort(AbortReason r, bool may_retry, uint8_t code,
                          uint64_t line) {
  env_.abortTxn(txn_, r, may_retry, code, /*killer=*/nullptr, line);
  txn_.pending_abort = false;
  chargeMem(env_.cfg().tx_abort_cost);
  std::longjmp(txn_.jb, 1);
}

// Resolve an L1 insertion that had to displace a pinned transactional line:
// every transaction that owned the evicted line suffers a capacity abort.
// The hyperthread sibling (if any) is aborted first; our own abort longjmps,
// so it must come last.
void ThreadCtx::handleCapacityEviction(const mem::L1Cache::InsertResult& ir) {
  if (ir.capacity_victim == nullptr) return;
  Txn* victims[2] = {static_cast<Txn*>(ir.capacity_victim),
                     static_cast<Txn*>(ir.capacity_victim2)};
  if (obs::Tracer* tr = env_.tracer();
      tr != nullptr && st_->clock >= env_.stats_start_) {
    for (Txn* v : victims) {
      if (v == nullptr) continue;
      obs::TraceEvent e;
      e.clock = st_->clock;
      e.kind = obs::EventKind::kCapacityEvict;
      e.tid = static_cast<int16_t>(tid());  // the evictor
      e.socket = static_cast<int8_t>(socket());
      e.cls = class_tag_;
      e.killer_tid = static_cast<int16_t>(v->owner->tid());  // the victim
      e.killer_socket = static_cast<int8_t>(v->owner->socket());
      e.killer_cls = v->owner->class_tag_;
      e.line = env_.mem_.allocator().stableLineId(ir.victim_line);
      e.set = ir.victim_set;
      e.way = ir.victim_way;
      tr->record(e);
    }
  }
  bool self = false;
  for (Txn* v : victims) {
    if (v == nullptr) continue;
    if (v == &txn_) {
      self = true;
      continue;
    }
    env_.abortTxn(*v, AbortReason::kCapacity, /*may_retry=*/false, 0, this,
                  ir.victim_line);
  }
  if (self) selfAbort(AbortReason::kCapacity, false, 0, ir.victim_line);
}

void ThreadCtx::registerRead(uint64_t line, mem::LineState& s) {
  if (s.tx_writer == &txn_) return;  // our own write set covers it
  if (txn_.inReadSet(line)) return;
  txn_.read_lines.push_back(line);
  txn_.read_bloom |= Txn::bloomBit(line);
  s.tx_readers.push_back(&txn_);
}

void ThreadCtx::accessRead(const void* addr) {
  if (setupMode()) return;
  assert(&env_.machine_.current() == st_);
  checkPendingAbort();
  if (env_.debug_trace_tid == tid()) {
    uint64_t v; std::memcpy(&v, addr, 8);
    std::fprintf(stderr, "  [t=%llu tid=%d] R %p -> %llx\n",
                 (unsigned long long)st_->clock, tid(), addr,
                 (unsigned long long)v);
  }
  env_.auditConsistency("read");
  const uint64_t line = mem::lineOf(addr);
  Txn* tx = txn_.in_flight ? &txn_ : nullptr;
  const bool count = st_->clock >= env_.stats_start_;

  mem::L1Cache::Entry* e = l1_->probe(line);
#ifdef NATLE_DEBUG_NO_L1_READ_FAST_PATH
  e = nullptr;
#endif
  // A hyperthread sibling shares our L1: its in-flight transactional write
  // can be resident and valid here. Reading it must abort the writer (as the
  // sibling's access does on real TSX), never observe the dirty value — so
  // such hits fall through to the directory path, which resolves conflicts.
  if (e != nullptr && e->state->tx_writer != nullptr &&
      e->state->tx_writer != &txn_) {
    e = nullptr;
  }
  if (e != nullptr) {
    chargeMem(env_.mem_.l1HitCost());
    if (count) stats_->l1_hits++;
    if (tx != nullptr && !l1_->ownedBy(e, tx)) {
      registerRead(line, *e->state);
      // tag() adds us as a second owner when the hyperthread sibling already
      // pinned this line — overwriting its pin would let a later eviction
      // displace the sibling's transactional line without aborting it.
      l1_->tag(e, tx);
    }
  } else {
    mem::LineState& s = env_.mem_.lookup(line);
    if (s.tx_writer != nullptr && s.tx_writer != &txn_) {
      // Our fetch invalidates the writer's buffered line: it aborts.
      env_.abortTxn(*static_cast<Txn*>(s.tx_writer), AbortReason::kConflict,
                    /*may_retry=*/true, 0, this, line);
    }
    // Conflicts resolved; the memory system prices and performs the fill.
    // The L1 install samples the way squeeze *after* the fill latency has
    // been charged (the insertion happens when the data arrives).
    const mem::Access a =
        env_.mem_.fillRead(line, s, st_->slot.socket, st_->clock);
    chargeMem(a.latency);
    if (count) countClass(a.cls);
    const auto ir = env_.mem_.install(line, s, st_->slot.core_global, tx,
                                      env_.faultMaskedWays(*st_));
    if (ir.capacity_victim != nullptr) handleCapacityEviction(ir);
    if (tx != nullptr) registerRead(line, s);
  }
  if (tx != nullptr) spuriousHazard();
#ifndef NATLE_DEBUG_NO_YIELD_READ
  env_.machine_.maybeYield(*st_);
#endif
  // A conflicting writer may have aborted us during the yield above — and
  // already rolled our speculation back. Deliver that abort *before* load()
  // reads the memory, or the caller would observe the rolled-back value (a
  // "zombie" view breaking every data-structure invariant; real HTM stops
  // the victim instantly). Nothing is charged between here and the delivery
  // point at the next ThreadCtx entry, so simulated time is unaffected.
  checkPendingAbort();
}

void ThreadCtx::accessWrite(void* addr, uint64_t bits, uint8_t size) {
  if (setupMode()) {
    std::memcpy(addr, &bits, size);
    return;
  }
  assert(&env_.machine_.current() == st_);
  checkPendingAbort();
  env_.auditConsistency("write");
  const uint64_t line = mem::lineOf(addr);
  Txn* tx = txn_.in_flight ? &txn_ : nullptr;
  const bool count = st_->clock >= env_.stats_start_;

  if (env_.debug_trace_tid == tid()) {
    std::fprintf(stderr, "  [t=%llu tid=%d] W %p := %llx\n",
                 (unsigned long long)st_->clock, tid(), addr,
                 (unsigned long long)bits);
  }
  mem::LineState& s = env_.mem_.lookup(line);

  // Requester wins: our ownership request kills every other transaction
  // holding this line.
  if (s.tx_writer != nullptr && s.tx_writer != &txn_) {
    env_.abortTxn(*static_cast<Txn*>(s.tx_writer), AbortReason::kConflict,
                  /*may_retry=*/true, 0, this, line);
  }
  for (size_t i = 0; i < s.tx_readers.size();) {
    auto* r = static_cast<Txn*>(s.tx_readers[i]);
    if (r == &txn_) {
      ++i;
      continue;
    }
    // abortTxn removes r from s.tx_readers, so do not advance i.
    env_.abortTxn(*r, AbortReason::kConflict, /*may_retry=*/true, 0, this,
                  line);
  }

  // Conflicts resolved; the memory system prices the ownership acquisition
  // and applies the coherence transition.
  const mem::Access a = env_.mem_.fillWrite(line, s, st_->slot.socket,
                                            st_->slot.core_global, st_->clock);
  chargeMem(a.latency);
  if (count) countClass(a.cls);

  // Apply the store (undo-logged when transactional).
  if (tx != nullptr) {
    Txn::UndoEntry u;
    u.addr = addr;
    u.old_bits = 0;
    std::memcpy(&u.old_bits, addr, size);
    u.size = size;
    txn_.undo.push_back(u);
  }
  std::memcpy(addr, &bits, size);

  const auto ir = env_.mem_.install(line, s, st_->slot.core_global, tx,
                                    env_.faultMaskedWays(*st_));
  if (ir.capacity_victim != nullptr) handleCapacityEviction(ir);

  if (tx != nullptr && s.tx_writer != &txn_) {
    s.tx_writer = &txn_;
    txn_.write_lines.push_back(line);
    // Fold an earlier read registration into the write set.
    if (txn_.inReadSet(line)) s.tx_readers.erase_unordered(&txn_);
  }
  if (tx != nullptr) spuriousHazard();
#ifndef NATLE_DEBUG_NO_YIELD_WRITE
  env_.machine_.maybeYield(*st_);
#endif
  // See accessRead: an abort landing in the yield above has already undone
  // this store; returning normally would let the caller run on as a zombie.
  checkPendingAbort();
}

unsigned ThreadCtx::txStart() {
  assert(env_.machine_.running() && "transactions require a running machine");
  assert(!txn_.in_flight && "nested transactions are not supported");
  assert(!txn_.pending_abort);
  txn_.resetForBegin();
  env_.in_flight_count_++;
  txn_.begin_clock = st_->clock;
  txn_.last_hazard_clock = st_->clock;
  txn_.attempt_in_seq++;
  if (st_->clock >= env_.stats_start_) {
    stats_->tx_begins++;
    if (obs::Tracer* tr = env_.tracer(); tr != nullptr) {
      obs::TraceEvent e;
      e.clock = st_->clock;
      e.kind = obs::EventKind::kTxBegin;
      e.tid = static_cast<int16_t>(tid());
      e.socket = static_cast<int8_t>(socket());
      e.cls = class_tag_;
      e.attempt = txn_.attempt_in_seq;
      tr->record(e);
    }
  }
  env_.machine_.chargeWork(*st_, env_.cfg().tx_begin_cost);
  env_.machine_.maybeYield(*st_);
  return kTxStarted;
}

unsigned ThreadCtx::txAbortStatus() { return encodeStatus(txn_.last_abort); }

void ThreadCtx::txCommit() {
  checkPendingAbort();
  assert(txn_.in_flight);
  env_.machine_.chargeWork(*st_, env_.cfg().tx_commit_cost);
  spuriousHazard();  // may longjmp: the hazard covers time up to commit
  for (uint64_t line : txn_.write_lines) {
    mem::LineState* s = env_.mem_.directory().find(line);
    if (s != nullptr && s->tx_writer == &txn_) s->tx_writer = nullptr;
  }
  for (uint64_t line : txn_.read_lines) {
    mem::LineState* s = env_.mem_.directory().find(line);
    if (s != nullptr) s->tx_readers.erase_unordered(&txn_);
  }
  for (void* p : txn_.tx_frees) env_.mem_.allocator().free(p);
  txn_.in_flight = false;
  env_.in_flight_count_--;
  if (st_->clock >= env_.stats_start_) {
    stats_->tx_commits++;
    if (txn_.hintclear_in_seq) stats_->commits_after_hintclear_fail++;
    if (obs::Tracer* tr = env_.tracer(); tr != nullptr) {
      obs::TraceEvent e;
      e.clock = st_->clock;
      e.kind = obs::EventKind::kTxCommit;
      e.tid = static_cast<int16_t>(tid());
      e.socket = static_cast<int8_t>(socket());
      e.cls = class_tag_;
      tr->record(e);
    }
  }
  if (env_.debug_on_commit) env_.debug_on_commit(*this);
  env_.machine_.noteProgress(st_->clock);
  env_.machine_.maybeYield(*st_);
}

void ThreadCtx::txAbort(uint8_t code) {
  // A cross-thread abort may have landed during the yield at the end of our
  // previous access; it takes precedence over the explicit abort.
  checkPendingAbort();
  assert(txn_.in_flight);
  selfAbort(AbortReason::kExplicit, /*may_retry=*/true, code);
}

void* ThreadCtx::alloc(size_t bytes) {
  // Drain a pending cross-thread abort first: once the victim transaction
  // was retired, in_flight is false and this allocation would escape the
  // tx_allocs log.
  if (!setupMode()) checkPendingAbort();
  void* p = env_.mem_.allocator().alloc(bytes, setupMode() ? 0 : socket());
  if (!setupMode()) {
    env_.machine_.chargeWork(*st_, 40);
    if (txn_.in_flight) txn_.tx_allocs.push_back(p);
  }
  return p;
}

void ThreadCtx::free(void* p) {
  if (p == nullptr) return;
  if (!setupMode()) {
    // Critical: if our transaction was just aborted (pending), the unlink
    // stores that made `p` unreachable have been rolled back — freeing it
    // now would put still-reachable memory on the free list. The longjmp
    // discards the free along with the rest of the doomed section.
    checkPendingAbort();
    env_.machine_.chargeWork(*st_, 30);
    if (txn_.in_flight) {
      txn_.tx_frees.push_back(p);
      return;
    }
  }
  env_.mem_.allocator().free(p);
}

bool ThreadCtx::opBoundary() {
  if (setupMode()) return false;
  // Completing an operation is progress even without transactions (plain
  // lock-based or lock-free sync modes must not trip the watchdog).
  env_.machine_.noteProgress(st_->clock);
  if (env_.machine_.maybeMigrate(*st_)) {
    l1_ = &env_.mem_.l1(st_->slot.core_global);
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------

Env::Env(const sim::MachineConfig& cfg, bool pad_alloc,
         mem::PlacePolicy placement)
    : machine_(cfg), mem_(cfg, pad_alloc, placement) {}

sim::SimThread* Env::spawnWorker(std::function<void(ThreadCtx&)> fn,
                                 sim::HwSlot slot, bool pinned,
                                 uint64_t start_clock) {
  sim::SimThread* st = machine_.spawn(
      [fn = std::move(fn)](sim::SimThread& t) {
        auto* ctx = static_cast<ThreadCtx*>(t.user);
        fn(*ctx);
      },
      slot, pinned, start_clock);
  auto ctx = std::make_unique<ThreadCtx>(*this, st);
  st->user = ctx.get();
  ctxs_.push_back(std::move(ctx));
  return st;
}

ThreadCtx& Env::setupCtx() {
  if (setup_ctx_ == nullptr) {
    setup_thread_ = std::make_unique<sim::SimThread>();
    setup_thread_->machine = &machine_;
    setup_ctx_ = std::make_unique<ThreadCtx>(*this, setup_thread_.get());
  }
  return *setup_ctx_;
}

TxStats Env::totals() const {
  TxStats t;
  for (const auto& s : stats_) t += s;
  return t;
}

void Env::installFaults(const fault::FaultSpec& spec) {
  if (!spec.enabled()) return;
  faults_ = std::make_unique<fault::FaultSchedule>(spec, cfg());
  mem_.setFaults(faults_.get());
}

void Env::enableWatchdog(uint64_t budget_cycles) {
  machine_.enableWatchdog(budget_cycles,
                          [this](std::string& d) { appendDiagnostic(d); });
}

uint64_t Env::registerDiag(std::function<void(std::string&)> fn) {
  const uint64_t id = next_diag_id_++;
  diags_.emplace_back(id, std::move(fn));
  return id;
}

void Env::unregisterDiag(uint64_t id) {
  for (auto it = diags_.begin(); it != diags_.end(); ++it) {
    if (it->first == id) {
      diags_.erase(it);
      return;
    }
  }
}

void Env::appendDiagnostic(std::string& out) {
  // Everything appended here must be deterministic: line identifiers go
  // through the allocator's stable ids (never raw addresses), iteration
  // orders are tid order and registration order.
  auto appendLines = [this, &out](const char* label,
                                  const std::vector<uint64_t>& lines) {
    if (lines.empty()) return;
    out += label;
    const size_t shown = lines.size() < 16 ? lines.size() : 16;
    for (size_t i = 0; i < shown; ++i) {
      out += ' ';
      out += std::to_string(mem_.allocator().stableLineId(lines[i]));
    }
    if (lines.size() > shown) {
      out += " ...(+" + std::to_string(lines.size() - shown) + ")";
    }
    out += '\n';
  };
  out += "in-flight transactions: " + std::to_string(in_flight_count_) + "\n";
  for (auto& ctx : ctxs_) {
    Txn& t = ctx->txn_;
    if (!t.in_flight) continue;
    out += "  tid=" + std::to_string(ctx->tid()) +
           " attempt=" + std::to_string(t.attempt_in_seq) +
           " begin_clock=" + std::to_string(t.begin_clock) +
           " reads=" + std::to_string(t.read_lines.size()) +
           " writes=" + std::to_string(t.write_lines.size()) + "\n";
    appendLines("    read lines:", t.read_lines);
    appendLines("    write lines:", t.write_lines);
  }
  for (auto& [id, fn] : diags_) fn(out);
  if (tracer_ != nullptr && tracer_->keepsEvents() && tracer_->eventCount() > 0) {
    const std::string all = tracer_->dumpJsonl();
    size_t start = 0;
    int newlines = 0;
    for (size_t i = all.size(); i-- > 0;) {
      if (all[i] == '\n' && ++newlines == 21) {
        start = i + 1;
        break;
      }
    }
    out += "trace tail:\n";
    out += all.substr(start);
  }
}

void Env::auditConsistency(const char* where) {
  if (!debug_audit_) return;
  // Forward: every in-flight tx's lines are registered.
  for (auto& ctx : ctxs_) {
    Txn& t = ctx->txn_;
    if (!t.in_flight) continue;
    for (uint64_t line : t.write_lines) {
      mem::LineState* s = mem_.directory().find(line);
      if (s == nullptr || s->tx_writer != &t) {
        std::fprintf(stderr, "AUDIT[%s]: tid %d write line %llx not owned\n",
                     where, ctx->tid(), (unsigned long long)line);
        std::abort();
      }
    }
    for (uint64_t line : t.read_lines) {
      mem::LineState* s = mem_.directory().find(line);
      const bool folded = s != nullptr && s->tx_writer == &t;
      if (s == nullptr || (!folded && !s->tx_readers.contains(&t))) {
        std::fprintf(stderr, "AUDIT[%s]: tid %d read line %llx not registered\n",
                     where, ctx->tid(), (unsigned long long)line);
        std::abort();
      }
    }
  }
  // Reverse: every directory registration refers to a live, matching tx.
  mem_.directory().forEach([&](uint64_t line, mem::LineState& s) {
    if (s.tx_writer != nullptr) {
      Txn* w = static_cast<Txn*>(s.tx_writer);
      bool listed = false;
      for (uint64_t l : w->write_lines) listed |= (l == line);
      if (!w->in_flight || !listed) {
        std::fprintf(stderr, "AUDIT[%s]: stale writer on line %llx (tid %d in_flight=%d listed=%d)\n",
                     where, (unsigned long long)line, w->owner->tid(),
                     (int)w->in_flight, (int)listed);
        std::abort();
      }
    }
    for (size_t i = 0; i < s.tx_readers.size(); ++i) {
      Txn* r = static_cast<Txn*>(s.tx_readers[i]);
      if (!r->in_flight || !r->inReadSet(line)) {
        std::fprintf(stderr, "AUDIT[%s]: stale reader on line %llx (tid %d in_flight=%d inset=%d)\n",
                     where, (unsigned long long)line, r->owner->tid(),
                     (int)r->in_flight, (int)r->inReadSet(line));
        std::abort();
      }
    }
  });
}

uint64_t Env::debugCommittedValue(const void* addr, uint8_t size) {
  for (auto& ctx : ctxs_) {
    Txn& t = ctx->txn_;
    if (!t.in_flight) continue;
    for (const auto& u : t.undo) {
      if (u.addr == addr) return u.old_bits;  // first entry = pre-tx value
    }
  }
  uint64_t bits = 0;
  std::memcpy(&bits, addr, size);
  return bits;
}

void Env::debugDumpInFlight(uint64_t interesting_line) {
  for (auto& ctx : ctxs_) {
    Txn& t = ctx->txn_;
    if (!t.in_flight) continue;
    if (t.read_lines.size() <= 1 && t.write_lines.empty()) continue;  // benign: will abort at subscription check
    std::fprintf(stderr, "in-flight tid=%d clock=%llu seq=%llu reads=%zu writes=%zu undo=%zu\n",
                 ctx->tid(), (unsigned long long)ctx->st_->clock,
                 (unsigned long long)t.seq, t.read_lines.size(),
                 t.write_lines.size(), t.undo.size());
    bool has = false;
    for (uint64_t l : t.read_lines) has |= (l == interesting_line);
    std::fprintf(stderr, "  lock line 0x%llx in read set: %d\n",
                 (unsigned long long)interesting_line, (int)has);
    mem::LineState* s = mem_.directory().find(interesting_line);
    if (s != nullptr) {
      std::fprintf(stderr, "  lock line readers=%zu writer=%p version=%u\n",
                   s->tx_readers.size(), (void*)s->tx_writer, s->version);
    }
    std::fprintf(stderr, "  lock word raw value=%llu\n",
                 (unsigned long long)*reinterpret_cast<uint64_t*>(interesting_line * 64));
    std::abort();
  }
}

void Env::abortTxn(Txn& v, AbortReason reason, bool may_retry, uint8_t code,
                   ThreadCtx* killer, uint64_t line) {
  assert(v.in_flight);
  v.in_flight = false;
  in_flight_count_--;
  v.pending_abort = true;
  v.last_abort = AbortStatus{reason, may_retry, code};
  if (!may_retry) v.hintclear_in_seq = true;
  // Roll back eager writes (reverse order handles repeated stores).
  for (auto it = v.undo.rbegin(); it != v.undo.rend(); ++it) {
    std::memcpy(it->addr, &it->old_bits, it->size);
  }
  v.undo.clear();
  const int victim_socket = v.owner->socket();
  for (uint64_t line : v.write_lines) {
    mem::LineState* s = mem_.directory().find(line);
    if (s != nullptr && s->tx_writer == &v) {
      s->tx_writer = nullptr;
      mem_.rollbackWrite(*s, victim_socket);
    }
  }
  for (uint64_t line : v.read_lines) {
    mem::LineState* s = mem_.directory().find(line);
    if (s != nullptr) s->tx_readers.erase_unordered(&v);
  }
  for (void* p : v.tx_allocs) mem_.allocator().free(p);
  v.tx_allocs.clear();
  v.tx_frees.clear();
  ThreadCtx* o = v.owner;
  if (o->st_->clock >= stats_start_) {
    o->stats_->tx_aborts[static_cast<int>(reason)]++;
  }
  // Trace inclusion must mirror the stats gate above (the victim's clock),
  // or the attribution totals drift from TxStats by the aborts straddling
  // the warmup boundary.
  if (tracer_ != nullptr && o->st_->clock >= stats_start_) {
    // The requester (killer) is the currently running thread; for
    // self-inflicted aborts the victim is. Stamping the runner's clock keeps
    // the event stream nondecreasing in simulated time.
    const uint64_t now = killer != nullptr ? killer->st_->clock : o->st_->clock;
    {
      obs::TraceEvent e;
      e.clock = now;
      e.kind = obs::EventKind::kTxAbort;
      e.reason = reason;
      e.may_retry = may_retry;
      e.tid = static_cast<int16_t>(o->tid());
      e.socket = static_cast<int8_t>(o->socket());
      e.cls = o->class_tag_;
      if (killer != nullptr) {
        e.killer_tid = static_cast<int16_t>(killer->tid());
        e.killer_socket = static_cast<int8_t>(killer->socket());
        e.killer_cls = killer->class_tag_;
      }
      e.line = line != 0 ? mem_.allocator().stableLineId(line) : 0;
      e.attempt = v.attempt_in_seq;
      tracer_->record(e);
    }
  }
}

}  // namespace natle::htm
