// Transaction descriptor for the best-effort HTM emulator.
//
// Versioning is eager: transactional stores apply to memory immediately and
// are undone from the log on abort. Conflict detection is also eager and
// requester-wins: the thread performing a conflicting access synchronously
// rolls the victim transaction back (restoring memory before the requester
// proceeds), and the victim discovers its fate at its next simulated action,
// where it longjmps to its txBegin. This mirrors TSX, where the incoming
// coherence invalidation kills the receiving transaction.
#pragma once

#include <csetjmp>
#include <cstdint>
#include <vector>

#include "htm/abort.hpp"
#include "mem/line.hpp"

namespace natle::htm {

class ThreadCtx;

class Txn : public mem::TxBase {
 public:
  struct UndoEntry {
    void* addr;
    uint64_t old_bits;
    uint8_t size;
  };

  ThreadCtx* owner = nullptr;
  std::jmp_buf jb;

  // Set by the aborter; consumed when the victim notices.
  bool pending_abort = false;
  AbortStatus last_abort;

  // Footprint.
  std::vector<uint64_t> read_lines;
  std::vector<uint64_t> write_lines;
  uint64_t read_bloom = 0;  // conservative filter over read_lines

  // Eager-versioning logs.
  std::vector<UndoEntry> undo;
  std::vector<void*> tx_allocs;  // freed if we abort
  std::vector<void*> tx_frees;   // applied if we commit

  // Hazard bookkeeping for spurious (interrupt) aborts.
  uint64_t begin_clock = 0;
  uint64_t last_hazard_clock = 0;

  // True if any attempt since the current critical section started aborted
  // with the hint bit clear (Fig. 2(b) bookkeeping; reset by the lock layer).
  bool hintclear_in_seq = false;

  // 1-based attempt number within the current critical-section sequence
  // (reset by the lock layer alongside hintclear_in_seq; trace-only).
  uint16_t attempt_in_seq = 0;

  static uint64_t bloomBit(uint64_t line) { return 1ull << (line % 64); }

  bool inReadSet(uint64_t line) const {
    if ((read_bloom & bloomBit(line)) == 0) return false;
    for (uint64_t l : read_lines) {
      if (l == line) return true;
    }
    return false;
  }

  void resetForBegin() {
    ++seq;
    in_flight = true;
    pending_abort = false;
    read_lines.clear();
    write_lines.clear();
    read_bloom = 0;
    undo.clear();
    tx_allocs.clear();
    tx_frees.clear();
  }
};

}  // namespace natle::htm
