// Env glues the discrete-event machine, the memory system and the HTM
// emulator together and exposes ThreadCtx — the API all simulated code uses
// for shared-memory access, transactions, allocation and time.
#pragma once

#include <cassert>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <type_traits>

#include "fault/fault.hpp"
#include "htm/stats.hpp"
#include "htm/txn.hpp"
#include "mem/memsystem.hpp"
#include "sim/machine.hpp"

namespace natle::obs {
class Tracer;
}

namespace natle::htm {

class Env;

// Per-simulated-thread access context. All shared-memory reads and writes in
// simulated code must go through load/store/cas so the model can charge
// NUMA-dependent latency and perform conflict detection. Values up to 8
// bytes are supported (one line never spans an access).
class ThreadCtx {
 public:
  ThreadCtx(Env& env, sim::SimThread* st);

  // --- time ---------------------------------------------------------------
  uint64_t nowCycles() const;
  uint64_t nowNs() const;
  // Burn `cycles` of instruction work (external work, spinning, delays).
  // While inside a transaction this lengthens the window of contention.
  void work(uint64_t cycles);

  // --- memory -------------------------------------------------------------
  template <typename T>
  T load(const T& ref) {
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
    accessRead(&ref);
    return ref;
  }

  template <typename T>
  void store(T& ref, T val) {
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
    uint64_t bits = 0;
    std::memcpy(&bits, &val, sizeof(T));
    accessWrite(&ref, bits, sizeof(T));
  }

  // Atomic compare-and-swap (sequentially consistent in the model: the
  // simulated-time order is the linearization order). The leading read
  // resolves conflicts (aborting an in-flight writer) before the comparison,
  // so a CAS never observes another transaction's uncommitted value.
  template <typename T>
  bool cas(T& ref, T expected, T desired) {
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
    accessRead(&ref);
    if (std::memcmp(&ref, &expected, sizeof(T)) == 0) {
      uint64_t bits = 0;
      std::memcpy(&bits, &desired, sizeof(T));
      accessWrite(&ref, bits, sizeof(T));
      return true;
    }
    return false;
  }

  // Atomic fetch-add convenience (shared counters in the applications).
  template <typename T>
  T fetchAdd(T& ref, T delta) {
    accessRead(&ref);  // conflict resolution before observing the value
    T old = ref;
    uint64_t bits = 0;
    T nv = static_cast<T>(old + delta);
    std::memcpy(&bits, &nv, sizeof(T));
    accessWrite(&ref, bits, sizeof(T));
    return old;
  }

  void* alloc(size_t bytes);
  void free(void* p);

  template <typename T, typename... Args>
  T* create(Args&&... args) {
    void* p = alloc(sizeof(T));
    return new (p) T(std::forward<Args>(args)...);
  }

  // --- transactions (RTM-style) --------------------------------------------
  // Start a transaction with the NATLE_TX_BEGIN macro, which plants the
  // abort landing pad (setjmp) in the *caller's* frame. That frame must stay
  // live until txCommit() — i.e. the whole critical section must execute
  // within the function that began the transaction (real RTM restores the
  // full register state on abort; a software landing pad cannot outlive its
  // frame). The lock layer's execute() methods encapsulate this.
  //
  //   unsigned s;
  //   NATLE_TX_BEGIN(ctx, s);
  //   if (s == kTxStarted) { ... ctx.txCommit(); } else { /* abort status s */ }
  std::jmp_buf& txJmpBuf() { return txn_.jb; }
  unsigned txStart();        // internal: body of NATLE_TX_BEGIN, returns kTxStarted
  unsigned txAbortStatus();  // internal: encoded status after an abort landing
  void txCommit();
  [[noreturn]] void txAbort(uint8_t code);  // explicit abort
  bool inTx() const { return txn_.in_flight; }
  const AbortStatus& lastAbort() const { return txn_.last_abort; }
  // Marks the start of a critical-section attempt sequence (for the
  // commits-after-hint-clear-failure statistic and the trace attempt
  // counter). Called by the lock layer.
  void resetAttemptSeq() {
    txn_.hintclear_in_seq = false;
    txn_.attempt_in_seq = 0;
  }
  // Assert a data-structure invariant ("a node with balance > 1 has a left
  // child") from simulated code. A cross-thread abort delivered during an
  // access longjmps before the access returns its value, so a transaction
  // never observes rolled-back ("zombie") memory and such invariants hold in
  // every view a live section can see. On a violation this first drains any
  // abort that landed while the thread was parked outside an access (work(),
  // backoff) — delivered here at the same simulated cycle it would be at the
  // next access — and otherwise kills the process: the structure is
  // genuinely corrupt.
  void requireConsistent(bool invariant_holds);

  // --- identity -----------------------------------------------------------
  int tid() const { return st_->tid; }
  int socket() const { return st_->slot.socket; }
  // The NATLE library caches the socket id in a thread-local and refreshes
  // it only every ~1K acquisitions (the paper, Section 4.2): a migrated
  // thread may briefly act on a stale socket, affecting performance only.
  int cachedSocket() {
    if (cached_socket_ < 0 || ++socket_probe_ctr_ >= 1024) {
      cached_socket_ = socket();
      socket_probe_ctr_ = 0;
      if (!setupMode()) work(150);  // getcpu()-style library call
    }
    return cached_socket_;
  }
  sim::Rng& rng() { return st_->rng; }
  // Request-class tag for multi-tenant attribution (src/traffic): set by the
  // service harness before each request, stamped onto trace events emitted on
  // this thread's behalf. -1 = untagged (single-class workloads).
  int8_t classTag() const { return class_tag_; }
  void setClassTag(int8_t tag) { class_tag_ = tag; }
  // The underlying simulated thread (for barriers and blocking primitives).
  sim::SimThread& simThread() { return *st_; }
  Env& env() { return env_; }
  TxStats& stats() { return *stats_; }

  // Called by harness code between operations: handles OS migration of
  // unpinned threads. Returns true if the thread moved to another core.
  bool opBoundary();

  // In setup mode (machine not running) accesses execute raw and free of
  // charge; used for prefilling structures before a trial.
  bool setupMode() const;

 private:
  friend class Env;

  void accessRead(const void* addr);
  void accessWrite(void* addr, uint64_t bits, uint8_t size);
  void checkPendingAbort();
  void spuriousHazard();
  [[noreturn]] void selfAbort(AbortReason r, bool may_retry, uint8_t code,
                              uint64_t line = 0);
  // Cold and kept out of line: it sits on the access fast paths, which only
  // call it after checking that the insertion actually displaced a pinned
  // line — inlining its abort/trace machinery there bloats both paths.
  [[gnu::noinline, gnu::cold]] void handleCapacityEviction(
      const mem::L1Cache::InsertResult& ir);
  void registerRead(uint64_t line, mem::LineState& s);
  void chargeMem(uint64_t cycles);
  void countClass(mem::AccessClass cls);
  static unsigned encodeStatus(const AbortStatus& a);

  Env& env_;
  sim::SimThread* st_;
  Txn txn_;
  TxStats* stats_;
  mem::L1Cache* l1_;
  int cached_socket_ = -1;
  int socket_probe_ctr_ = 0;
  int8_t class_tag_ = -1;
};

// Begin a transaction; see ThreadCtx::txStart for the contract. `status_var`
// receives kTxStarted on entry and the encoded AbortStatus after an abort.
#define NATLE_TX_BEGIN(ctx, status_var)              \
  do {                                               \
    if (setjmp((ctx).txJmpBuf()) == 0) {             \
      (status_var) = (ctx).txStart();                \
    } else {                                         \
      (status_var) = (ctx).txAbortStatus();          \
    }                                                \
  } while (0)

// Decode helpers for the txBegin return value.
AbortStatus decodeStatus(unsigned status);

class Env {
 public:
  explicit Env(const sim::MachineConfig& cfg, bool pad_alloc = true,
               mem::PlacePolicy placement = mem::PlacePolicy::kFirstTouch);

  sim::Machine& machine() { return machine_; }
  const sim::MachineConfig& cfg() const { return machine_.cfg(); }

  // Spawn a worker thread; `fn` receives a ThreadCtx bound to the fiber.
  sim::SimThread* spawnWorker(std::function<void(ThreadCtx&)> fn, sim::HwSlot slot,
                              bool pinned = true, uint64_t start_clock = 0);
  void run() { machine_.run(); }

  // Context for pre-trial setup (prefilling) — accesses are free and do not
  // touch coherence state.
  ThreadCtx& setupCtx();

  // Shared allocation outside simulated time (locks, trial state).
  void* allocShared(size_t bytes, int home_socket = 0) {
    return mem_.allocator().alloc(bytes, home_socket);
  }

  // Counters accumulate only at/after this simulated time.
  void setStatsStart(uint64_t cycles) { stats_start_ = cycles; }
  uint64_t statsStart() const { return stats_start_; }

  TxStats totals() const;

  // The memory hierarchy (allocator, directory, L1 filters, interconnect).
  mem::MemorySystem& memory() { return mem_; }
  mem::SimAllocator& allocator() { return mem_.allocator(); }
  mem::Directory& directory() { return mem_.directory(); }
  mem::L1Cache& l1(int core) { return mem_.l1(core); }

  // Abort a victim transaction on behalf of a requester (or the hazard
  // machinery). Rolls back memory immediately. `killer` identifies the
  // requesting thread for abort attribution (nullptr = self-inflicted or
  // hardware-internal); `line` the conflicting line, when known.
  void abortTxn(Txn& victim, AbortReason reason, bool may_retry, uint8_t code,
                ThreadCtx* killer = nullptr, uint64_t line = 0);

  // Attach (or detach, with nullptr) a trace sink. Not owned. With no
  // tracer attached every emission site is a single pointer test, and a
  // traced run is observationally identical to an untraced one.
  void setTracer(obs::Tracer* t) { tracer_ = t; }
  obs::Tracer* tracer() const { return tracer_; }

  // --- fault injection -----------------------------------------------------
  // Install a deterministic fault schedule for this Env's trial. Call before
  // spawning workers. All fault randomness comes from streams independent of
  // the workload streams; with no schedule installed behaviour is
  // byte-identical to a build without the subsystem.
  void installFaults(const fault::FaultSpec& spec);
  fault::FaultSchedule* faults() { return faults_.get(); }
  // L1 ways currently masked for `st`'s core (0 without faults).
  uint32_t faultMaskedWays(const sim::SimThread& st) {
    return faults_ == nullptr
               ? 0
               : faults_->maskedWays(st.slot.core_global, st.clock);
  }

  // --- livelock watchdog ---------------------------------------------------
  // Arm the machine watchdog with an Env-aware diagnostic hook (in-flight
  // transaction footprints, registered lock diagnostics, trace tail).
  void enableWatchdog(uint64_t budget_cycles);
  void setCycleLimit(uint64_t limit_cycles) {
    machine_.setCycleLimit(limit_cycles);
  }
  // Forward a progress event (commit, op boundary, lock release).
  void noteProgress(uint64_t clock) { machine_.noteProgress(clock); }
  // Locks register a diagnostic appender so a watchdog dump can name the
  // owner of the fallback lock. Returns an id for unregisterDiag.
  uint64_t registerDiag(std::function<void(std::string&)> fn);
  void unregisterDiag(uint64_t id);
  // The Env-level portion of the watchdog diagnostic (deterministic).
  void appendDiagnostic(std::string& out);

  // Number of transactions currently in flight. When zero, raw memory holds
  // only committed state (useful for debug auditing).
  int inFlightCount() const { return in_flight_count_; }

  // Debug: cross-check every in-flight transaction's footprint against the
  // directory (readers registered, writers exclusive, no stale entries).
  // Aborts the process on violation. Extremely slow; only for bug hunts.
  void setDebugAudit(bool on) { debug_audit_ = on; }
  // Debug: dump every in-flight transaction's footprint to stderr.
  void debugDumpInFlight(uint64_t interesting_line);
  void auditConsistency(const char* where);
  // Debug: invoked inside txCommit after the transaction retires (and the
  // committing ThreadCtx passed), before any yield.
  std::function<void(ThreadCtx&)> debug_on_commit;
  // Debug: when >= 0, every access by this tid is logged to stderr.
  int debug_trace_tid = -1;
  // Debug: the value `addr` would hold if every in-flight transaction were
  // rolled back (write sets are disjoint, so this is well-defined).
  uint64_t debugCommittedValue(const void* addr, uint8_t size);

 private:
  friend class ThreadCtx;

  sim::Machine machine_;
  mem::MemorySystem mem_;
  std::deque<TxStats> stats_;
  std::deque<std::unique_ptr<ThreadCtx>> ctxs_;
  uint64_t stats_start_ = 0;

  std::unique_ptr<sim::SimThread> setup_thread_;
  std::unique_ptr<ThreadCtx> setup_ctx_;
  int in_flight_count_ = 0;
  bool debug_audit_ = false;
  obs::Tracer* tracer_ = nullptr;
  std::unique_ptr<fault::FaultSchedule> faults_;
  std::vector<std::pair<uint64_t, std::function<void(std::string&)>>> diags_;
  uint64_t next_diag_id_ = 1;
};

}  // namespace natle::htm
