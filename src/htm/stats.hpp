// Per-thread event counters. Counters only accumulate once the thread's
// clock passes Env::statsStart() (the measurement window after warmup), so
// trial statistics exclude cache/profiling warmup.
#pragma once

#include <cstdint>

#include "htm/abort.hpp"

namespace natle::htm {

struct TxStats {
  // Transactions.
  uint64_t tx_begins = 0;
  uint64_t tx_commits = 0;
  uint64_t tx_aborts[kAbortReasonCount] = {};
  // Commits whose attempt sequence (since the last successful commit or
  // fallback) contained at least one abort with the hint bit clear — the
  // numerator of the paper's Figure 2(b).
  uint64_t commits_after_hintclear_fail = 0;
  // Fallback lock acquisitions (the transaction path gave up).
  uint64_t lock_acquires = 0;

  // Memory system.
  uint64_t l1_hits = 0;
  uint64_t local_hits = 0;
  uint64_t remote_transfers = 0;
  uint64_t dram_misses = 0;  // LLC misses in the paper's terminology

  // Workload-level operations (filled by the harness).
  uint64_t ops = 0;

  uint64_t totalAborts() const {
    uint64_t n = 0;
    for (auto a : tx_aborts) n += a;
    return n;
  }

  TxStats& operator+=(const TxStats& o) {
    tx_begins += o.tx_begins;
    tx_commits += o.tx_commits;
    for (int i = 0; i < kAbortReasonCount; ++i) tx_aborts[i] += o.tx_aborts[i];
    commits_after_hintclear_fail += o.commits_after_hintclear_fail;
    lock_acquires += o.lock_acquires;
    l1_hits += o.l1_hits;
    local_hits += o.local_hits;
    remote_transfers += o.remote_transfers;
    dram_misses += o.dram_misses;
    ops += o.ops;
    return *this;
  }
};

}  // namespace natle::htm
