// Minimal JSON reader for result-file ingestion (--resume, isolate-mode
// child records). The DOM keeps the exact source slice of every value next
// to the decoded form, so numbers round-trip losslessly: a uint64 counter
// above 2^53 re-parses via from_chars on the raw text instead of through a
// double, and a resumed record can be re-emitted byte-for-byte.
//
// Parsing is strict where the writer is (JsonWriter output always parses)
// and tolerant of insignificant whitespace. No external dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace natle::workload {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;    // decoded value for kNumber
  std::string str;      // unescaped text for kString
  std::string raw;      // exact source text of this value (any kind)
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject, in order

  bool isNull() const { return kind == Kind::kNull; }
  bool isObject() const { return kind == Kind::kObject; }
  bool isArray() const { return kind == Kind::kArray; }
  bool isNumber() const { return kind == Kind::kNumber; }
  bool isString() const { return kind == Kind::kString; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  // Integer re-parse from the raw slice (exact for the full uint64/int64
  // range). Returns the fallback when the raw text is not a plain integer.
  uint64_t asU64(uint64_t fallback = 0) const;
  int64_t asI64(int64_t fallback = 0) const;
};

// Parse one JSON document (leading/trailing whitespace allowed). On failure
// returns false and, when err != nullptr, stores a message with the byte
// offset of the problem.
bool parseJson(std::string_view text, JsonValue* out, std::string* err);

}  // namespace natle::workload
