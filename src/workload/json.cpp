#include "workload/json.hpp"

#include "htm/abort.hpp"
#include "htm/stats.hpp"
#include "sim/config.hpp"
#include "sim/topology.hpp"
#include "workload/setbench.hpp"

namespace natle::workload {

void appendJson(JsonWriter& w, const sim::MachineConfig& m) {
  w.beginObject();
  w.key("sockets").value(m.sockets);
  w.key("cores_per_socket").value(m.cores_per_socket);
  w.key("threads_per_core").value(m.threads_per_core);
  w.key("ghz").value(m.ghz);
  w.key("l1_hit").value(static_cast<uint64_t>(m.l1_hit));
  w.key("local_hit").value(static_cast<uint64_t>(m.local_hit));
  w.key("local_dram").value(static_cast<uint64_t>(m.local_dram));
  w.key("remote_transfer").value(static_cast<uint64_t>(m.remote_transfer));
  w.key("remote_inval").value(static_cast<uint64_t>(m.remote_inval));
  w.key("link_occupancy").value(static_cast<uint64_t>(m.link_occupancy));
  w.key("remote_dram").value(static_cast<uint64_t>(m.remote_dram));
  w.key("store_upgrade").value(static_cast<uint64_t>(m.store_upgrade));
  w.key("ht_penalty").value(m.ht_penalty);
  w.key("l1_sets").value(static_cast<uint64_t>(m.l1_sets));
  w.key("l1_ways").value(static_cast<uint64_t>(m.l1_ways));
  w.key("seed").value(m.seed);
  // Topology keys appear only for multi-hop machines so default (glueless)
  // configs keep the exact byte layout of earlier result files.
  if (!m.distance.empty()) {
    w.key("distance");  // row-major socket-pair hops
    w.beginArray();
    for (uint8_t h : m.distance) w.value(static_cast<uint64_t>(h));
    w.endArray();
    w.key("hop_factor").value(m.hop_factor);
  }
  w.endObject();
}

void appendJson(JsonWriter& w, const sync::TlePolicy& p) {
  w.beginObject();
  w.key("max_attempts").value(p.max_attempts);
  w.key("respect_hint_bit").value(p.respect_hint_bit);
  w.key("count_lock_held").value(p.count_lock_held);
  w.key("precommit_delay").value(p.precommit_delay);
  w.endObject();
}

void appendJson(JsonWriter& w, const sync::NatleConfig& c) {
  w.beginObject();
  w.key("profiling_ms").value(c.profiling_ms);
  w.key("quanta").value(c.quanta);
  w.key("min_acquisitions").value(c.min_acquisitions);
  w.key("wait_cycles").value(c.wait_cycles);
  w.endObject();
}

void appendJson(JsonWriter& w, const SetBenchConfig& c) {
  w.beginObject();
  w.key("machine");
  appendJson(w, c.machine);
  w.key("nthreads").value(c.nthreads);
  w.key("key_range").value(c.key_range);
  w.key("update_pct").value(c.update_pct);
  w.key("search_replace").value(c.search_replace);
  w.key("ds").value(toString(c.ds));
  w.key("sync").value(toString(c.sync));
  w.key("tle");
  appendJson(w, c.tle);
  if (c.sync == SyncKind::kNatle) {
    w.key("natle");
    appendJson(w, c.natle);
  }
  w.key("pin").value(sim::toString(c.pin));
  w.key("warmup_ms").value(c.warmup_ms);
  w.key("measure_ms").value(c.measure_ms);
  w.key("ext_max_units").value(static_cast<uint64_t>(c.ext.max_units));
  w.key("op_overhead_cycles").value(c.op_overhead_cycles);
  w.key("seed").value(c.seed);
  // Adversity keys are emitted only when active so default configs keep the
  // exact byte layout of earlier result files.
  if (c.watchdog_ms > 0) w.key("watchdog_ms").value(c.watchdog_ms);
  if (c.cycle_limit_ms > 0) w.key("cycle_limit_ms").value(c.cycle_limit_ms);
  if (c.fault.enabled()) w.key("fault").value(c.fault.toSpecString());
  if (c.placement != mem::PlacePolicy::kFirstTouch) {
    w.key("placement").value(mem::toString(c.placement));
  }
  w.endObject();
}

// Abort breakdown keyed by hardware reason name, plus memory-system and
// fallback counters — the "abort breakdown" block of each JSON data point.
void appendJson(JsonWriter& w, const htm::TxStats& s) {
  w.beginObject();
  w.key("ops").value(s.ops);
  w.key("tx_begins").value(s.tx_begins);
  w.key("tx_commits").value(s.tx_commits);
  w.key("aborts");
  w.beginObject();
  for (int r = 1; r < htm::kAbortReasonCount; ++r) {
    w.key(htm::toString(static_cast<htm::AbortReason>(r)))
        .value(s.tx_aborts[r]);
  }
  w.endObject();
  w.key("commits_after_hintclear_fail").value(s.commits_after_hintclear_fail);
  w.key("lock_acquires").value(s.lock_acquires);
  w.key("l1_hits").value(s.l1_hits);
  w.key("local_hits").value(s.local_hits);
  w.key("remote_transfers").value(s.remote_transfers);
  w.key("dram_misses").value(s.dram_misses);
  w.endObject();
}

std::string toJson(const sim::MachineConfig& m) {
  JsonWriter w;
  appendJson(w, m);
  return w.take();
}

std::string toJson(const SetBenchConfig& c) {
  JsonWriter w;
  appendJson(w, c);
  return w.take();
}

std::string toJson(const htm::TxStats& s) {
  JsonWriter w;
  appendJson(w, s);
  return w.take();
}

}  // namespace natle::workload
