#include "workload/json_parse.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <cstring>

namespace natle::workload {

namespace {

struct Parser {
  std::string_view text;
  size_t pos = 0;
  std::string* err;
  int depth = 0;

  bool fail(const char* msg) {
    if (err != nullptr) {
      *err = std::string(msg) + " at byte " + std::to_string(pos);
    }
    return false;
  }

  void skipWs() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      pos++;
    }
  }

  bool literal(const char* word, size_t n) {
    if (text.size() - pos < n || text.compare(pos, n, word) != 0) {
      return fail("invalid literal");
    }
    pos += n;
    return true;
  }

  bool parseString(std::string* out) {
    // text[pos] == '"' checked by caller.
    pos++;
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        pos++;
        return true;
      }
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          return fail("unescaped control character in string");
        }
        out->push_back(c);
        pos++;
        continue;
      }
      if (pos + 1 >= text.size()) return fail("truncated escape");
      const char e = text[pos + 1];
      pos += 2;
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (text.size() - pos < 4) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos + static_cast<size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("invalid \\u escape");
            }
          }
          pos += 4;
          // UTF-8 encode. The writer only emits \u00xx, but accept the full
          // BMP; surrogate pairs are passed through as replacement bytes.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xc0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out->push_back(static_cast<char>(0xe0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseValue(JsonValue* out) {
    if (++depth > 64) return fail("nesting too deep");
    skipWs();
    if (pos >= text.size()) return fail("unexpected end of input");
    const size_t start = pos;
    const char c = text[pos];
    bool ok = false;
    switch (c) {
      case '{': {
        out->kind = JsonValue::Kind::kObject;
        pos++;
        skipWs();
        if (pos < text.size() && text[pos] == '}') {
          pos++;
          ok = true;
          break;
        }
        for (;;) {
          skipWs();
          if (pos >= text.size() || text[pos] != '"') {
            return fail("expected object key");
          }
          std::string key;
          if (!parseString(&key)) return false;
          skipWs();
          if (pos >= text.size() || text[pos] != ':') {
            return fail("expected ':'");
          }
          pos++;
          JsonValue v;
          if (!parseValue(&v)) return false;
          out->members.emplace_back(std::move(key), std::move(v));
          skipWs();
          if (pos >= text.size()) return fail("unterminated object");
          if (text[pos] == ',') {
            pos++;
            continue;
          }
          if (text[pos] == '}') {
            pos++;
            ok = true;
            break;
          }
          return fail("expected ',' or '}'");
        }
        break;
      }
      case '[': {
        out->kind = JsonValue::Kind::kArray;
        pos++;
        skipWs();
        if (pos < text.size() && text[pos] == ']') {
          pos++;
          ok = true;
          break;
        }
        for (;;) {
          JsonValue v;
          if (!parseValue(&v)) return false;
          out->items.push_back(std::move(v));
          skipWs();
          if (pos >= text.size()) return fail("unterminated array");
          if (text[pos] == ',') {
            pos++;
            continue;
          }
          if (text[pos] == ']') {
            pos++;
            ok = true;
            break;
          }
          return fail("expected ',' or ']'");
        }
        break;
      }
      case '"':
        out->kind = JsonValue::Kind::kString;
        if (!parseString(&out->str)) return false;
        ok = true;
        break;
      case 't':
        if (!literal("true", 4)) return false;
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        ok = true;
        break;
      case 'f':
        if (!literal("false", 5)) return false;
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        ok = true;
        break;
      case 'n':
        if (!literal("null", 4)) return false;
        out->kind = JsonValue::Kind::kNull;
        ok = true;
        break;
      default: {
        if (c != '-' && (c < '0' || c > '9')) return fail("unexpected token");
        size_t end = pos + 1;
        while (end < text.size()) {
          const char d = text[end];
          if ((d >= '0' && d <= '9') || d == '.' || d == '-' || d == '+' ||
              d == 'e' || d == 'E') {
            end++;
          } else {
            break;
          }
        }
        // strtod needs NUL termination; copy the (short) slice.
        const std::string num(text.substr(pos, end - pos));
        char* conv_end = nullptr;
        out->number = std::strtod(num.c_str(), &conv_end);
        if (conv_end != num.c_str() + num.size()) {
          return fail("invalid number");
        }
        out->kind = JsonValue::Kind::kNumber;
        pos = end;
        ok = true;
        break;
      }
    }
    if (!ok) return false;
    out->raw = std::string(text.substr(start, pos - start));
    depth--;
    return true;
  }
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

uint64_t JsonValue::asU64(uint64_t fallback) const {
  uint64_t v = 0;
  const char* b = raw.data();
  const char* e = b + raw.size();
  const auto [p, ec] = std::from_chars(b, e, v);
  return ec == std::errc() && p == e ? v : fallback;
}

int64_t JsonValue::asI64(int64_t fallback) const {
  int64_t v = 0;
  const char* b = raw.data();
  const char* e = b + raw.size();
  const auto [p, ec] = std::from_chars(b, e, v);
  return ec == std::errc() && p == e ? v : fallback;
}

bool parseJson(std::string_view text, JsonValue* out, std::string* err) {
  Parser p{text, 0, err, 0};
  if (!p.parseValue(out)) return false;
  p.skipWs();
  if (p.pos != text.size()) return p.fail("trailing content");
  return true;
}

}  // namespace natle::workload
