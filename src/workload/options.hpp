// Shared command-line/environment handling for bench binaries.
//
// Every bench runs standalone with fast defaults; `--full` lengthens trials
// and densifies the thread axis, and NATLE_SIM_SCALE=<float> scales the
// simulated measurement window (e.g. 0.25 for a quick smoke run).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace natle::workload {

struct BenchOptions {
  bool full = false;
  double time_scale = 1.0;

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions o;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) o.full = true;
    }
    if (const char* s = std::getenv("NATLE_SIM_SCALE")) {
      const double v = std::atof(s);
      if (v > 0) o.time_scale = v;
    }
    return o;
  }
};

// CSV row emitter: benches print `series,x,y[,extra]` so EXPERIMENTS.md and
// plotting scripts can consume the output uniformly.
inline void emitHeader(const char* bench, const char* extra_cols = nullptr) {
  std::printf("# bench=%s\n", bench);
  std::printf("series,x,y%s%s\n", extra_cols != nullptr ? "," : "",
              extra_cols != nullptr ? extra_cols : "");
}

inline void emitRow(const std::string& series, double x, double y) {
  std::printf("%s,%g,%g\n", series.c_str(), x, y);
}

inline void emitRow4(const std::string& series, double x, double y, double z) {
  std::printf("%s,%g,%g,%g\n", series.c_str(), x, y, z);
}

}  // namespace natle::workload
