// Shared command-line/environment handling for bench binaries.
//
// Every bench runs standalone with fast defaults; `--full` lengthens trials
// and densifies the thread axis, and NATLE_SIM_SCALE=<float> scales the
// simulated measurement window (e.g. 0.25 for a quick smoke run).
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace natle::workload {

struct BenchOptions {
  bool full = false;
  bool help = false;
  bool trace = false;  // attach the tracing subsystem; attribution in JSON
  double time_scale = 1.0;
  // Fault-schedule spec string (see fault::FaultSpec::parse) applied by
  // SetSweep to every planned point that does not set its own; empty = no
  // injected faults. Validated where fault.hpp is linked (CLI entry points).
  std::string fault_spec;
  // Livelock watchdog budget in simulated milliseconds, applied the same
  // way; 0 leaves the watchdog disarmed.
  double watchdog_ms = 0;
  // Data-placement policy name applied by SetSweep to every planned point
  // that keeps the default (see mem::parsePlacePolicy for spellings); empty
  // = leave each point's policy alone. Validated where mem/alloc is linked
  // (CLI entry points).
  std::string placement;
  // Traffic experiments only (service_*): arrival-process spec string (see
  // traffic::ArrivalSpec::parse, e.g. 'poisson:rate=300') applied to every
  // request class; empty = keep each experiment's built-in arrivals.
  // Validated where traffic/arrival is linked (CLI entry points).
  std::string arrival_spec;
  // Traffic experiments only: override the simulated measurement window
  // (ms) and the per-class SLO threshold (us); 0 keeps experiment defaults.
  double duration_ms = 0;
  double slo_us = 0;

  // Validated NATLE_SIM_SCALE parsing: the whole string must be a finite
  // number > 0 (atof's silent 0.0-on-garbage caused misconfigured runs to
  // quietly use scale 1.0 or 0).
  static bool parseScale(const char* s, double* out) {
    if (s == nullptr || *s == '\0') return false;
    char* end = nullptr;
    const double v = std::strtod(s, &end);
    if (end == s || *end != '\0') return false;
    if (!std::isfinite(v) || v <= 0) return false;
    *out = v;
    return true;
  }

  // Strict parser: recognizes --full and --help/-h, errors on anything else
  // (flags used to be silently ignored, hiding typos like --fulll), and
  // rejects garbage NATLE_SIM_SCALE values. On failure `*err` explains why.
  static bool tryParse(int argc, char** argv, BenchOptions* out,
                       std::string* err) {
    BenchOptions o;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) {
        o.full = true;
      } else if (std::strcmp(argv[i], "--trace") == 0) {
        o.trace = true;
      } else if (std::strncmp(argv[i], "--fault=", 8) == 0) {
        o.fault_spec = argv[i] + 8;
      } else if (std::strcmp(argv[i], "--fault") == 0 && i + 1 < argc) {
        o.fault_spec = argv[++i];
      } else if (std::strncmp(argv[i], "--placement=", 12) == 0) {
        o.placement = argv[i] + 12;
      } else if (std::strcmp(argv[i], "--placement") == 0 && i + 1 < argc) {
        o.placement = argv[++i];
      } else if (std::strncmp(argv[i], "--watchdog-ms=", 14) == 0 ||
                 (std::strcmp(argv[i], "--watchdog-ms") == 0 &&
                  i + 1 < argc)) {
        const char* v = argv[i][13] == '=' ? argv[i] + 14 : argv[++i];
        if (!parseScale(v, &o.watchdog_ms)) {
          if (err != nullptr) {
            *err = std::string("invalid --watchdog-ms value: \"") + v +
                   "\" (want a finite number > 0)";
          }
          return false;
        }
      } else if (std::strncmp(argv[i], "--arrival=", 10) == 0) {
        o.arrival_spec = argv[i] + 10;
      } else if (std::strcmp(argv[i], "--arrival") == 0 && i + 1 < argc) {
        o.arrival_spec = argv[++i];
      } else if (std::strncmp(argv[i], "--duration-ms=", 14) == 0 ||
                 (std::strcmp(argv[i], "--duration-ms") == 0 &&
                  i + 1 < argc)) {
        const char* v = argv[i][13] == '=' ? argv[i] + 14 : argv[++i];
        if (!parseScale(v, &o.duration_ms)) {
          if (err != nullptr) {
            *err = std::string("invalid --duration-ms value: \"") + v +
                   "\" (want a finite number > 0)";
          }
          return false;
        }
      } else if (std::strncmp(argv[i], "--slo-us=", 9) == 0 ||
                 (std::strcmp(argv[i], "--slo-us") == 0 && i + 1 < argc)) {
        const char* v = argv[i][8] == '=' ? argv[i] + 9 : argv[++i];
        if (!parseScale(v, &o.slo_us)) {
          if (err != nullptr) {
            *err = std::string("invalid --slo-us value: \"") + v +
                   "\" (want a finite number > 0)";
          }
          return false;
        }
      } else if (std::strcmp(argv[i], "--help") == 0 ||
                 std::strcmp(argv[i], "-h") == 0) {
        o.help = true;
      } else {
        if (err != nullptr) {
          *err = std::string("unknown argument: ") + argv[i];
        }
        return false;
      }
    }
    if (const char* s = std::getenv("NATLE_SIM_SCALE")) {
      if (!parseScale(s, &o.time_scale)) {
        if (err != nullptr) {
          *err = std::string("invalid NATLE_SIM_SCALE value: \"") + s +
                 "\" (want a finite number > 0)";
        }
        return false;
      }
    }
    *out = o;
    return true;
  }

  static void printUsage(const char* prog, std::FILE* to) {
    std::fprintf(to,
                 "usage: %s [--full] [--trace] [--fault SPEC] "
                 "[--placement P] [--watchdog-ms N] [--help]\n"
                 "  --full   denser thread axis, longer trials, 3 trials/point\n"
                 "  --trace  record transaction events; abort attribution "
                 "(killer matrix,\n"
                 "           hot lines, fallback episodes) is attached to JSON "
                 "records\n"
                 "  --fault SPEC     inject a deterministic fault schedule "
                 "into every point\n"
                 "                   (e.g. 'storm:rate=2e-4,period_ms=1,"
                 "duration_ms=0.2;seed=7')\n"
                 "  --placement P    data-placement policy for shared "
                 "allocations: first-touch\n"
                 "                   (default), interleave, allocator-socket, "
                 "adversarial-remote\n"
                 "  --watchdog-ms N  arm the livelock watchdog: fail a point "
                 "that makes no\n"
                 "                   progress for N simulated ms\n"
                 "traffic experiments (service_*):\n"
                 "  --arrival SPEC   arrival process for every request class "
                 "(e.g.\n"
                 "                   'poisson:rate=300', 'burst:rate=200,"
                 "on_ms=0.3,off_ms=0.7,mult=4')\n"
                 "  --duration-ms N  simulated measurement window in ms\n"
                 "  --slo-us N       per-class latency SLO threshold in us\n"
                 "environment:\n"
                 "  NATLE_SIM_SCALE=<float>  scale simulated trial length "
                 "(default 1.0)\n",
                 prog);
  }

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions o;
    std::string err;
    if (!tryParse(argc, argv, &o, &err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      printUsage(argc > 0 ? argv[0] : "bench", stderr);
      std::exit(2);
    }
    if (o.help) {
      printUsage(argc > 0 ? argv[0] : "bench", stdout);
      std::exit(0);
    }
    return o;
  }
};

// CSV row emitter: benches print `series,x,y[,extra]` so EXPERIMENTS.md and
// plotting scripts can consume the output uniformly.
inline void emitHeader(const char* bench, const char* extra_cols = nullptr) {
  std::printf("# bench=%s\n", bench);
  std::printf("series,x,y%s%s\n", extra_cols != nullptr ? "," : "",
              extra_cols != nullptr ? extra_cols : "");
}

inline void emitRow(const std::string& series, double x, double y) {
  std::printf("%s,%g,%g\n", series.c_str(), x, y);
}

inline void emitRow4(const std::string& series, double x, double y, double z) {
  std::printf("%s,%g,%g,%g\n", series.c_str(), x, y, z);
}

}  // namespace natle::workload
