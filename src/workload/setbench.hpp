// The paper's set-microbenchmark driver (Sections 3 and 5.1): threads
// repeatedly invoke insert/delete/lookup with uniformly random keys on a
// structure prefilled to half its key range, protected by one lock that is
// elided with TLE or NATLE (or, for the Figure 4 baseline, not synchronized
// at all), optionally doing random "external work" between operations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "htm/stats.hpp"
#include "mem/alloc.hpp"
#include "obs/attribution.hpp"
#include "sim/config.hpp"
#include "sim/topology.hpp"
#include "sync/natle.hpp"
#include "sync/tle.hpp"

namespace natle::workload {

enum class DsKind { kAvl, kLeafBst, kInternalBst, kSkipList };
enum class SyncKind { kTle, kNatle, kNone };

const char* toString(DsKind d);
const char* toString(SyncKind s);

// Random external work between operations: `units` is drawn uniformly from
// [0, max_units) and each unit burns cycles_per_unit cycles off-structure.
struct ExtWork {
  uint32_t max_units = 0;
  uint32_t cycles_per_unit = 12;
};

struct SetBenchConfig {
  sim::MachineConfig machine = sim::LargeMachine();
  int nthreads = 1;
  int64_t key_range = 2048;
  int update_pct = 100;  // updates split evenly insert/delete; rest lookups
  bool search_replace = false;  // Figure 4 workload
  DsKind ds = DsKind::kAvl;
  SyncKind sync = SyncKind::kTle;
  sync::TlePolicy tle;
  sync::NatleConfig natle;
  sim::PinPolicy pin = sim::PinPolicy::kFillSocketFirst;
  double warmup_ms = 1.0;   // simulated; stats excluded
  double measure_ms = 3.0;  // simulated measurement window
  int trials = 1;
  ExtWork ext;
  // Fixed harness overhead between operations (PRNG, dispatch, call
  // overhead); roughly 60ns at 2.3 GHz, matching a real benchmark loop.
  uint64_t op_overhead_cycles = 140;
  uint64_t seed = 1;
  // Adversity knobs (serialized into config JSON only when active, so
  // default runs keep their byte layout). fault injects the deterministic
  // fault schedule; watchdog_ms fails a trial that makes no progress for
  // that many simulated ms; cycle_limit_ms hard-caps total simulated time.
  fault::FaultSpec fault;
  double watchdog_ms = 0;
  double cycle_limit_ms = 0;
  // Data-placement policy for shared allocations (serialized into config
  // JSON only when non-default, preserving the default byte layout).
  mem::PlacePolicy placement = mem::PlacePolicy::kFirstTouch;
  // Observability (not serialized into config JSON: tracing is strictly
  // observational and never changes simulation results).
  bool trace = false;      // aggregate events into SetBenchResult.attribution
  bool trace_raw = false;  // additionally retain the raw stream (JSONL dump)
};

struct SetBenchResult {
  double mops = 0;  // committed operations per simulated second, millions
  htm::TxStats stats;
  double abort_rate = 0;               // aborts / tx begins
  double conflict_abort_fraction = 0;  // conflict aborts / all aborts
  double hintclear_commit_pct = 0;     // Figure 2(b) statistic
  std::vector<sync::NatleCycleDecision> natle_history;
  // Present when cfg.trace was set: event aggregation summed across trials.
  bool has_attribution = false;
  obs::Attribution attribution;
  std::string raw_trace;  // JSONL event stream (cfg.trace_raw only)
};

SetBenchResult runSetBench(const SetBenchConfig& cfg);

// Thread counts matching the paper's x axes (1..72 for the large machine,
// 1..8 for the small one), subsampled to keep bench runtimes reasonable.
std::vector<int> threadAxis(const sim::MachineConfig& m, bool full);

}  // namespace natle::workload
