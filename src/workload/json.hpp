// Minimal deterministic JSON emission.
//
// The experiment harness records every data point as a JSON object; output
// must be byte-stable across runs (the `-j1` vs `-jN` determinism guarantee
// rests on it), so numbers are rendered with std::to_chars shortest
// round-trip formatting and keys are emitted in insertion order.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace natle::workload {

class JsonWriter {
 public:
  JsonWriter& beginObject() { return open('{'); }
  JsonWriter& endObject() { return close('}'); }
  JsonWriter& beginArray() { return open('['); }
  JsonWriter& endArray() { return close(']'); }

  JsonWriter& key(std::string_view k) {
    comma();
    appendString(k);
    out_ += ':';
    pending_comma_ = false;
    return *this;
  }

  JsonWriter& value(double v) {
    comma();
    appendNumber(v);
    return *this;
  }
  JsonWriter& value(uint64_t v) {
    comma();
    char buf[24];
    auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
    (void)ec;
    out_.append(buf, p);
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(int64_t v) {
    comma();
    char buf[24];
    auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
    (void)ec;
    out_.append(buf, p);
    return *this;
  }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(std::string_view s) {
    comma();
    appendString(s);
    return *this;
  }
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }

  // Splice an already-serialized JSON fragment (e.g. a nested config object).
  JsonWriter& raw(std::string_view json) {
    comma();
    out_ += json;
    return *this;
  }

  JsonWriter& newline() {
    out_ += '\n';
    return *this;
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  JsonWriter& open(char c) {
    comma();
    out_ += c;
    pending_comma_ = false;
    return *this;
  }
  JsonWriter& close(char c) {
    out_ += c;
    pending_comma_ = true;
    return *this;
  }
  void comma() {
    if (pending_comma_) out_ += ',';
    pending_comma_ = true;
  }
  void appendNumber(double v) {
    char buf[32];
    auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
    (void)ec;
    out_.append(buf, p);
  }
  void appendString(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        case '\r': out_ += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  bool pending_comma_ = false;
};

}  // namespace natle::workload

namespace natle::sim {
struct MachineConfig;
}
namespace natle::htm {
struct TxStats;
}
namespace natle::sync {
struct TlePolicy;
struct NatleConfig;
}

namespace natle::workload {

struct SetBenchConfig;

// Result/config structs rendered as JSON objects (json.cpp).
void appendJson(JsonWriter& w, const sim::MachineConfig& m);
void appendJson(JsonWriter& w, const sync::TlePolicy& p);
void appendJson(JsonWriter& w, const sync::NatleConfig& c);
void appendJson(JsonWriter& w, const SetBenchConfig& c);
void appendJson(JsonWriter& w, const htm::TxStats& s);

std::string toJson(const sim::MachineConfig& m);
std::string toJson(const SetBenchConfig& c);
std::string toJson(const htm::TxStats& s);

}  // namespace natle::workload
