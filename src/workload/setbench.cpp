#include "workload/setbench.hpp"

#include <memory>

#include "ds/avl.hpp"
#include "ds/bst_internal.hpp"
#include "ds/bst_leaf.hpp"
#include "ds/skiplist.hpp"
#include "htm/env.hpp"
#include "obs/trace.hpp"

namespace natle::workload {

const char* toString(DsKind d) {
  switch (d) {
    case DsKind::kAvl: return "avl";
    case DsKind::kLeafBst: return "leaf-bst";
    case DsKind::kInternalBst: return "internal-bst";
    case DsKind::kSkipList: return "skiplist";
  }
  return "?";
}

const char* toString(SyncKind s) {
  switch (s) {
    case SyncKind::kTle: return "tle";
    case SyncKind::kNatle: return "natle";
    case SyncKind::kNone: return "nosync";
  }
  return "?";
}

namespace {

// Type-erased set facade so one worker loop serves all four structures.
struct AnySet {
  virtual ~AnySet() = default;
  virtual bool contains(htm::ThreadCtx& c, int64_t k) = 0;
  virtual bool insert(htm::ThreadCtx& c, int64_t k) = 0;
  virtual bool erase(htm::ThreadCtx& c, int64_t k) = 0;
  virtual void searchReplace(htm::ThreadCtx& c, int64_t k) = 0;
};

template <typename S>
struct SetOf : AnySet {
  explicit SetOf(htm::Env& env) : s(env) {}
  bool contains(htm::ThreadCtx& c, int64_t k) override { return s.contains(c, k); }
  bool insert(htm::ThreadCtx& c, int64_t k) override { return s.insert(c, k); }
  bool erase(htm::ThreadCtx& c, int64_t k) override { return s.erase(c, k); }
  void searchReplace(htm::ThreadCtx& c, int64_t k) override {
    if constexpr (std::is_same_v<S, ds::AvlTree>) {
      s.searchReplace(c, k);
    } else {
      s.contains(c, k);
    }
  }
  S s;
};

std::unique_ptr<AnySet> makeSet(DsKind kind, htm::Env& env) {
  switch (kind) {
    case DsKind::kAvl: return std::make_unique<SetOf<ds::AvlTree>>(env);
    case DsKind::kLeafBst: return std::make_unique<SetOf<ds::LeafBst>>(env);
    case DsKind::kInternalBst:
      return std::make_unique<SetOf<ds::InternalBst>>(env);
    case DsKind::kSkipList: return std::make_unique<SetOf<ds::SkipList>>(env);
  }
  return nullptr;
}

}  // namespace

SetBenchResult runSetBench(const SetBenchConfig& cfg) {
  SetBenchResult agg;
  double mops_sum = 0;
  for (int trial = 0; trial < cfg.trials; ++trial) {
    sim::MachineConfig mc = cfg.machine;
    mc.seed = cfg.seed + 1000003ULL * static_cast<uint64_t>(trial);
    htm::Env env(mc, true, cfg.placement);
    auto set = makeSet(cfg.ds, env);

    // Prefill to ~half of the key range in random order, as the paper does
    // (random prefill also decorrelates node addresses from key order, which
    // otherwise makes search paths collide in one L1 set).
    {
      auto& sc = env.setupCtx();
      sim::Rng pre(mc.seed ^ 0xabcdef);
      std::vector<int64_t> keys(cfg.key_range);
      for (int64_t k = 0; k < cfg.key_range; ++k) keys[k] = k;
      for (size_t i = keys.size(); i > 1; --i) {
        std::swap(keys[i - 1], keys[pre.below(i)]);
      }
      for (size_t i = 0; i < keys.size() / 2; ++i) set->insert(sc, keys[i]);
    }

    // unique_ptr, not raw new: a tripped watchdog throws out of env.run()
    // and the locks must still unregister their diagnostics. Declared after
    // `env` so they are destroyed first.
    std::unique_ptr<sync::TleLock> tle;
    std::unique_ptr<sync::NatleLock> natle;
    if (cfg.sync == SyncKind::kTle) {
      tle = std::make_unique<sync::TleLock>(env, cfg.tle);
    } else if (cfg.sync == SyncKind::kNatle) {
      natle = std::make_unique<sync::NatleLock>(env, cfg.tle, cfg.natle);
      natle->setActiveRows(cfg.nthreads < 128 ? 128 : cfg.nthreads);
    }

    const uint64_t t_end = mc.msToCycles(cfg.warmup_ms + cfg.measure_ms);
    env.setStatsStart(mc.msToCycles(cfg.warmup_ms));

    // Adversity hooks. Prefill above runs before installation, so fault
    // windows only ever perturb the spawned workers, never setup.
    if (cfg.fault.enabled()) env.installFaults(cfg.fault);
    if (cfg.watchdog_ms > 0) env.enableWatchdog(mc.msToCycles(cfg.watchdog_ms));
    if (cfg.cycle_limit_ms > 0) {
      env.setCycleLimit(mc.msToCycles(cfg.cycle_limit_ms));
    }

    // One tracer per trial so fallback episodes never span trial boundaries;
    // attribution is summed across trials below.
    std::unique_ptr<obs::Tracer> tracer;
    if (cfg.trace) {
      tracer = std::make_unique<obs::Tracer>(cfg.trace_raw);
      // Attribution buckets aborts by hop distance on multi-hop topologies
      // (no-op on the default all-adjacent machines, keeping JSON layout).
      std::vector<uint8_t> hops(static_cast<size_t>(mc.sockets) * mc.sockets);
      for (int a = 0; a < mc.sockets; ++a) {
        for (int b = 0; b < mc.sockets; ++b) {
          hops[static_cast<size_t>(a) * mc.sockets + b] =
              static_cast<uint8_t>(a == b ? 0 : mc.hops(a, b));
        }
      }
      tracer->setTopology(mc.sockets, std::move(hops));
      env.setTracer(tracer.get());
    }

    for (int i = 0; i < cfg.nthreads; ++i) {
      const sim::HwSlot slot = sim::placeThread(mc, cfg.pin, i);
      const bool pinned = cfg.pin != sim::PinPolicy::kUnpinned;
      env.spawnWorker(
          [&, t_end](htm::ThreadCtx& ctx) {
            auto& rng = ctx.rng();
            while (ctx.nowCycles() < t_end) {
              ctx.opBoundary();
              const int64_t key =
                  static_cast<int64_t>(rng.below(static_cast<uint64_t>(cfg.key_range)));
              const bool count = ctx.nowCycles() >= ctx.env().statsStart();
              if (cfg.search_replace) {
                if (cfg.sync == SyncKind::kNone) {
                  set->searchReplace(ctx, key);
                } else if (tle) {
                  tle->execute(ctx, [&] { set->searchReplace(ctx, key); });
                } else {
                  natle->execute(ctx, [&] { set->searchReplace(ctx, key); });
                }
              } else {
                const bool is_update =
                    rng.below(100) < static_cast<uint64_t>(cfg.update_pct);
                const bool is_insert = (rng.next() & 1) != 0;
                auto op = [&] {
                  if (!is_update) {
                    set->contains(ctx, key);
                  } else if (is_insert) {
                    set->insert(ctx, key);
                  } else {
                    set->erase(ctx, key);
                  }
                };
                if (cfg.sync == SyncKind::kNone) {
                  op();
                } else if (tle) {
                  tle->execute(ctx, op);
                } else {
                  natle->execute(ctx, op);
                }
              }
              if (count) ctx.stats().ops++;
              // Per-operation harness overhead: key generation, dispatch and
              // the lock-library call in a real benchmark loop.
              ctx.work(cfg.op_overhead_cycles);
              if (cfg.ext.max_units > 0) {
                ctx.work(rng.below(cfg.ext.max_units) * cfg.ext.cycles_per_unit);
              }
            }
          },
          slot, pinned);
    }
    env.run();

    const htm::TxStats t = env.totals();
    agg.stats += t;
    if (tracer != nullptr) {
      agg.has_attribution = true;
      agg.attribution += tracer->attribution();
      if (cfg.trace_raw) agg.raw_trace += tracer->dumpJsonl();
    }
    mops_sum += static_cast<double>(t.ops) /
                (cfg.measure_ms * 1e-3) / 1e6;
    if (natle) agg.natle_history = natle->history();
  }
  agg.mops = mops_sum / cfg.trials;
  const auto& s = agg.stats;
  const uint64_t aborts = s.totalAborts();
  agg.abort_rate =
      s.tx_begins > 0 ? static_cast<double>(aborts) / static_cast<double>(s.tx_begins) : 0;
  agg.conflict_abort_fraction =
      aborts > 0 ? static_cast<double>(
                       s.tx_aborts[static_cast<int>(htm::AbortReason::kConflict)]) /
                       static_cast<double>(aborts)
                 : 0;
  agg.hintclear_commit_pct =
      s.tx_commits > 0
          ? 100.0 * static_cast<double>(s.commits_after_hintclear_fail) /
                static_cast<double>(s.tx_commits)
          : 0;
  return agg;
}

std::vector<int> threadAxis(const sim::MachineConfig& m, bool full) {
  const int total = m.totalThreads();
  std::vector<int> axis;
  if (total <= 8) {
    for (int i = 1; i <= total; ++i) axis.push_back(i);
    return axis;
  }
  if (full) {
    for (int i = 1; i <= total; ++i) axis.push_back(i);
    return axis;
  }
  // Dense where the paper's action is: around socket boundaries.
  const int half = total / 2;
  for (int i : {1, 2, 4, 8, 12, 18, 24, 30, half - 2, half, half + 1, half + 2,
                half + 4, half + 8, half + 12, half + 18, total - 9, total}) {
    if (i >= 1 && i <= total && (axis.empty() || i > axis.back())) {
      axis.push_back(i);
    }
  }
  return axis;
}

}  // namespace natle::workload
