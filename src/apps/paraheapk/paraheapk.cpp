#include "apps/paraheapk/paraheapk.hpp"

#include <memory>

#include "ds/dheap.hpp"
#include "htm/env.hpp"
#include "sim/barrier.hpp"
#include "sync/elide.hpp"

namespace natle::apps::paraheapk {

namespace {
constexpr int kCentroids = 8;
constexpr int kDims = 3;  // galactic coordinates
constexpr int kCounters = 6;
constexpr int kIterations = 12;
}  // namespace

ParaheapResult runParaheapK(const ParaheapConfig& cfg) {
  sim::MachineConfig mc = cfg.machine;
  mc.seed = cfg.seed;
  htm::Env env(mc);

  // The seven critical sections: six counters + the heap, each with its own
  // lock (an interesting multi-lock case for NATLE, per the paper).
  std::vector<std::unique_ptr<sync::ElisionLock>> counter_locks;
  for (int i = 0; i < kCounters; ++i) {
    counter_locks.push_back(std::make_unique<sync::ElisionLock>(
        env, cfg.natle, sync::TlePolicy{}, cfg.natle_cfg));
  }
  sync::ElisionLock heap_lock(env, cfg.natle, sync::TlePolicy{}, cfg.natle_cfg);
  ds::DHeap heap(env, 256);
  auto* counters = static_cast<int64_t*>(
      env.allocShared(kCounters * 8 * sizeof(int64_t)));
  for (int i = 0; i < kCounters * 8; ++i) counters[i] = 0;

  const int64_t npoints = static_cast<int64_t>(6000 * cfg.scale);
  auto* points = static_cast<int64_t*>(env.allocShared(
      static_cast<size_t>(npoints) * 8 * sizeof(int64_t)));
  auto* centroids = static_cast<int64_t*>(
      env.allocShared(kCentroids * 8 * sizeof(int64_t)));
  {
    sim::Rng gen(cfg.seed ^ 0x9a1a);
    for (int64_t p = 0; p < npoints; ++p) {
      const int64_t cluster = static_cast<int64_t>(gen.below(kCentroids));
      for (int d = 0; d < kDims; ++d) {
        points[p * 8 + d] =
            cluster * 1000 + static_cast<int64_t>(gen.below(300));
      }
    }
    for (int c = 0; c < kCentroids; ++c) {
      for (int d = 0; d < kDims; ++d) {
        centroids[c * 8 + d] = static_cast<int64_t>(gen.below(8000));
      }
    }
  }
  // Per-worker partial sums, one row of lines per worker slot. Zeroed
  // explicitly: the coordinator reads these after every phase (including
  // phase 0, which never writes them), and arena memory recycled from an
  // earlier run in the same process is not zero.
  auto* partial = static_cast<int64_t*>(env.allocShared(
      static_cast<size_t>(cfg.nthreads) * kCentroids * 8 * sizeof(int64_t)));
  for (int64_t i = 0; i < static_cast<int64_t>(cfg.nthreads) * kCentroids * 8;
       ++i) {
    partial[i] = 0;
  }

  const int64_t per_thread = (npoints + cfg.nthreads - 1) / cfg.nthreads;

  // Coordinator: creates (and optionally pins) fresh workers twice per
  // iteration — paraheap-k's defining costly habit.
  env.spawnWorker(
      [&](htm::ThreadCtx& coord) {
        for (int iter = 0; iter < kIterations; ++iter) {
          for (int phase = 0; phase < 2; ++phase) {
            sim::Barrier done(env.machine(), cfg.nthreads + 1);
            for (int i = 0; i < cfg.nthreads; ++i) {
              coord.work(env.cfg().thread_create_cost);
              const auto slot = sim::placeThread(
                  mc,
                  cfg.pin_threads ? sim::PinPolicy::kFillSocketFirst
                                  : sim::PinPolicy::kUnpinned,
                  i);
              env.spawnWorker(
                  [&, i, phase](htm::ThreadCtx& ctx) {
                    if (cfg.pin_threads) {
                      ctx.work(env.cfg().thread_pin_cost);
                    }
                    const int64_t begin = i * per_thread;
                    const int64_t end =
                        std::min<int64_t>(npoints, begin + per_thread);
                    for (int64_t p = begin; p < end; ++p) {
                      ctx.opBoundary();
                      // Distance computation (local math).
                      int64_t best = 0;
                      int64_t best_d2 = INT64_MAX;
                      for (int c = 0; c < kCentroids; ++c) {
                        int64_t d2 = 0;
                        for (int d = 0; d < kDims; ++d) {
                          const int64_t delta =
                              ctx.load(points[p * 8 + d]) -
                              ctx.load(centroids[c * 8 + d]);
                          d2 += delta * delta;
                        }
                        if (d2 < best_d2) {
                          best_d2 = d2;
                          best = c;
                        }
                      }
                      if (phase == 0) {
                        // Association phase: outliers go through the heap.
                        if (best_d2 > 250000) {
                          heap_lock.execute(ctx, [&] {
                            if (heap.size(ctx) >=
                                static_cast<int64_t>(heap.capacity())) {
                              int64_t prio = 0, payload = 0;
                              heap.pop(ctx, prio, payload);
                            }
                            heap.push(ctx, best_d2, p);
                          });
                        }
                        // One of the six short counter critical sections.
                        const int which = static_cast<int>(p % kCounters);
                        counter_locks[which]->execute(ctx, [&] {
                          ctx.store(counters[which * 8],
                                    ctx.load(counters[which * 8]) + 1);
                        });
                      } else {
                        // Recalculation phase: local partial sums.
                        int64_t* row = partial + (i * kCentroids + best) * 8;
                        ctx.store(row[0], ctx.load(row[0]) + 1);
                        const int which = static_cast<int>(best % kCounters);
                        counter_locks[which]->execute(ctx, [&] {
                          ctx.store(counters[which * 8],
                                    ctx.load(counters[which * 8]) + 1);
                        });
                      }
                      ctx.work(90);
                    }
                    done.arrive(ctx.simThread());
                  },
                  slot, cfg.pin_threads, coord.nowCycles());
            }
            done.arrive(coord.simThread());
            // Nudge centroids from the partial counts (cheap, coordinator).
            for (int c = 0; c < kCentroids; ++c) {
              int64_t n = 0;
              for (int i = 0; i < cfg.nthreads; ++i) {
                n += coord.load(partial[(i * kCentroids + c) * 8]);
              }
              if (n > 0) {
                coord.store(centroids[c * 8], coord.load(centroids[c * 8]) + 1);
              }
            }
          }
        }
      },
      sim::placeThread(mc, sim::PinPolicy::kFillSocketFirst, 0));
  env.run();

  ParaheapResult r;
  r.sim_ms = static_cast<double>(env.machine().maxFinishClock()) / (mc.ghz * 1e6);
  r.iterations = kIterations;
  return r;
}

}  // namespace natle::apps::paraheapk
