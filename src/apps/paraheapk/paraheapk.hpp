// paraheap-k substitute (Jenne et al., Computer 2014): heap-based parallel
// k-means over galactic coordinates. The properties the paper's evaluation
// depends on are structural and preserved here: (1) seven critical sections
// — six tiny shared-counter updates and one heap insert — each behind its
// own lock; (2) worker threads are created (and pinned) afresh *twice per
// iteration*, so with pinning enabled the creation/pinning overhead eats
// most of NATLE's benefit, while unpinned runs show it clearly. Input is a
// synthetic Gaussian-mixture star field instead of the survey file.
#pragma once

#include "sim/config.hpp"
#include "sim/topology.hpp"
#include "sync/natle.hpp"

namespace natle::apps::paraheapk {

struct ParaheapConfig {
  sim::MachineConfig machine = sim::LargeMachine();
  int nthreads = 1;
  bool natle = false;
  bool pin_threads = true;  // paraheap-k pins each freshly created worker
  double scale = 1.0;
  uint64_t seed = 1;
  sync::NatleConfig natle_cfg{.profiling_ms = 0.1};
};

struct ParaheapResult {
  double sim_ms = 0;  // processing time (input parsing excluded, as in the paper)
  int iterations = 0;
};

ParaheapResult runParaheapK(const ParaheapConfig&);

}  // namespace natle::apps::paraheapk
