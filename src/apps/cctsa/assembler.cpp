#include "apps/cctsa/cctsa.hpp"

#include "ds/hashmap.hpp"
#include "htm/env.hpp"
#include "sim/barrier.hpp"
#include "sync/elide.hpp"

namespace natle::apps::cctsa {

namespace {

constexpr int kReadLen = 36;
constexpr int kKmer = 16;
constexpr int kCoverage = 6;

// 2-bit packed k-mer starting at `pos` of the synthetic genome.
uint64_t kmerAt(const std::vector<uint8_t>& genome, size_t pos) {
  uint64_t v = 0;
  for (int i = 0; i < kKmer; ++i) {
    v = (v << 2) | genome[(pos + i) % genome.size()];
  }
  return v;
}

}  // namespace

CctsaResult runCctsa(const CctsaConfig& cfg) {
  sim::MachineConfig mc = cfg.machine;
  mc.seed = cfg.seed;
  htm::Env env(mc);
  sync::ElisionLock lock(env, cfg.natle, sync::TlePolicy{}, cfg.natle_cfg);
  if (lock.natle() != nullptr) {
    lock.natle()->setActiveRows(cfg.nthreads < 128 ? 128 : cfg.nthreads);
  }

  // Synthetic genome and read set.
  const size_t genome_len = static_cast<size_t>(60000 * cfg.scale);
  const size_t nreads = genome_len * kCoverage / kReadLen;
  std::vector<uint8_t> genome(genome_len);
  std::vector<uint32_t> read_pos(nreads);
  {
    sim::Rng gen(cfg.seed ^ 0xcc75a);
    for (auto& b : genome) b = static_cast<uint8_t>(gen.below(4));
    for (auto& p : read_pos) {
      p = static_cast<uint32_t>(gen.below(genome_len));
    }
  }

  ds::HashMap kmer_table(env, 1 << 16, false);
  auto* new_kmers = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *new_kmers = 0;
  auto* links = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *links = 0;
  auto* cursor = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *cursor = 0;
  auto* cursor2 = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *cursor2 = 0;
  sim::Barrier barrier(env.machine(), cfg.nthreads);

  for (int i = 0; i < cfg.nthreads; ++i) {
    const auto slot = sim::placeThread(mc, cfg.pin, i);
    const bool pinned = cfg.pin != sim::PinPolicy::kUnpinned;
    env.spawnWorker(
        [&](htm::ThreadCtx& ctx) {
          // Phase 1: index every k-mer of every read in the shared table.
          for (;;) {
            const int64_t r = ctx.fetchAdd(*cursor, int64_t{1});
            if (r >= static_cast<int64_t>(nreads)) break;
            ctx.opBoundary();
            const size_t base = read_pos[static_cast<size_t>(r)];
            for (int off = 0; off + kKmer <= kReadLen; off += 5) {
              const uint64_t kmer = kmerAt(genome, base + off);
              ctx.work(140);  // extract and pack the subsequence
              int64_t occurrences = 0;
              lock.execute(ctx, [&] {
                occurrences =
                    kmer_table.upsertAdd(ctx, static_cast<int64_t>(kmer), 1);
              });
              if (occurrences == 1) ctx.fetchAdd(*new_kmers, int64_t{1});
            }
          }
          barrier.arrive(ctx.simThread());
          // Phase 2: extend contigs — look up each read's terminal k-mer's
          // successor candidates in the table.
          for (;;) {
            const int64_t r = ctx.fetchAdd(*cursor2, int64_t{1});
            if (r >= static_cast<int64_t>(nreads)) break;
            ctx.opBoundary();
            const size_t base = read_pos[static_cast<size_t>(r)];
            const uint64_t tail = kmerAt(genome, base + kReadLen - kKmer);
            ctx.work(120);
            bool hit = false;
            lock.execute(ctx, [&] {
              int64_t count = 0;
              hit = kmer_table.get(ctx, static_cast<int64_t>(tail), count) &&
                    count >= 2;
            });
            if (hit) ctx.fetchAdd(*links, int64_t{1});
          }
        },
        slot, pinned);
  }
  env.run();

  CctsaResult r;
  r.sim_ms = static_cast<double>(env.machine().maxFinishClock()) / (mc.ghz * 1e6);
  r.kmers_indexed = static_cast<uint64_t>(*new_kmers);
  r.contig_links = static_cast<uint64_t>(*links);
  if (lock.natle() != nullptr) r.natle_history = lock.natle()->history();
  return r;
}

}  // namespace natle::apps::cctsa
