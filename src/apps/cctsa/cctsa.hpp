// ccTSA substitute: a coverage-centric de-novo sequence assembler with the
// transactified design the paper evaluates (Dice et al., PPoPP 2016): one
// single lock-protected hash map holds every sub-sequence (k-mer) during
// processing. The paper feeds it E. coli reads; we generate a synthetic
// genome and reads with the same shape (fixed-length reads, configurable
// coverage, k-mer subsequences), which preserves the only property the
// evaluation depends on — a single hot hash map under short insert/lookup
// critical sections.
#pragma once

#include <vector>

#include "sim/config.hpp"
#include "sim/topology.hpp"
#include "sync/natle.hpp"

namespace natle::apps::cctsa {

struct CctsaConfig {
  sim::MachineConfig machine = sim::LargeMachine();
  int nthreads = 1;
  bool natle = false;
  sim::PinPolicy pin = sim::PinPolicy::kFillSocketFirst;
  double scale = 1.0;
  uint64_t seed = 1;
  sync::NatleConfig natle_cfg{.profiling_ms = 0.1};
};

struct CctsaResult {
  double sim_ms = 0;
  uint64_t kmers_indexed = 0;
  uint64_t contig_links = 0;
  // NATLE's per-cycle decisions (Figure 18(b)).
  std::vector<sync::NatleCycleDecision> natle_history;
};

CctsaResult runCctsa(const CctsaConfig&);

}  // namespace natle::apps::cctsa
