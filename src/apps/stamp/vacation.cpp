// STAMP vacation: a travel-reservation system. Three relation tables
// (flights, rooms, cars) and a customer table, all hash maps behind the one
// elided lock. Each task queries q random items across the tables, reserves
// the best one (decrement availability) and records it for the customer.
// "High contention" uses a smaller relation count and longer queries, so
// transactions overlap far more often.
#include "apps/stamp/common.hpp"
#include "ds/hashmap.hpp"

namespace natle::apps::stamp {

namespace {

StampResult runVacation(const StampConfig& cfg, int64_t relations,
                        int queries) {
  AppRun app(cfg);
  auto& env = app.env();
  ds::HashMap flights(env, static_cast<size_t>(relations), false);
  ds::HashMap rooms(env, static_cast<size_t>(relations), false);
  ds::HashMap cars(env, static_cast<size_t>(relations), false);
  ds::HashMap customers(env, 4096, false);
  {
    auto& sc = app.setup();
    for (int64_t i = 0; i < relations; ++i) {
      flights.insert(sc, i, 100);
      rooms.insert(sc, i, 100);
      cars.insert(sc, i, 100);
    }
  }
  const int64_t tasks = static_cast<int64_t>(24000 * cfg.scale);
  WorkCursor cursor(env, tasks, 16);

  app.parallel([&](htm::ThreadCtx& ctx, int) {
    auto& rng = ctx.rng();
    int64_t b = 0, e = 0;
    while (cursor.claim(ctx, b, e)) {
      for (int64_t t = b; t < e; ++t) {
        ctx.opBoundary();
        ds::HashMap* tables[3] = {&flights, &rooms, &cars};
        ds::HashMap& table = *tables[rng.below(3)];
        const int64_t customer = static_cast<int64_t>(rng.below(4096));
        // Pre-draw the query ids (the task definition, outside the tx).
        int64_t ids[16];
        for (int q = 0; q < queries; ++q) {
          ids[q] = static_cast<int64_t>(rng.below(relations));
        }
        app.lock().execute(ctx, [&] {
          // Query phase: find the queried item with the most availability.
          int64_t best = -1;
          int64_t best_avail = 0;
          for (int q = 0; q < queries; ++q) {
            int64_t avail = 0;
            if (table.get(ctx, ids[q], avail) && avail > best_avail) {
              best_avail = avail;
              best = ids[q];
            }
          }
          if (best >= 0) {
            // Reserve: decrement availability, record for the customer.
            table.upsertAdd(ctx, best, -1);
            customers.upsertAdd(ctx, customer, 1);
          }
        });
        ctx.work(120);
      }
    }
  });
  return app.result();
}

}  // namespace

StampResult runVacationLow(const StampConfig& cfg) {
  return runVacation(cfg, 16384, 2);
}
StampResult runVacationHigh(const StampConfig& cfg) {
  return runVacation(cfg, 1024, 8);
}

}  // namespace natle::apps::stamp
