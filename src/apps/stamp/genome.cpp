// STAMP genome: gene sequence assembly. Phase 1 deduplicates DNA segments
// through a shared hash set (one short insert transaction per segment);
// phase 2 matches overlapping segment ends, probing the table and linking
// matches (short mostly-read transactions with rare link writes). Conflict
// locality is low — the paper's Figure 17 shows genome scaling within a
// socket and degrading across sockets.
#include "apps/stamp/common.hpp"
#include "ds/hashmap.hpp"
#include "sim/barrier.hpp"

namespace natle::apps::stamp {

StampResult runGenome(const StampConfig& cfg) {
  AppRun app(cfg);
  auto& env = app.env();
  const int64_t nsegments = static_cast<int64_t>(24000 * cfg.scale);
  const int64_t genome_len = nsegments / 4;  // 4x coverage

  // Pre-draw segment start positions (the input file).
  std::vector<int64_t> seg_start(nsegments);
  {
    sim::Rng gen(cfg.seed ^ 0x6e6e);
    for (auto& s : seg_start) {
      s = static_cast<int64_t>(gen.below(genome_len));
    }
  }
  ds::HashMap unique_segments(env, 1 << 15, false);
  // Link table: one slot per genome position.
  auto* links = static_cast<int64_t*>(
      env.allocShared(static_cast<size_t>(genome_len) * sizeof(int64_t)));
  for (int64_t i = 0; i < genome_len; ++i) links[i] = -1;

  sim::Barrier barrier(env.machine(), cfg.nthreads);
  WorkCursor phase1(env, nsegments, 32);
  WorkCursor phase2(env, genome_len, 32);

  app.parallel([&](htm::ThreadCtx& ctx, int) {
    // Phase 1: deduplicate segments.
    int64_t b = 0, e = 0;
    while (phase1.claim(ctx, b, e)) {
      for (int64_t i = b; i < e; ++i) {
        ctx.opBoundary();
        const int64_t key = seg_start[i];
        ctx.work(180);  // hash the segment contents
        app.lock().execute(ctx, [&] { unique_segments.insert(ctx, key, 1); });
      }
    }
    barrier.arrive(ctx.simThread());
    // Phase 2: overlap matching — for each position, probe for a segment
    // whose prefix continues it and link them.
    while (phase2.claim(ctx, b, e)) {
      for (int64_t pos = b; pos < e; ++pos) {
        ctx.opBoundary();
        ctx.work(90);  // compare overlap contents
        app.lock().execute(ctx, [&] {
          const int64_t succ = (pos + 13) % genome_len;  // candidate overlap
          if (unique_segments.contains(ctx, succ) &&
              ctx.load(links[pos]) < 0) {
            ctx.store(links[pos], succ);
          }
        });
      }
    }
  });
  return app.result();
}

}  // namespace natle::apps::stamp
