// STAMP labyrinth: Lee-style maze routing. Each transaction claims every
// grid cell of a route between two random endpoints — by far the largest
// read/write sets in STAMP, so transactions suffer capacity aborts and long
// windows of contention, and many routes fall back to the lock.
#include "apps/stamp/common.hpp"

namespace natle::apps::stamp {

StampResult runLabyrinth(const StampConfig& cfg) {
  AppRun app(cfg);
  auto& env = app.env();
  const int64_t dim = 64;
  const int64_t cells = dim * dim;
  const int64_t routes = static_cast<int64_t>(1400 * cfg.scale);

  auto* grid = static_cast<int64_t*>(
      env.allocShared(static_cast<size_t>(cells) * sizeof(int64_t)));
  for (int64_t i = 0; i < cells; ++i) grid[i] = 0;

  WorkCursor work(env, routes, 4);

  app.parallel([&](htm::ThreadCtx& ctx, int) {
    auto& rng = ctx.rng();
    int64_t b = 0, e = 0;
    while (work.claim(ctx, b, e)) {
      for (int64_t r = b; r < e; ++r) {
        ctx.opBoundary();
        const int64_t sx = static_cast<int64_t>(rng.below(dim));
        const int64_t sy = static_cast<int64_t>(rng.below(dim));
        const int64_t tx_ = static_cast<int64_t>(rng.below(dim));
        const int64_t ty = static_cast<int64_t>(rng.below(dim));
        ctx.work(900);  // expansion phase: compute the candidate route
        app.lock().execute(ctx, [&] {
          // L-shaped route: claim free cells along x then y. Occupied cells
          // are skipped (a real router would re-plan; the footprint and
          // write volume are what matter for the lock behaviour).
          const int64_t stepx = tx_ >= sx ? 1 : -1;
          for (int64_t x = sx; x != tx_; x += stepx) {
            int64_t& cell = grid[ty * dim + x];
            if (ctx.load(cell) == 0) ctx.store(cell, r + 1);
          }
          const int64_t stepy = ty >= sy ? 1 : -1;
          for (int64_t y = sy; y != ty; y += stepy) {
            int64_t& cell = grid[y * dim + sx];
            if (ctx.load(cell) == 0) ctx.store(cell, r + 1);
          }
        });
        ctx.work(250);
      }
    }
  });
  return app.result();
}

}  // namespace natle::apps::stamp
