#include "apps/stamp/stamp.hpp"

namespace natle::apps::stamp {

const std::vector<KernelEntry>& kernels() {
  static const std::vector<KernelEntry> k = {
      {"genome", runGenome},
      {"intruder", runIntruder},
      {"kmeans-high", runKmeansHigh},
      {"kmeans-low", runKmeansLow},
      {"labyrinth", runLabyrinth},
      {"ssca2", runSsca2},
      {"vacation-high", runVacationHigh},
      {"vacation-low", runVacationLow},
      {"yada", runYada},
  };
  return k;
}

}  // namespace natle::apps::stamp
