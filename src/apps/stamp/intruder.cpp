// STAMP intruder: network-intrusion detection. Threads pull packet
// fragments from a shared work queue, insert them into a per-flow
// reassembly map (transaction), and when a flow completes, remove it
// (transaction) and run the detector on the reassembled payload (local
// work). The shared queue head plus map updates make it conflict-heavy.
#include "apps/stamp/common.hpp"
#include "ds/hashmap.hpp"

namespace natle::apps::stamp {

StampResult runIntruder(const StampConfig& cfg) {
  AppRun app(cfg);
  auto& env = app.env();
  const int64_t flows = static_cast<int64_t>(4096 * cfg.scale);
  const int fragments_per_flow = 4;
  const int64_t packets = flows * fragments_per_flow;

  // The capture: fragment i belongs to flow shuffle(i) / fragments_per_flow.
  std::vector<int64_t> packet_flow(packets);
  {
    for (int64_t i = 0; i < packets; ++i) {
      packet_flow[i] = i / fragments_per_flow;
    }
    sim::Rng gen(cfg.seed ^ 0x17d3);
    for (size_t i = packet_flow.size(); i > 1; --i) {
      std::swap(packet_flow[i - 1], packet_flow[gen.below(i)]);
    }
  }
  ds::HashMap reassembly(env, 1 << 13, false);
  WorkCursor queue(env, packets, 8);  // small chunks: a hot queue head

  app.parallel([&](htm::ThreadCtx& ctx, int) {
    int64_t b = 0, e = 0;
    while (queue.claim(ctx, b, e)) {
      for (int64_t i = b; i < e; ++i) {
        ctx.opBoundary();
        const int64_t flow = packet_flow[i];
        int64_t have = 0;
        app.lock().execute(ctx, [&] {
          have = reassembly.upsertAdd(ctx, flow, 1);
        });
        if (have == fragments_per_flow) {
          app.lock().execute(ctx, [&] { reassembly.erase(ctx, flow); });
          ctx.work(600);  // run the detector over the reassembled flow
        } else {
          ctx.work(80);
        }
      }
    }
  });
  return app.result();
}

}  // namespace natle::apps::stamp
