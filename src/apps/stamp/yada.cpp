// STAMP yada: Ruppert's Delaunay mesh refinement. Each transaction retriangulates
// the cavity around a bad triangle: it reads a neighbourhood of mesh
// entries, rewrites most of them, and pushes newly created bad triangles
// onto the shared work counter — medium-large transactions with moderate
// conflict locality.
#include "apps/stamp/common.hpp"

namespace natle::apps::stamp {

StampResult runYada(const StampConfig& cfg) {
  AppRun app(cfg);
  auto& env = app.env();
  const int64_t mesh_slots = static_cast<int64_t>(1 << 14);
  const int64_t initial_bad = static_cast<int64_t>(6000 * cfg.scale);

  // Mesh entries: one line per slot.
  auto* mesh = static_cast<int64_t*>(env.allocShared(
      static_cast<size_t>(mesh_slots) * 8 * sizeof(int64_t)));
  for (int64_t i = 0; i < mesh_slots; ++i) mesh[i * 8] = i;
  // Total refinement schedule: each retriangulation occasionally yields a
  // new bad triangle. Computed up front from the seed so the amount of work
  // is independent of thread interleaving.
  int64_t total_work = initial_bad;
  {
    uint64_t h = cfg.seed ^ 0x11ada;
    for (int64_t i = 0; i < total_work; ++i) {
      h = h * 0x9e3779b97f4a7c15ULL + 1;
      if ((h >> 33) % 100 < 12) ++total_work;
    }
  }
  auto* claims = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
  *claims = 0;

  app.parallel([&](htm::ThreadCtx& ctx, int) {
    for (;;) {
      ctx.opBoundary();
      // Claim one bad triangle from the shared work counter.
      const int64_t i = ctx.fetchAdd(*claims, int64_t{1});
      if (i >= total_work) break;
      // The cavity location derives from the claimed triangle, not the
      // claiming thread, so the work set is schedule-independent.
      uint64_t h = (static_cast<uint64_t>(i) + cfg.seed) *
                   0x9e3779b97f4a7c15ULL;
      const int64_t center = static_cast<int64_t>((h >> 17) %
                                                  static_cast<uint64_t>(mesh_slots));
      ctx.work(400);  // geometric tests for the cavity
      app.lock().execute(ctx, [&] {
        // Cavity: a pseudo-neighbourhood of 8 slots around `center`.
        for (int j = 0; j < 8; ++j) {
          const int64_t slot = (center + j * 37) % mesh_slots;
          const int64_t v = ctx.load(mesh[slot * 8]);
          if (j < 6) ctx.store(mesh[slot * 8], v + 1);
        }
      });
      ctx.work(150);
    }
  });
  return app.result();
}

}  // namespace natle::apps::stamp
