// Shared plumbing for the STAMP kernel re-implementations.
#pragma once

#include "apps/stamp/stamp.hpp"
#include "htm/env.hpp"
#include "sync/elide.hpp"

namespace natle::apps::stamp {

// One simulated application run: an Env, the single process-wide elided
// lock, and a thread pool covering `nthreads` hardware slots.
class AppRun {
 public:
  explicit AppRun(const StampConfig& cfg)
      : cfg_(cfg), env_(withSeed(cfg)),
        lock_(env_, cfg.natle, sync::TlePolicy{}, cfg.natle_cfg) {
    if (lock_.natle() != nullptr) {
      lock_.natle()->setActiveRows(cfg.nthreads < 128 ? 128 : cfg.nthreads);
    }
  }

  htm::Env& env() { return env_; }
  sync::ElisionLock& lock() { return lock_; }
  htm::ThreadCtx& setup() { return env_.setupCtx(); }

  // Launch `fn(ctx, worker_index)` on every worker slot and run to
  // completion.
  void parallel(std::function<void(htm::ThreadCtx&, int)> fn) {
    for (int i = 0; i < cfg_.nthreads; ++i) {
      const auto slot = sim::placeThread(cfg_.machine, cfg_.pin, i);
      const bool pinned = cfg_.pin != sim::PinPolicy::kUnpinned;
      env_.spawnWorker([fn, i](htm::ThreadCtx& ctx) { fn(ctx, i); }, slot,
                       pinned);
    }
    env_.run();
  }

  StampResult result() {
    StampResult r;
    r.sim_ms = static_cast<double>(env_.machine().maxFinishClock()) /
               (cfg_.machine.ghz * 1e6);
    const htm::TxStats t = env_.totals();
    r.tx_commits = t.tx_commits;
    r.tx_aborts = t.totalAborts();
    r.lock_acquires = t.lock_acquires;
    return r;
  }

 private:
  static sim::MachineConfig withSeed(const StampConfig& cfg) {
    sim::MachineConfig m = cfg.machine;
    m.seed = cfg.seed;
    return m;
  }

  StampConfig cfg_;
  htm::Env env_;
  sync::ElisionLock lock_;
};

// Dynamic work distribution: a shared chunked cursor (the STAMP kernels use
// either static partitioning or a shared queue; a fetch-add cursor models
// the latter with one line of contention).
class WorkCursor {
 public:
  WorkCursor(htm::Env& env, int64_t total, int64_t chunk)
      : total_(total), chunk_(chunk) {
    next_ = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
    *next_ = 0;
  }

  // Claims [begin, end); returns false when exhausted. Called outside the
  // critical section (the cursor is not part of any transaction).
  bool claim(htm::ThreadCtx& ctx, int64_t& begin, int64_t& end) {
    const int64_t b = ctx.fetchAdd(*next_, chunk_);
    if (b >= total_) return false;
    begin = b;
    end = b + chunk_ < total_ ? b + chunk_ : total_;
    return true;
  }

 private:
  int64_t total_;
  int64_t chunk_;
  int64_t* next_;
};

}  // namespace natle::apps::stamp
