// Re-implementations of the STAMP benchmark kernels (Minh et al., IISWC
// 2008; Ruan et al.'s TRANSACT 2014 revision), in the configuration the
// paper evaluates: every transaction runs as a critical section on one
// process-wide lock (the paper overrides GCC's libitm with a pthread lock),
// elided with TLE or NATLE.
//
// Each kernel preserves its original's synchronization skeleton — the
// critical-section length, footprint and conflict locality — rather than its
// full feature set; per-kernel notes are in each source file. Workload sizes
// are scaled so a whole thread sweep simulates in seconds; `scale`
// multiplies them.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/topology.hpp"
#include "sync/natle.hpp"

namespace natle::apps::stamp {

struct StampConfig {
  sim::MachineConfig machine = sim::LargeMachine();
  int nthreads = 1;
  bool natle = false;
  sim::PinPolicy pin = sim::PinPolicy::kFillSocketFirst;
  double scale = 1.0;
  uint64_t seed = 1;
  // Application runs are much shorter than the microbenchmark trials, so
  // NATLE profiles on a faster cycle (the paper: the constants are fixed
  // values "that work reasonably well for our benchmarks").
  sync::NatleConfig natle_cfg{.profiling_ms = 0.15};
};

struct StampResult {
  double sim_ms = 0;  // simulated wall-clock runtime (lower is better)
  uint64_t tx_commits = 0;
  uint64_t tx_aborts = 0;
  uint64_t lock_acquires = 0;
};

using KernelFn = StampResult (*)(const StampConfig&);

StampResult runGenome(const StampConfig&);
StampResult runIntruder(const StampConfig&);
StampResult runKmeansLow(const StampConfig&);
StampResult runKmeansHigh(const StampConfig&);
StampResult runLabyrinth(const StampConfig&);
StampResult runSsca2(const StampConfig&);
StampResult runVacationLow(const StampConfig&);
StampResult runVacationHigh(const StampConfig&);
StampResult runYada(const StampConfig&);

struct KernelEntry {
  const char* name;
  KernelFn fn;
};

// The nine charts of the paper's Figure 17 (bayes is omitted there too, for
// its high variance).
const std::vector<KernelEntry>& kernels();

}  // namespace natle::apps::stamp
