// STAMP ssca2 (kernel 1): scalable graph construction. Threads insert
// batches of directed edges into per-node adjacency arrays; the transaction
// is tiny (bump the node's cursor, write one slot) and conflicts only occur
// when two threads extend the same node — the least contended STAMP kernel.
#include "apps/stamp/common.hpp"

namespace natle::apps::stamp {

StampResult runSsca2(const StampConfig& cfg) {
  AppRun app(cfg);
  auto& env = app.env();
  const int64_t nodes = static_cast<int64_t>(8192 * cfg.scale);
  const int64_t edges = nodes * 6;
  const int64_t max_degree = 24;

  // Adjacency storage: per-node cursor line + slot array.
  auto* cursor_arr = static_cast<int64_t*>(
      env.allocShared(static_cast<size_t>(nodes) * 8 * sizeof(int64_t)));
  auto* adj = static_cast<int64_t*>(env.allocShared(
      static_cast<size_t>(nodes) * max_degree * sizeof(int64_t)));
  for (int64_t n = 0; n < nodes; ++n) cursor_arr[n * 8] = 0;
  (void)adj;

  std::vector<int64_t> src(edges), dst(edges);
  {
    sim::Rng gen(cfg.seed ^ 0x55ca);
    for (int64_t i = 0; i < edges; ++i) {
      src[i] = static_cast<int64_t>(gen.below(nodes));
      dst[i] = static_cast<int64_t>(gen.below(nodes));
    }
  }
  WorkCursor work(env, edges, 64);

  app.parallel([&](htm::ThreadCtx& ctx, int) {
    int64_t b = 0, e = 0;
    while (work.claim(ctx, b, e)) {
      for (int64_t i = b; i < e; ++i) {
        ctx.opBoundary();
        const int64_t s = src[i];
        app.lock().execute(ctx, [&] {
          const int64_t at = ctx.load(cursor_arr[s * 8]);
          if (at < max_degree) {
            ctx.store(adj[s * max_degree + at], dst[i]);
            ctx.store(cursor_arr[s * 8], at + 1);
          }
        });
        ctx.work(50);
      }
    }
  });
  return app.result();
}

}  // namespace natle::apps::stamp
