// STAMP kmeans: iterative k-means clustering. Threads partition the points;
// assignment reads the (iteration-stable) centers, and the transaction
// accumulates the point into the new center sums — D+1 writes hitting one of
// K accumulator rows. Contention is governed by K: the "high contention"
// configuration uses few clusters (every transaction fights over the same
// rows), "low contention" many.
#include "apps/stamp/common.hpp"
#include "sim/barrier.hpp"

namespace natle::apps::stamp {

namespace {

constexpr int kDims = 4;

StampResult runKmeans(const StampConfig& cfg, int clusters) {
  AppRun app(cfg);
  auto& env = app.env();
  const int64_t npoints = static_cast<int64_t>(8192 * cfg.scale);
  const int iterations = 4;

  // Points: one line each (kDims int64 coordinates).
  auto* points = static_cast<int64_t*>(
      env.allocShared(static_cast<size_t>(npoints) * 8 * sizeof(int64_t)));
  // Centers and accumulators: one line per cluster row.
  auto* centers = static_cast<int64_t*>(
      env.allocShared(static_cast<size_t>(clusters) * 8 * sizeof(int64_t)));
  auto* acc = static_cast<int64_t*>(
      env.allocShared(static_cast<size_t>(clusters) * 8 * sizeof(int64_t)));
  auto* counts = static_cast<int64_t*>(
      env.allocShared(static_cast<size_t>(clusters) * 8 * sizeof(int64_t)));
  {
    sim::Rng gen(cfg.seed ^ 0x5eed);
    for (int64_t p = 0; p < npoints; ++p) {
      for (int d = 0; d < kDims; ++d) {
        points[p * 8 + d] = static_cast<int64_t>(gen.below(1000));
      }
    }
    for (int c = 0; c < clusters; ++c) {
      for (int d = 0; d < kDims; ++d) {
        centers[c * 8 + d] = static_cast<int64_t>(gen.below(1000));
        acc[c * 8 + d] = 0;
      }
      counts[c * 8] = 0;
    }
  }

  sim::Barrier barrier(env.machine(), cfg.nthreads);
  const int64_t per_thread = (npoints + cfg.nthreads - 1) / cfg.nthreads;
  app.parallel([&](htm::ThreadCtx& ctx, int widx) {
    const int64_t begin = widx * per_thread;
    const int64_t end = std::min<int64_t>(npoints, begin + per_thread);
    for (int it = 0; it < iterations; ++it) {
      for (int64_t p = begin; p < end; ++p) {
        ctx.opBoundary();
        // Assignment: nearest center (plain reads; centers are stable).
        int64_t coord[kDims];
        for (int d = 0; d < kDims; ++d) coord[d] = ctx.load(points[p * 8 + d]);
        int best = 0;
        int64_t best_d2 = INT64_MAX;
        for (int c = 0; c < clusters; ++c) {
          int64_t d2 = 0;
          for (int d = 0; d < kDims; ++d) {
            const int64_t delta = coord[d] - ctx.load(centers[c * 8 + d]);
            d2 += delta * delta;
          }
          if (d2 < best_d2) {
            best_d2 = d2;
            best = c;
          }
        }
        // Transaction: fold the point into the new-center accumulators.
        app.lock().execute(ctx, [&] {
          for (int d = 0; d < kDims; ++d) {
            ctx.store(acc[best * 8 + d],
                      ctx.load(acc[best * 8 + d]) + coord[d]);
          }
          ctx.store(counts[best * 8], ctx.load(counts[best * 8]) + 1);
        });
        ctx.work(60);
      }
      barrier.arrive(ctx.simThread());
      // One worker folds the accumulators into new centers.
      if (widx == 0) {
        for (int c = 0; c < clusters; ++c) {
          const int64_t n = ctx.load(counts[c * 8]);
          if (n > 0) {
            for (int d = 0; d < kDims; ++d) {
              ctx.store(centers[c * 8 + d], ctx.load(acc[c * 8 + d]) / n);
              ctx.store(acc[c * 8 + d], int64_t{0});
            }
            ctx.store(counts[c * 8], int64_t{0});
          }
        }
      }
      barrier.arrive(ctx.simThread());
    }
  });
  return app.result();
}

}  // namespace

StampResult runKmeansLow(const StampConfig& cfg) { return runKmeans(cfg, 32); }
StampResult runKmeansHigh(const StampConfig& cfg) { return runKmeans(cfg, 4); }

}  // namespace natle::apps::stamp
