#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__SANITIZE_ADDRESS__)
#define NATLE_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define NATLE_ASAN_FIBERS 1
#endif
#endif

#ifdef NATLE_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

extern "C" void natle_fiber_switch(void** save_sp, void* load_sp);
extern "C" void natle_fiber_trampoline();

namespace natle::sim {

void fiberEntry(Fiber* f) {
#ifdef NATLE_ASAN_FIBERS
  // Complete the switch begun in resume(): record the resumer's stack bounds
  // so yield() can announce the switch back.
  __sanitizer_finish_switch_fiber(nullptr, &f->asan_return_stack_,
                                  &f->asan_return_size_);
#endif
  f->fn_();
  f->finished_ = true;
  f->yield();
  // A finished fiber must never be resumed again.
  std::abort();
}

}  // namespace natle::sim

extern "C" [[noreturn]] void natle_fiber_entry(void* arg) {
  natle::sim::fiberEntry(static_cast<natle::sim::Fiber*>(arg));
  __builtin_unreachable();
}

namespace natle::sim {

Fiber::Fiber(std::function<void()> fn, size_t stack_bytes) : fn_(std::move(fn)) {
  const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  const size_t stack = (stack_bytes + page - 1) / page * page;
  map_bytes_ = stack + page;  // one guard page below the stack
  void* map = mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (map == MAP_FAILED) {
    std::perror("natle::sim::Fiber mmap");
    std::abort();
  }
  if (mprotect(map, page, PROT_NONE) != 0) {
    std::perror("natle::sim::Fiber mprotect");
    std::abort();
  }
  stack_base_ = map;
  stack_lo_ = static_cast<char*>(map) + page;
  stack_sz_ = map_bytes_ - page;

  // Fabricate the frame natle_fiber_switch pops on first resume:
  // [r15=this][r14][r13][r12][rbx][rbp][ret=trampoline], top of stack last.
  auto* top = reinterpret_cast<uint64_t*>(static_cast<char*>(map) + map_bytes_);
  top -= 1;
  *top = reinterpret_cast<uint64_t>(&natle_fiber_trampoline);  // return addr
  top -= 6;
  std::memset(top, 0, 6 * sizeof(uint64_t));
  top[5] = 0;                                   // rbp
  top[0] = reinterpret_cast<uint64_t>(this);    // r15 -> trampoline arg
  sp_ = top;
}

Fiber::~Fiber() {
  if (stack_base_ != nullptr) munmap(stack_base_, map_bytes_);
}

void Fiber::resume() {
#ifdef NATLE_ASAN_FIBERS
  void* fake = nullptr;
  __sanitizer_start_switch_fiber(&fake, stack_lo_, stack_sz_);
#endif
  natle_fiber_switch(&return_sp_, sp_);
#ifdef NATLE_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
#endif
}

void Fiber::yield() {
#ifdef NATLE_ASAN_FIBERS
  // A finished fiber never runs again: pass nullptr so ASan releases its
  // fake stack instead of saving it.
  __sanitizer_start_switch_fiber(finished_ ? nullptr : &asan_fake_,
                                 asan_return_stack_, asan_return_size_);
#endif
  natle_fiber_switch(&sp_, return_sp_);
#ifdef NATLE_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(asan_fake_, &asan_return_stack_,
                                  &asan_return_size_);
#endif
}

}  // namespace natle::sim
