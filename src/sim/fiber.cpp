#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

extern "C" void natle_fiber_switch(void** save_sp, void* load_sp);
extern "C" void natle_fiber_trampoline();

namespace natle::sim {

void fiberEntry(Fiber* f) {
  f->fn_();
  f->finished_ = true;
  f->yield();
  // A finished fiber must never be resumed again.
  std::abort();
}

}  // namespace natle::sim

extern "C" [[noreturn]] void natle_fiber_entry(void* arg) {
  natle::sim::fiberEntry(static_cast<natle::sim::Fiber*>(arg));
  __builtin_unreachable();
}

namespace natle::sim {

Fiber::Fiber(std::function<void()> fn, size_t stack_bytes) : fn_(std::move(fn)) {
  const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  const size_t stack = (stack_bytes + page - 1) / page * page;
  map_bytes_ = stack + page;  // one guard page below the stack
  void* map = mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (map == MAP_FAILED) {
    std::perror("natle::sim::Fiber mmap");
    std::abort();
  }
  if (mprotect(map, page, PROT_NONE) != 0) {
    std::perror("natle::sim::Fiber mprotect");
    std::abort();
  }
  stack_base_ = map;

  // Fabricate the frame natle_fiber_switch pops on first resume:
  // [r15=this][r14][r13][r12][rbx][rbp][ret=trampoline], top of stack last.
  auto* top = reinterpret_cast<uint64_t*>(static_cast<char*>(map) + map_bytes_);
  top -= 1;
  *top = reinterpret_cast<uint64_t>(&natle_fiber_trampoline);  // return addr
  top -= 6;
  std::memset(top, 0, 6 * sizeof(uint64_t));
  top[5] = 0;                                   // rbp
  top[0] = reinterpret_cast<uint64_t>(this);    // r15 -> trampoline arg
  sp_ = top;
}

Fiber::~Fiber() {
  if (stack_base_ != nullptr) munmap(stack_base_, map_bytes_);
}

void Fiber::resume() {
  natle_fiber_switch(&return_sp_, sp_);
}

void Fiber::yield() {
  natle_fiber_switch(&sp_, return_sp_);
}

}  // namespace natle::sim
