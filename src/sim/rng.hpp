// Deterministic pseudo-random number generation for the simulator.
//
// Every simulated thread owns an Xoshiro256** stream seeded via SplitMix64
// from (machine seed, thread id), so a whole experiment is reproducible from
// a single seed regardless of scheduling.
#pragma once

#include <cstdint>

namespace natle::sim {

inline uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Independent named RNG stream domains. Workload threads derive their seeds
// directly in Machine::spawn (seed * golden + tid + 1) — a derivation that
// must never change, as every recorded figure depends on it byte-for-byte.
// Auxiliary subsystems (fault injection) instead derive seeds through
// streamSeed() with a domain constant, so their streams can never collide
// with a workload stream and enabling/disabling them leaves the workload
// draws untouched.
inline constexpr uint64_t kStreamFaultStorm = 0x8f31f3c54d1ba64dULL;
inline constexpr uint64_t kStreamFaultSqueeze = 0xb7c9e1a22f85d30bULL;
inline constexpr uint64_t kStreamFaultLink = 0xd2e64b89136a9c77ULL;
inline constexpr uint64_t kStreamFaultStall = 0xe9a1d5733c2b08f1ULL;
// Traffic engine (src/traffic): arrival-time generation, per-request key
// material, and closed-loop think times. Indexed by request class (open
// loop) or by client thread id (closed loop); the two models never share a
// run, so the index spaces cannot collide.
inline constexpr uint64_t kStreamArrival = 0xa54c1d3f9e27b861ULL;
inline constexpr uint64_t kStreamRequest = 0xc3f8a91d64e0b527ULL;
inline constexpr uint64_t kStreamThink = 0xf16b8d24a9c35e03ULL;

// Seed for stream `index` of `domain`, derived from `base_seed`. Mixes all
// three through SplitMix64 twice so nearby (seed, index) pairs decorrelate.
inline uint64_t streamSeed(uint64_t base_seed, uint64_t domain, uint64_t index) {
  uint64_t st = base_seed ^ domain;
  uint64_t a = splitmix64(st);
  st = a + (index * 0x9e3779b97f4a7c15ULL) + domain;
  return splitmix64(st);
}

class Rng {
 public:
  Rng() : Rng(0xdeadbeefULL) {}
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t below(uint64_t bound) { return next() % bound; }

  // Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool chance(double p) { return uniform() < p; }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace natle::sim
