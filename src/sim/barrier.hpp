// Simulated-time barrier: arriving threads block; the last arrival releases
// everyone at the maximum arrival clock (plus a small release cost), exactly
// like a pthread barrier's makespan behaviour.
#pragma once

#include <vector>

#include "sim/machine.hpp"

namespace natle::sim {

class Barrier {
 public:
  Barrier(Machine& m, int parties) : m_(m), parties_(parties) {}

  void arrive(SimThread& t) {
    if (max_clock_ < t.clock) max_clock_ = t.clock;
    if (++waiting_ == parties_) {
      // Last arrival: release the others at the barrier's completion time.
      const uint64_t release = max_clock_ + kReleaseCost;
      for (SimThread* b : blocked_) m_.unblock(*b, release);
      blocked_.clear();
      waiting_ = 0;
      max_clock_ = 0;
      if (t.clock < release) t.clock = release;
      return;
    }
    blocked_.push_back(&t);
    m_.blockCurrent();
  }

  int parties() const { return parties_; }

 private:
  static constexpr uint64_t kReleaseCost = 120;
  Machine& m_;
  int parties_;
  int waiting_ = 0;
  uint64_t max_clock_ = 0;
  std::vector<SimThread*> blocked_;
};

}  // namespace natle::sim
