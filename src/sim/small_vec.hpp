// Minimal inline-storage vector for hot simulator paths (per-line reader
// lists, transaction footprints). Only the operations the simulator needs.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

namespace natle::sim {

template <typename T, size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  SmallVec() = default;
  SmallVec(const SmallVec&) = delete;
  SmallVec& operator=(const SmallVec&) = delete;

  void push_back(T v) {
    if (size_ < N) {
      inline_[size_++] = v;
    } else {
      overflow_.push_back(v);
      ++size_;
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T operator[](size_t i) const {
    return i < N ? inline_[i] : overflow_[i - N];
  }

  // Remove the first occurrence of v (order not preserved). Returns true if
  // found.
  bool erase_unordered(T v) {
    for (size_t i = 0; i < size_; ++i) {
      if ((*this)[i] == v) {
        T last = (*this)[size_ - 1];
        if (i < N) {
          inline_[i] = last;
        } else {
          overflow_[i - N] = last;
        }
        if (size_ > N) overflow_.pop_back();
        --size_;
        return true;
      }
    }
    return false;
  }

  bool contains(T v) const {
    for (size_t i = 0; i < size_; ++i) {
      if ((*this)[i] == v) return true;
    }
    return false;
  }

  void clear() {
    size_ = 0;
    overflow_.clear();
  }

 private:
  T inline_[N];
  size_t size_ = 0;
  std::vector<T> overflow_;
};

}  // namespace natle::sim
