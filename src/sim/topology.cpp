#include "sim/topology.hpp"

#include <cassert>

namespace natle::sim {

HwSlot placeThread(const MachineConfig& cfg, PinPolicy policy, int index) {
  assert(index >= 0 && index < cfg.totalThreads());
  const int per_socket = cfg.cores_per_socket * cfg.threads_per_core;
  HwSlot s;
  switch (policy) {
    case PinPolicy::kFillSocketFirst: {
      s.socket = index / per_socket;
      const int r = index % per_socket;
      s.ht = r / cfg.cores_per_socket;
      const int core_in_socket = r % cfg.cores_per_socket;
      s.core_global = s.socket * cfg.cores_per_socket + core_in_socket;
      break;
    }
    case PinPolicy::kAlternateSockets:
    case PinPolicy::kUnpinned: {
      s.socket = index % cfg.sockets;
      const int j = index / cfg.sockets;  // rank within the socket
      s.ht = j / cfg.cores_per_socket;
      const int core_in_socket = j % cfg.cores_per_socket;
      s.core_global = s.socket * cfg.cores_per_socket + core_in_socket;
      break;
    }
  }
  assert(s.ht < cfg.threads_per_core);
  return s;
}

const char* toString(PinPolicy p) {
  switch (p) {
    case PinPolicy::kFillSocketFirst: return "fill-socket-first";
    case PinPolicy::kAlternateSockets: return "alternate-sockets";
    case PinPolicy::kUnpinned: return "unpinned";
  }
  return "?";
}

}  // namespace natle::sim
