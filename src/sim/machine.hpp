// The discrete-event core: simulated threads on fibers, scheduled in
// conservative simulated-time order.
//
// Invariant: the running thread's clock is <= every other runnable thread's
// clock at the moment it performs a simulated action, so actions are globally
// ordered by simulated time and the whole run is deterministic for a fixed
// seed. A fiber yields control as soon as a charge pushes its clock past the
// next runnable thread's clock.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/config.hpp"
#include "sim/fiber.hpp"
#include "sim/rng.hpp"
#include "sim/topology.hpp"

namespace natle::sim {

class Machine;

// A simulated hardware thread. `user` is scratch the layers above attach
// (the HTM layer hangs its per-thread context here).
struct SimThread {
  int tid = 0;
  HwSlot slot;
  bool pinned = true;
  uint64_t clock = 0;  // cycles
  Rng rng;
  void* user = nullptr;
  bool blocked = false;
  bool started = false;
  std::unique_ptr<Fiber> fiber;
  Machine* machine = nullptr;
  uint64_t next_migration_check = 0;

  int socket() const { return slot.socket; }
};

class Machine {
 public:
  explicit Machine(const MachineConfig& cfg);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineConfig& cfg() const { return cfg_; }

  // Create a simulated thread at the given slot, starting at `start_clock`.
  // May be called before run() or from inside a running fiber (dynamic
  // spawning, as paraheap-k does every iteration).
  SimThread* spawn(std::function<void(SimThread&)> fn, HwSlot slot,
                   bool pinned = true, uint64_t start_clock = 0);

  // Run the event loop until every spawned fiber has finished.
  void run();

  // --- Called from inside a running fiber -------------------------------
  SimThread& current();
  bool running() const { return current_ != nullptr; }

  // Charge raw cycles (memory latency; not scaled by the HT penalty).
  void charge(SimThread& t, uint64_t cycles);
  // Charge instruction work (scaled by the HT penalty when the core's
  // sibling hyperthread is occupied).
  void chargeWork(SimThread& t, uint64_t cycles);
  // Yield if another runnable thread is now behind us in simulated time.
  void maybeYield(SimThread& t);

  // Block the current thread (removes it from the run queue) until another
  // thread calls unblock(). Returns after being unblocked.
  void blockCurrent();
  // Make `t` runnable again, no earlier than simulated time `at`.
  void unblock(SimThread& t, uint64_t at);

  // Number of live threads currently placed on a core (drives HT penalty).
  int occupancy(int core_global) const { return occupancy_[core_global]; }

  // For unpinned threads: possibly migrate to the least-loaded core. Called
  // periodically by the access layer. Returns true if the thread moved.
  bool maybeMigrate(SimThread& t);

  uint64_t migrationCount() const { return migrations_; }
  // Largest clock any finished thread reached: the simulated makespan.
  uint64_t maxFinishClock() const { return max_finish_clock_; }
  // Live threads per socket (used by tests and the OS-placement model).
  int socketLoad(int socket) const;

 private:
  struct Entry {
    uint64_t clock;
    uint64_t seq;
    SimThread* t;
    bool operator>(const Entry& o) const {
      if (clock != o.clock) return clock > o.clock;
      return seq > o.seq;
    }
  };

  void enqueue(SimThread* t);
  uint64_t nextRunnableClock() const;
  void finishThread(SimThread& t);

  MachineConfig cfg_;
  std::vector<std::unique_ptr<SimThread>> threads_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::vector<int> occupancy_;
  SimThread* current_ = nullptr;
  uint64_t seq_ = 0;
  uint64_t next_wake_cache_ = UINT64_MAX;
  uint64_t migrations_ = 0;
  uint64_t max_finish_clock_ = 0;
  uint64_t migration_interval_;
};

}  // namespace natle::sim
