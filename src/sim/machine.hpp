// The discrete-event core: simulated threads on fibers, scheduled in
// conservative simulated-time order.
//
// Invariant: the running thread's clock is <= every other runnable thread's
// clock at the moment it performs a simulated action, so actions are globally
// ordered by simulated time and the whole run is deterministic for a fixed
// seed. A fiber yields control as soon as a charge pushes its clock past the
// next runnable thread's clock.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/fiber.hpp"
#include "sim/rng.hpp"
#include "sim/topology.hpp"

namespace natle::sim {

class Machine;

// Thrown out of Machine::run() after the watchdog trips and every fiber has
// been drained. `kind` is "watchdog" (no progress within the budget),
// "deadlock" (no runnable fiber while threads remain blocked) or
// "cycle_limit"; `diagnostic` is the deterministic dump assembled at trip
// time (per-thread state plus whatever the diagnostic hook appended).
struct WatchdogError : std::runtime_error {
  WatchdogError(std::string k, std::string diag, uint64_t clock)
      : std::runtime_error("simulation " + k + " at cycle " +
                           std::to_string(clock)),
        kind(std::move(k)),
        diagnostic(std::move(diag)),
        fired_clock(clock) {}

  std::string kind;
  std::string diagnostic;
  uint64_t fired_clock;
};

namespace detail {
// Thrown inside a fiber to unwind its stack during a watchdog drain. It must
// never cross the assembly fiber switch: Machine::spawn catches it at the
// fiber entry point, so the fiber simply finishes.
struct WatchdogDrain {};
}  // namespace detail

// A simulated hardware thread. `user` is scratch the layers above attach
// (the HTM layer hangs its per-thread context here).
struct SimThread {
  int tid = 0;
  HwSlot slot;
  bool pinned = true;
  uint64_t clock = 0;  // cycles
  Rng rng;
  void* user = nullptr;
  bool blocked = false;
  bool started = false;
  std::unique_ptr<Fiber> fiber;
  Machine* machine = nullptr;
  uint64_t next_migration_check = 0;

  int socket() const { return slot.socket; }
};

class Machine {
 public:
  explicit Machine(const MachineConfig& cfg);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineConfig& cfg() const { return cfg_; }

  // Create a simulated thread at the given slot, starting at `start_clock`.
  // May be called before run() or from inside a running fiber (dynamic
  // spawning, as paraheap-k does every iteration).
  SimThread* spawn(std::function<void(SimThread&)> fn, HwSlot slot,
                   bool pinned = true, uint64_t start_clock = 0);

  // Run the event loop until every spawned fiber has finished.
  void run();

  // --- Called from inside a running fiber -------------------------------
  SimThread& current();
  bool running() const { return current_ != nullptr; }

  // Charge raw cycles (memory latency; not scaled by the HT penalty).
  void charge(SimThread& t, uint64_t cycles);
  // Charge instruction work (scaled by the HT penalty when the core's
  // sibling hyperthread is occupied).
  void chargeWork(SimThread& t, uint64_t cycles);
  // Yield if another runnable thread is now behind us in simulated time.
  void maybeYield(SimThread& t);

  // Block the current thread (removes it from the run queue) until another
  // thread calls unblock(). Returns after being unblocked.
  void blockCurrent();
  // Make `t` runnable again, no earlier than simulated time `at`.
  void unblock(SimThread& t, uint64_t at);

  // Number of live threads currently placed on a core (drives HT penalty).
  int occupancy(int core_global) const { return occupancy_[core_global]; }

  // For unpinned threads: possibly migrate to the least-loaded core. Called
  // periodically by the access layer. Returns true if the thread moved.
  bool maybeMigrate(SimThread& t);

  // --- livelock / deadlock watchdog -------------------------------------
  // Arm the watchdog: if no progress (see noteProgress) lands within
  // `budget_cycles` of the previous one, the run is drained and run() throws
  // WatchdogError. `diag_hook` may append model-level detail (in-flight tx
  // footprints, lock owners, trace tail) to the diagnostic at trip time.
  // budget_cycles == 0 disarms.
  void enableWatchdog(uint64_t budget_cycles,
                      std::function<void(std::string&)> diag_hook = nullptr);
  // Hard ceiling on simulated time, independent of progress (0 = none).
  void setCycleLimit(uint64_t limit_cycles);
  // Record forward progress (a commit, an op boundary, a lock release) at
  // simulated time `clock`; extends the trip deadline. No-op when disarmed.
  void noteProgress(uint64_t clock);
  bool watchdogEnabled() const {
    return watchdog_budget_ > 0 || cycle_limit_ > 0;
  }

  uint64_t migrationCount() const { return migrations_; }
  // Largest clock any finished thread reached: the simulated makespan.
  uint64_t maxFinishClock() const { return max_finish_clock_; }
  // Live threads per socket (used by tests and the OS-placement model).
  int socketLoad(int socket) const;

 private:
  struct Entry {
    uint64_t clock;
    uint64_t seq;
    SimThread* t;
    bool operator>(const Entry& o) const {
      if (clock != o.clock) return clock > o.clock;
      return seq > o.seq;
    }
  };

  void enqueue(SimThread* t);
  uint64_t nextRunnableClock() const;
  void finishThread(SimThread& t);
  void recomputeTripAt();
  // Flip into drain mode: build the deterministic diagnostic, wake every
  // blocked fiber, and let each fiber unwind via WatchdogDrain on its next
  // scheduling point. `tripping` is the thread whose clock crossed the
  // deadline (nullptr for a deadlock detected from the scheduler).
  void beginDrain(const char* kind, SimThread* tripping);

  MachineConfig cfg_;
  std::vector<std::unique_ptr<SimThread>> threads_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::vector<int> occupancy_;
  SimThread* current_ = nullptr;
  uint64_t seq_ = 0;
  uint64_t next_wake_cache_ = UINT64_MAX;
  uint64_t migrations_ = 0;
  uint64_t max_finish_clock_ = 0;
  uint64_t migration_interval_;

  // Watchdog state. trip_at_ caches min(progress deadline, cycle limit) so
  // the armed fast path in maybeYield is one compare.
  uint64_t watchdog_budget_ = 0;
  uint64_t cycle_limit_ = 0;
  uint64_t progress_deadline_ = UINT64_MAX;
  uint64_t trip_at_ = UINT64_MAX;
  bool draining_ = false;
  bool tripped_ = false;
  std::string trip_kind_;
  std::string diagnostic_;
  uint64_t fired_clock_ = 0;
  std::function<void(std::string&)> diag_hook_;
};

}  // namespace natle::sim
