// Hardware-thread placement: the paper's pinning policies (Section 3 and
// Figure 15) plus an "unpinned" mode that emulates the Linux scheduler's
// tendency to spread load evenly across sockets.
#pragma once

#include "sim/config.hpp"
#include "sim/rng.hpp"

namespace natle::sim {

// A hardware slot a simulated thread occupies.
struct HwSlot {
  int socket = 0;
  int core_global = 0;  // index in [0, sockets * cores_per_socket)
  int ht = 0;           // hyperthread slot within the core
};

enum class PinPolicy {
  // Paper default: fill socket 0's cores, then socket 0's hyperthreads, then
  // socket 1's cores, then socket 1's hyperthreads.
  kFillSocketFirst,
  // Figure 15 (left): even threads on socket 0, odd threads on socket 1,
  // filling cores before hyperthreads within each socket.
  kAlternateSockets,
  // Figure 15 (right): no pinning; the machine's scheduler model places the
  // thread on the least-loaded core and may migrate it during the run.
  kUnpinned,
};

// Initial slot for thread `index` out of `nthreads` under the given policy.
// For kUnpinned the slot mirrors kAlternateSockets (the balanced placement
// the Linux scheduler converges to); migration noise is added by the Machine.
HwSlot placeThread(const MachineConfig& cfg, PinPolicy policy, int index);

const char* toString(PinPolicy p);

}  // namespace natle::sim
