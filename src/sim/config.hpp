// Machine configuration for the simulated multi-socket HTM system.
//
// The defaults model the paper's large machine: an Oracle X5-2 with two
// Intel Xeon E5-2699 v3 sockets, 18 cores per socket, 2 hyperthreads per
// core (72 hardware threads) at 2.3 GHz. SmallMachine() models the paper's
// comparison box, a single-socket 4-core hyperthreaded Core i7-4770.
//
// Latencies are in CPU cycles and are deliberately round: the reproduction
// targets the *shape* of the paper's results (who wins, where the cliffs
// are), not absolute nanoseconds.
#pragma once

#include <cstdint>

namespace natle::sim {

struct MachineConfig {
  // Topology.
  int sockets = 2;
  int cores_per_socket = 18;
  int threads_per_core = 2;
  double ghz = 2.3;  // cycles per simulated nanosecond

  // Memory-system latencies (cycles).
  uint32_t l1_hit = 4;            // line present in the core's L1 filter
  uint32_t local_hit = 40;        // served by same-socket L3 / peer cache
  uint32_t local_dram = 220;      // cold miss, line homed on this socket
  uint32_t remote_transfer = 500; // cross-socket transfer of a modified line
  uint32_t remote_inval = 280;    // invalidating clean sharers on the other socket
  // Cross-socket interconnect bandwidth: each remote transfer occupies the
  // shared link for this many cycles; concurrent transfers queue. 64 bytes
  // at ~19 GB/s and 2.3 GHz is ~8 cycles; real links run below peak.
  uint32_t link_occupancy = 24;
  uint32_t remote_dram = 340;     // cold miss, line homed on the other socket
  uint32_t store_upgrade = 12;    // extra cost to gain write ownership locally

  // Hyperthreading: multiplier applied to instruction-work charges when both
  // hardware threads of a core are populated. (Memory latencies are physical
  // and are not scaled.)
  double ht_penalty = 1.6;

  // Per-core L1 filter used for locality and for HTM capacity tracking.
  // Modeled after a 32 KiB 8-way L1D: 64 sets x 8 ways of 64-byte lines.
  uint32_t l1_sets = 64;
  uint32_t l1_ways = 8;

  // HTM parameters.
  uint32_t tx_begin_cost = 25;   // cycles charged by tx begin
  uint32_t tx_commit_cost = 35;  // cycles charged by a successful commit
  uint32_t tx_abort_cost = 70;   // cycles charged on the abort path
  // Hazard of a spurious abort (interrupts, ring transitions...) per cycle a
  // transaction is in flight. Footnote 1 of the paper: even 43us transactions
  // see a negligible interrupt-abort rate, so this is tiny.
  double spurious_abort_per_cycle = 2e-9;

  // Cost model for thread lifecycle (used by paraheap-k, Fig. 19):
  // creating a worker costs create, pinning it costs pin (sched_setaffinity
  // plus the migration it forces).
  uint64_t thread_create_cost = 60000;
  uint64_t thread_pin_cost = 140000;

  // Deterministic seed for every RNG in the machine.
  uint64_t seed = 1;

  int totalThreads() const { return sockets * cores_per_socket * threads_per_core; }
  int coresTotal() const { return sockets * cores_per_socket; }
  uint64_t msToCycles(double ms) const {
    return static_cast<uint64_t>(ms * 1e6 * ghz);
  }
  double cyclesToSec(uint64_t cycles) const { return static_cast<double>(cycles) / (ghz * 1e9); }
};

// The paper's large two-socket machine (72 threads).
inline MachineConfig LargeMachine() { return MachineConfig{}; }

// The paper's small single-socket machine (8 threads, Core i7-4770 @3.4GHz).
inline MachineConfig SmallMachine() {
  MachineConfig c;
  c.sockets = 1;
  c.cores_per_socket = 4;
  c.threads_per_core = 2;
  c.ghz = 3.4;
  return c;
}

}  // namespace natle::sim
