// Machine configuration for the simulated multi-socket HTM system.
//
// The defaults model the paper's large machine: an Oracle X5-2 with two
// Intel Xeon E5-2699 v3 sockets, 18 cores per socket, 2 hyperthreads per
// core (72 hardware threads) at 2.3 GHz. SmallMachine() models the paper's
// comparison box, a single-socket 4-core hyperthreaded Core i7-4770.
// FourSocketRing() and EightSocketMesh() model the larger glued systems the
// paper speculates about (Section 6): sockets connected by an interconnect
// where some pairs are more than one hop apart.
//
// Latencies are in CPU cycles and are deliberately round: the reproduction
// targets the *shape* of the paper's results (who wins, where the cliffs
// are), not absolute nanoseconds.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace natle::sim {

struct MachineConfig {
  // Topology.
  int sockets = 2;
  int cores_per_socket = 18;
  int threads_per_core = 2;
  double ghz = 2.3;  // cycles per simulated nanosecond

  // Interconnect distance matrix: hop counts between socket pairs, flattened
  // row-major (entry [a * sockets + b]). Empty means fully connected at one
  // hop — the glueless 2-socket default. Cross-socket latencies and link
  // occupancy scale with hop count (see hopScale); presets below build ring
  // and mesh matrices for 4- and 8-socket machines.
  std::vector<uint8_t> distance;
  // Latency multiplier per hop beyond the first: a d-hop transfer costs
  // base * (1 + (d - 1) * hop_factor) cycles. Irrelevant when every pair is
  // one hop apart.
  double hop_factor = 0.5;

  // Memory-system latencies (cycles).
  uint32_t l1_hit = 4;            // line present in the core's L1 filter
  uint32_t local_hit = 40;        // served by same-socket L3 / peer cache
  uint32_t local_dram = 220;      // cold miss, line homed on this socket
  uint32_t remote_transfer = 500; // cross-socket transfer of a modified line
  uint32_t remote_inval = 280;    // invalidating clean sharers on the other socket
  // Cross-socket interconnect bandwidth: each remote transfer occupies its
  // socket-pair link for this many cycles (per hop); concurrent transfers on
  // the same pair queue. 64 bytes at ~19 GB/s and 2.3 GHz is ~8 cycles; real
  // links run below peak.
  uint32_t link_occupancy = 24;
  uint32_t remote_dram = 340;     // cold miss, line homed on the other socket
  uint32_t store_upgrade = 12;    // extra cost to gain write ownership locally

  // Hyperthreading: multiplier applied to instruction-work charges when both
  // hardware threads of a core are populated. (Memory latencies are physical
  // and are not scaled.)
  double ht_penalty = 1.6;

  // Per-core L1 filter used for locality and for HTM capacity tracking.
  // Modeled after a 32 KiB 8-way L1D: 64 sets x 8 ways of 64-byte lines.
  uint32_t l1_sets = 64;
  uint32_t l1_ways = 8;

  // HTM parameters.
  uint32_t tx_begin_cost = 25;   // cycles charged by tx begin
  uint32_t tx_commit_cost = 35;  // cycles charged by a successful commit
  uint32_t tx_abort_cost = 70;   // cycles charged on the abort path
  // Hazard of a spurious abort (interrupts, ring transitions...) per cycle a
  // transaction is in flight. Footnote 1 of the paper: even 43us transactions
  // see a negligible interrupt-abort rate, so this is tiny.
  double spurious_abort_per_cycle = 2e-9;

  // Cost model for thread lifecycle (used by paraheap-k, Fig. 19):
  // creating a worker costs create, pinning it costs pin (sched_setaffinity
  // plus the migration it forces).
  uint64_t thread_create_cost = 60000;
  uint64_t thread_pin_cost = 140000;

  // Deterministic seed for every RNG in the machine.
  uint64_t seed = 1;

  int totalThreads() const { return sockets * cores_per_socket * threads_per_core; }
  int coresTotal() const { return sockets * cores_per_socket; }
  uint64_t msToCycles(double ms) const {
    return static_cast<uint64_t>(ms * 1e6 * ghz);
  }
  double cyclesToSec(uint64_t cycles) const { return static_cast<double>(cycles) / (ghz * 1e9); }

  // Interconnect hops between two sockets: 0 for a == b, 1 for every pair on
  // the default fully connected topology, the matrix entry otherwise.
  int hops(int a, int b) const {
    if (a == b) return 0;
    if (distance.empty()) return 1;
    return distance[static_cast<size_t>(a) * static_cast<size_t>(sockets) + static_cast<size_t>(b)];
  }

  // Latency multiplier for an (a, b) transfer. Exactly 1.0 at one hop, so
  // every single-hop topology prices transfers identically to the original
  // binary local/remote model.
  double hopScale(int a, int b) const {
    const int h = hops(a, b);
    return h <= 1 ? 1.0 : 1.0 + (h - 1) * hop_factor;
  }

  // Largest hop count between any socket pair (1 on the default topology).
  int maxHops() const {
    int m = sockets > 1 ? 1 : 0;
    for (int a = 0; a < sockets; ++a) {
      for (int b = 0; b < sockets; ++b) {
        if (hops(a, b) > m) m = hops(a, b);
      }
    }
    return m;
  }

  // Configuration sanity check; returns an empty string when valid, else a
  // human-readable description of the first problem found. Machine's
  // constructor enforces this (mirroring BenchOptions' strict flags): a
  // malformed config fails loudly instead of silently simulating nonsense.
  std::string validate() const;
};

// The paper's large two-socket machine (72 threads).
inline MachineConfig LargeMachine() { return MachineConfig{}; }

// The paper's small single-socket machine (8 threads, Core i7-4770 @3.4GHz).
inline MachineConfig SmallMachine() {
  MachineConfig c;
  c.sockets = 1;
  c.cores_per_socket = 4;
  c.threads_per_core = 2;
  c.ghz = 3.4;
  return c;
}

// Ring interconnect distances for `sockets` sockets: hops(a, b) is the
// shorter way around the ring.
inline std::vector<uint8_t> RingDistance(int sockets) {
  std::vector<uint8_t> d(static_cast<size_t>(sockets) * sockets, 0);
  for (int a = 0; a < sockets; ++a) {
    for (int b = 0; b < sockets; ++b) {
      const int fwd = (b - a + sockets) % sockets;
      const int back = sockets - fwd;
      d[static_cast<size_t>(a) * sockets + b] =
          static_cast<uint8_t>(a == b ? 0 : (fwd < back ? fwd : back));
    }
  }
  return d;
}

// Grid (mesh) interconnect distances: sockets laid out rows x cols, hop count
// is Manhattan distance.
inline std::vector<uint8_t> MeshDistance(int rows, int cols) {
  const int n = rows * cols;
  std::vector<uint8_t> d(static_cast<size_t>(n) * n, 0);
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      const int dr = std::abs(a / cols - b / cols);
      const int dc = std::abs(a % cols - b % cols);
      d[static_cast<size_t>(a) * n + b] = static_cast<uint8_t>(dr + dc);
    }
  }
  return d;
}

// A speculative 4-socket machine built from the paper's large-machine parts:
// sockets on a ring, so opposite sockets are two hops apart (144 threads).
inline MachineConfig FourSocketRing() {
  MachineConfig c;
  c.sockets = 4;
  c.distance = RingDistance(4);
  return c;
}

// A speculative 8-socket machine: 2x4 mesh, up to 4 hops (288 threads).
inline MachineConfig EightSocketMesh() {
  MachineConfig c;
  c.sockets = 8;
  c.distance = MeshDistance(2, 4);
  return c;
}

inline std::string MachineConfig::validate() const {
  auto num = [](auto v) { return std::to_string(v); };
  if (sockets < 1) return "sockets must be >= 1 (got " + num(sockets) + ")";
  if (sockets > 16) {
    // sharer_mask is 16 bits wide; LineState would silently drop sharers.
    return "sockets must be <= 16 (got " + num(sockets) + ")";
  }
  if (cores_per_socket < 1) {
    return "cores_per_socket must be >= 1 (got " + num(cores_per_socket) + ")";
  }
  if (threads_per_core < 1) {
    return "threads_per_core must be >= 1 (got " + num(threads_per_core) + ")";
  }
  if (!(ghz > 0) || !std::isfinite(ghz)) {
    return "ghz must be a finite number > 0 (got " + num(ghz) + ")";
  }
  if (l1_sets == 0 || (l1_sets & (l1_sets - 1)) != 0) {
    // The L1 set index is `line & (l1_sets - 1)`; a non-power-of-two count
    // would alias most of the cache away instead of erroring.
    return "l1_sets must be a power of two (got " + num(l1_sets) + ")";
  }
  if (l1_ways < 1) return "l1_ways must be >= 1 (got " + num(l1_ways) + ")";
  if (!(ht_penalty > 0) || !std::isfinite(ht_penalty)) {
    return "ht_penalty must be a finite number > 0 (got " + num(ht_penalty) + ")";
  }
  if (!(hop_factor >= 0) || !std::isfinite(hop_factor)) {
    return "hop_factor must be a finite number >= 0 (got " + num(hop_factor) + ")";
  }
  if (!distance.empty()) {
    const size_t want = static_cast<size_t>(sockets) * static_cast<size_t>(sockets);
    if (distance.size() != want) {
      return "distance matrix must have sockets^2 = " + num(want) +
             " entries (got " + num(distance.size()) + ")";
    }
    for (int a = 0; a < sockets; ++a) {
      if (distance[static_cast<size_t>(a) * sockets + a] != 0) {
        return "distance matrix diagonal must be 0 (socket " + num(a) +
               " has distance " +
               num(static_cast<int>(distance[static_cast<size_t>(a) * sockets + a])) +
               " to itself)";
      }
      for (int b = 0; b < sockets; ++b) {
        const uint8_t ab = distance[static_cast<size_t>(a) * sockets + b];
        const uint8_t ba = distance[static_cast<size_t>(b) * sockets + a];
        if (ab != ba) {
          return "distance matrix must be symmetric (d[" + num(a) + "][" +
                 num(b) + "]=" + num(static_cast<int>(ab)) + " but d[" +
                 num(b) + "][" + num(a) + "]=" + num(static_cast<int>(ba)) + ")";
        }
        if (a != b && ab == 0) {
          return "distance between distinct sockets " + num(a) + " and " +
                 num(b) + " must be >= 1";
        }
      }
    }
  }
  return "";
}

}  // namespace natle::sim
