// Stackful cooperative fibers.
//
// Each simulated hardware thread runs on its own fiber so that ordinary C++
// data-structure code can be executed under the discrete-event scheduler: a
// fiber runs until its simulated clock passes the next runnable thread's
// clock, then switches back to the scheduler.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace natle::sim {

class Fiber {
 public:
  // stack_bytes is rounded up to the page size; a guard page is placed below
  // the stack so overflow faults instead of corrupting a neighbour.
  explicit Fiber(std::function<void()> fn, size_t stack_bytes = 256 * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Switch from the calling context into this fiber. Returns when the fiber
  // switches back (yield) or finishes.
  void resume();

  // Called from inside the fiber: switch back to whoever resumed it.
  void yield();

  bool finished() const { return finished_; }

 private:
  friend void fiberEntry(Fiber*);

  void* sp_ = nullptr;        // fiber's saved stack pointer when suspended
  void* return_sp_ = nullptr; // resumer's saved stack pointer while fiber runs
  void* stack_base_ = nullptr;
  size_t map_bytes_ = 0;
  std::function<void()> fn_;
  bool finished_ = false;

  // AddressSanitizer fiber-switch bookkeeping: ASan tracks the current stack
  // bounds and a per-fiber fake stack, and must be told about every manual
  // stack switch (__sanitizer_start/finish_switch_fiber), or it reports
  // false stack-use-after-return/overflow errors. Unused (but kept, for a
  // stable layout) in non-sanitized builds.
  void* stack_lo_ = nullptr;  // usable stack bottom (above the guard page)
  size_t stack_sz_ = 0;
  void* asan_fake_ = nullptr;              // fiber's saved fake stack
  const void* asan_return_stack_ = nullptr;  // resumer's stack bounds,
  size_t asan_return_size_ = 0;              // captured on fiber entry
};

}  // namespace natle::sim
