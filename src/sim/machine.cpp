#include "sim/machine.hpp"

#include <cassert>
#include <cstdlib>

namespace natle::sim {

Machine::Machine(const MachineConfig& cfg)
    : cfg_(cfg), occupancy_(cfg.coresTotal(), 0),
      migration_interval_(cfg.msToCycles(1.0)) {}

Machine::~Machine() = default;

SimThread* Machine::spawn(std::function<void(SimThread&)> fn, HwSlot slot,
                          bool pinned, uint64_t start_clock) {
  auto t = std::make_unique<SimThread>();
  SimThread* raw = t.get();
  raw->tid = static_cast<int>(threads_.size());
  raw->slot = slot;
  raw->pinned = pinned;
  raw->clock = start_clock;
  raw->machine = this;
  uint64_t seed_state = cfg_.seed * 0x9e3779b97f4a7c15ULL + raw->tid + 1;
  raw->rng = Rng(splitmix64(seed_state));
  raw->next_migration_check = start_clock + migration_interval_;
  raw->fiber = std::make_unique<Fiber>([raw, fn = std::move(fn)] { fn(*raw); });
  occupancy_[slot.core_global]++;
  threads_.push_back(std::move(t));
  enqueue(raw);
  return raw;
}

void Machine::enqueue(SimThread* t) {
  heap_.push(Entry{t->clock, seq_++, t});
  if (t->clock < next_wake_cache_) next_wake_cache_ = t->clock;
}

uint64_t Machine::nextRunnableClock() const {
  return heap_.empty() ? UINT64_MAX : heap_.top().clock;
}

void Machine::run() {
  assert(current_ == nullptr && "run() is not reentrant");
  while (!heap_.empty()) {
    Entry e = heap_.top();
    heap_.pop();
    SimThread* t = e.t;
    next_wake_cache_ = nextRunnableClock();
    current_ = t;
    t->started = true;
    t->fiber->resume();
    current_ = nullptr;
    if (t->fiber->finished()) {
      finishThread(*t);
    } else if (!t->blocked) {
      enqueue(t);
    }
  }
}

void Machine::finishThread(SimThread& t) {
  if (t.clock > max_finish_clock_) max_finish_clock_ = t.clock;
  occupancy_[t.slot.core_global]--;
  assert(occupancy_[t.slot.core_global] >= 0);
}

SimThread& Machine::current() {
  assert(current_ != nullptr && "no simulated thread is running");
  return *current_;
}

void Machine::charge(SimThread& t, uint64_t cycles) { t.clock += cycles; }

void Machine::chargeWork(SimThread& t, uint64_t cycles) {
  if (occupancy_[t.slot.core_global] > 1) {
    cycles = static_cast<uint64_t>(static_cast<double>(cycles) * cfg_.ht_penalty);
  }
  t.clock += cycles;
}

void Machine::maybeYield(SimThread& t) {
  assert(&t == current_);
  if (t.clock > next_wake_cache_) t.fiber->yield();
}

void Machine::blockCurrent() {
  SimThread& t = current();
  t.blocked = true;
  t.fiber->yield();
  assert(!t.blocked);
}

void Machine::unblock(SimThread& t, uint64_t at) {
  assert(t.blocked);
  t.blocked = false;
  if (t.clock < at) t.clock = at;
  enqueue(&t);
}

int Machine::socketLoad(int socket) const {
  int n = 0;
  for (int c = socket * cfg_.cores_per_socket;
       c < (socket + 1) * cfg_.cores_per_socket; ++c) {
    n += occupancy_[c];
  }
  return n;
}

bool Machine::maybeMigrate(SimThread& t) {
  if (t.pinned || t.clock < t.next_migration_check) return false;
  // Jittered rebalance interval so unpinned threads don't move in lockstep.
  t.next_migration_check =
      t.clock + migration_interval_ + t.rng.below(migration_interval_ / 2 + 1);
  // Linux CFS approximation: move to the least-loaded core if that improves
  // balance; scan from a random start so ties spread.
  const int ncores = cfg_.coresTotal();
  int best = t.slot.core_global;
  int best_occ = occupancy_[best] - 1;  // occupancy excluding ourselves
  const int start = static_cast<int>(t.rng.below(ncores));
  for (int i = 0; i < ncores; ++i) {
    const int c = (start + i) % ncores;
    if (occupancy_[c] < best_occ) {
      best = c;
      best_occ = occupancy_[c];
    }
  }
  if (best == t.slot.core_global) return false;
  occupancy_[t.slot.core_global]--;
  occupancy_[best]++;
  t.slot.core_global = best;
  t.slot.socket = best / cfg_.cores_per_socket;
  ++migrations_;
  charge(t, 3000);  // context migration cost
  return true;
}

}  // namespace natle::sim
