#include "sim/machine.hpp"

#include <cassert>
#include <cstdlib>
#include <stdexcept>

namespace natle::sim {

namespace {

// Fail loudly on nonsense configs (zero ghz, non-power-of-two L1 sets,
// asymmetric distance matrices...) instead of silently simulating them.
const MachineConfig& validated(const MachineConfig& cfg) {
  const std::string err = cfg.validate();
  if (!err.empty()) throw std::invalid_argument("MachineConfig: " + err);
  return cfg;
}

}  // namespace

Machine::Machine(const MachineConfig& cfg)
    : cfg_(validated(cfg)), occupancy_(cfg.coresTotal(), 0),
      migration_interval_(cfg.msToCycles(1.0)) {}

Machine::~Machine() = default;

SimThread* Machine::spawn(std::function<void(SimThread&)> fn, HwSlot slot,
                          bool pinned, uint64_t start_clock) {
  auto t = std::make_unique<SimThread>();
  SimThread* raw = t.get();
  raw->tid = static_cast<int>(threads_.size());
  raw->slot = slot;
  raw->pinned = pinned;
  raw->clock = start_clock;
  raw->machine = this;
  uint64_t seed_state = cfg_.seed * 0x9e3779b97f4a7c15ULL + raw->tid + 1;
  raw->rng = Rng(splitmix64(seed_state));
  raw->next_migration_check = start_clock + migration_interval_;
  // WatchdogDrain unwinds the fiber's stack during a drain; it must be caught
  // here, at the fiber entry point, because an exception can never cross the
  // assembly stack switch.
  raw->fiber = std::make_unique<Fiber>([raw, fn = std::move(fn)] {
    try {
      fn(*raw);
    } catch (const detail::WatchdogDrain&) {
    }
  });
  occupancy_[slot.core_global]++;
  threads_.push_back(std::move(t));
  enqueue(raw);
  return raw;
}

void Machine::enqueue(SimThread* t) {
  heap_.push(Entry{t->clock, seq_++, t});
  if (t->clock < next_wake_cache_) next_wake_cache_ = t->clock;
}

uint64_t Machine::nextRunnableClock() const {
  return heap_.empty() ? UINT64_MAX : heap_.top().clock;
}

void Machine::run() {
  assert(current_ == nullptr && "run() is not reentrant");
  for (;;) {
    while (!heap_.empty()) {
      Entry e = heap_.top();
      heap_.pop();
      SimThread* t = e.t;
      next_wake_cache_ = nextRunnableClock();
      current_ = t;
      t->started = true;
      t->fiber->resume();
      current_ = nullptr;
      if (t->fiber->finished()) {
        finishThread(*t);
      } else if (!t->blocked) {
        enqueue(t);
      }
    }
    if (!watchdogEnabled() || draining_) break;
    // No runnable fiber. If live fibers remain blocked, that is a deadlock:
    // drain them (beginDrain wakes every blocked thread, refilling the heap;
    // each then unwinds via WatchdogDrain).
    bool stuck = false;
    for (auto& t : threads_) {
      if (t->blocked && !t->fiber->finished()) {
        stuck = true;
        break;
      }
    }
    if (!stuck) break;
    beginDrain("deadlock", nullptr);
  }
  if (tripped_) {
    tripped_ = false;
    throw WatchdogError(trip_kind_, diagnostic_, fired_clock_);
  }
}

void Machine::finishThread(SimThread& t) {
  if (t.clock > max_finish_clock_) max_finish_clock_ = t.clock;
  occupancy_[t.slot.core_global]--;
  assert(occupancy_[t.slot.core_global] >= 0);
}

SimThread& Machine::current() {
  assert(current_ != nullptr && "no simulated thread is running");
  return *current_;
}

void Machine::charge(SimThread& t, uint64_t cycles) { t.clock += cycles; }

void Machine::chargeWork(SimThread& t, uint64_t cycles) {
  if (occupancy_[t.slot.core_global] > 1) {
    cycles = static_cast<uint64_t>(static_cast<double>(cycles) * cfg_.ht_penalty);
  }
  t.clock += cycles;
}

void Machine::maybeYield(SimThread& t) {
  assert(&t == current_);
  // The trip check must precede the yield early-out: a lone runnable fiber
  // (everyone else blocked) sees next_wake_cache_ == UINT64_MAX and would
  // otherwise spin forever without ever passing through the scheduler.
  if (t.clock >= trip_at_ && !draining_) {
    beginDrain(cycle_limit_ > 0 && t.clock >= cycle_limit_ ? "cycle_limit"
                                                           : "watchdog",
               &t);
  }
  if (draining_) throw detail::WatchdogDrain{};
  if (t.clock > next_wake_cache_) {
    t.fiber->yield();
    if (draining_) throw detail::WatchdogDrain{};
  }
}

void Machine::blockCurrent() {
  if (draining_) throw detail::WatchdogDrain{};
  SimThread& t = current();
  t.blocked = true;
  t.fiber->yield();
  assert(!t.blocked);
  // Woken by beginDrain rather than a real unblock: unwind instead of
  // returning into a primitive whose protocol was never completed.
  if (draining_) throw detail::WatchdogDrain{};
}

void Machine::unblock(SimThread& t, uint64_t at) {
  assert(t.blocked);
  t.blocked = false;
  if (t.clock < at) t.clock = at;
  enqueue(&t);
}

void Machine::enableWatchdog(uint64_t budget_cycles,
                             std::function<void(std::string&)> diag_hook) {
  watchdog_budget_ = budget_cycles;
  diag_hook_ = std::move(diag_hook);
  progress_deadline_ = budget_cycles == 0 ? UINT64_MAX : budget_cycles;
  recomputeTripAt();
}

void Machine::setCycleLimit(uint64_t limit_cycles) {
  cycle_limit_ = limit_cycles;
  recomputeTripAt();
}

void Machine::noteProgress(uint64_t clock) {
  if (watchdog_budget_ == 0) return;
  const uint64_t deadline = clock + watchdog_budget_;
  // Progress reports arrive out of simulated-time order across threads; the
  // deadline only ever extends (max), so the trip point is deterministic.
  if (deadline > progress_deadline_) {
    progress_deadline_ = deadline;
    recomputeTripAt();
  }
}

void Machine::recomputeTripAt() {
  uint64_t at = watchdog_budget_ > 0 ? progress_deadline_ : UINT64_MAX;
  if (cycle_limit_ > 0 && cycle_limit_ < at) at = cycle_limit_;
  trip_at_ = at;
}

void Machine::beginDrain(const char* kind, SimThread* tripping) {
  assert(!draining_);
  draining_ = true;
  tripped_ = true;
  trip_kind_ = kind;
  trip_at_ = UINT64_MAX;
  if (tripping != nullptr) {
    fired_clock_ = tripping->clock;
  } else {
    fired_clock_ = 0;
    for (auto& t : threads_) {
      if (t->blocked && !t->fiber->finished() && t->clock > fired_clock_) {
        fired_clock_ = t->clock;
      }
    }
  }
  std::string d;
  d += trip_kind_;
  if (trip_kind_ == "watchdog") {
    d += ": no progress within " + std::to_string(watchdog_budget_) +
         " cycles (deadline " + std::to_string(progress_deadline_) + ")";
  } else if (trip_kind_ == "cycle_limit") {
    d += ": simulated-cycle limit " + std::to_string(cycle_limit_) + " reached";
  } else {
    d += ": no runnable fiber, blocked threads remain";
  }
  d += " at cycle " + std::to_string(fired_clock_);
  if (tripping != nullptr) {
    d += ", tripped by tid " + std::to_string(tripping->tid);
  }
  d += "\nthreads:\n";
  for (auto& t : threads_) {
    d += "  tid=" + std::to_string(t->tid) +
         " socket=" + std::to_string(t->slot.socket) +
         " core=" + std::to_string(t->slot.core_global) +
         " ht=" + std::to_string(t->slot.ht) +
         " clock=" + std::to_string(t->clock) + " state=";
    if (t->fiber->finished()) {
      d += "finished";
    } else if (t->blocked) {
      d += "blocked";
    } else if (t.get() == tripping) {
      d += "running";
    } else {
      d += "runnable";
    }
    d += "\n";
  }
  if (diag_hook_) diag_hook_(d);
  diagnostic_ = std::move(d);
  // Wake every blocked fiber so it can unwind; blockCurrent sees draining_
  // and throws WatchdogDrain on resume.
  for (auto& t : threads_) {
    if (t->blocked && !t->fiber->finished()) unblock(*t, t->clock);
  }
}

int Machine::socketLoad(int socket) const {
  int n = 0;
  for (int c = socket * cfg_.cores_per_socket;
       c < (socket + 1) * cfg_.cores_per_socket; ++c) {
    n += occupancy_[c];
  }
  return n;
}

bool Machine::maybeMigrate(SimThread& t) {
  if (t.pinned || t.clock < t.next_migration_check) return false;
  // Jittered rebalance interval so unpinned threads don't move in lockstep.
  t.next_migration_check =
      t.clock + migration_interval_ + t.rng.below(migration_interval_ / 2 + 1);
  // Linux CFS approximation: move to the least-loaded core if that improves
  // balance; scan from a random start so ties spread.
  const int ncores = cfg_.coresTotal();
  int best = t.slot.core_global;
  int best_occ = occupancy_[best] - 1;  // occupancy excluding ourselves
  const int start = static_cast<int>(t.rng.below(ncores));
  for (int i = 0; i < ncores; ++i) {
    const int c = (start + i) % ncores;
    if (occupancy_[c] < best_occ) {
      best = c;
      best_occ = occupancy_[c];
    }
  }
  if (best == t.slot.core_global) return false;
  occupancy_[t.slot.core_global]--;
  occupancy_[best]++;
  t.slot.core_global = best;
  t.slot.socket = best / cfg_.cores_per_socket;
  ++migrations_;
  charge(t, 3000);  // context migration cost
  return true;
}

}  // namespace natle::sim
