// Test-and-test-and-set spin lock living on a simulated cache line — the
// fallback lock the paper's TLE implementation uses. Because the lock word
// goes through the coherence model, lock handoffs across sockets cost a
// remote transfer and transactional subscribers abort when it is acquired.
#pragma once

#include "htm/env.hpp"

namespace natle::sync {

class TatasLock {
 public:
  explicit TatasLock(htm::Env& env) {
    word_ = static_cast<uint64_t*>(env.allocShared(sizeof(uint64_t)));
    *word_ = 0;
  }

  // Read the lock word (transactionally subscribes when inside a tx).
  uint64_t read(htm::ThreadCtx& ctx) { return ctx.load(*word_); }

  bool tryLock(htm::ThreadCtx& ctx) {
    return ctx.load(*word_) == 0 &&
           ctx.cas(*word_, uint64_t{0}, uint64_t{1});
  }

  void lock(htm::ThreadCtx& ctx) {
    for (;;) {
      if (tryLock(ctx)) return;
      ctx.work(kSpinPause);
    }
  }

  void unlock(htm::ThreadCtx& ctx) { ctx.store(*word_, uint64_t{0}); }

  uint64_t lineId() const { return mem::lineOf(word_); }

  // Spin (outside any transaction) until the lock is observed free.
  void waitWhileHeld(htm::ThreadCtx& ctx) {
    while (ctx.load(*word_) != 0) ctx.work(kSpinPause);
  }

 private:
  static constexpr uint32_t kSpinPause = 60;
  uint64_t* word_;
};

}  // namespace natle::sync
