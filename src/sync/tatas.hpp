// Test-and-test-and-set spin lock living on a simulated cache line — the
// fallback lock the paper's TLE implementation uses. Because the lock word
// goes through the coherence model, lock handoffs across sockets cost a
// remote transfer and transactional subscribers abort when it is acquired.
#pragma once

#include "htm/env.hpp"

namespace natle::sync {

class TatasLock {
 public:
  explicit TatasLock(htm::Env& env) {
    word_ = static_cast<uint64_t*>(env.allocShared(sizeof(uint64_t)));
    *word_ = 0;
  }

  // Read the lock word (transactionally subscribes when inside a tx).
  uint64_t read(htm::ThreadCtx& ctx) { return ctx.load(*word_); }

  bool tryLock(htm::ThreadCtx& ctx) {
    if (ctx.load(*word_) == 0 && ctx.cas(*word_, uint64_t{0}, uint64_t{1})) {
      owner_tid_ = ctx.tid();
      return true;
    }
    return false;
  }

  void lock(htm::ThreadCtx& ctx) {
    for (;;) {
      if (tryLock(ctx)) return;
      ctx.work(kSpinPause);
    }
  }

  void unlock(htm::ThreadCtx& ctx) {
    owner_tid_ = -1;
    ctx.store(*word_, uint64_t{0});
    // A lock release is forward progress even when no transaction ever
    // commits (pure lock-based sync): keep the watchdog fed.
    ctx.env().noteProgress(ctx.nowCycles());
  }

  uint64_t lineId() const { return mem::lineOf(word_); }
  // Host-level owner bookkeeping for watchdog diagnostics (reads no
  // simulated memory, charges nothing). -1 when free.
  int ownerTid() const { return owner_tid_; }

  // Spin (outside any transaction) until the lock is observed free.
  void waitWhileHeld(htm::ThreadCtx& ctx) {
    while (ctx.load(*word_) != 0) ctx.work(kSpinPause);
  }

 private:
  static constexpr uint32_t kSpinPause = 60;
  uint64_t* word_;
  int owner_tid_ = -1;
};

}  // namespace natle::sync
