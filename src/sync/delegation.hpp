// The paper's second rejected alternative (Section 4.1): delegation. Each
// operation is shipped to the socket where its data lives (the paper split
// the AVL key range in half), executed there by a server thread, with
// client/server message passing over shared memory. The paper measured that
// raw delegation's coordination overhead outweighs its locality benefit, and
// that batching multiple operations into one critical section claws some of
// it back — this implementation exposes the batch size to reproduce both.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "htm/env.hpp"
#include "sync/tle.hpp"

namespace natle::sync {

// A delegation fabric for an arbitrary set: clients post (op, key) requests
// into per-client mailboxes; one server per socket drains the mailboxes
// targeted at it and executes the operations (under the elided lock, in
// batches).
class DelegationFabric {
 public:
  enum Op : int64_t { kInsert = 1, kErase = 2, kContains = 3 };

  // op executor: (ctx, op, key) -> result
  using Executor = std::function<int64_t(htm::ThreadCtx&, int64_t, int64_t)>;

  DelegationFabric(htm::Env& env, TleLock& lock, int nclients, int nsockets,
                   int64_t key_split, int batch)
      : lock_(lock),
        nclients_(nclients),
        nsockets_(nsockets),
        key_split_(key_split),
        batch_(batch) {
    slots_ = static_cast<Slot*>(
        env.allocShared(static_cast<size_t>(nclients) * nsockets *
                        sizeof(Slot)));
    for (int i = 0; i < nclients * nsockets; ++i) {
      slots_[i].status = kFree;
    }
    stop_ = static_cast<int64_t*>(env.allocShared(sizeof(int64_t)));
    *stop_ = 0;
  }

  // Client side: execute (op, key) on the socket owning the key; blocks (in
  // simulated time) until the server replies.
  int64_t request(htm::ThreadCtx& ctx, int client, Op op, int64_t key) {
    const int target = key < key_split_ ? 0 : nsockets_ - 1;
    Slot& s = slots_[target * nclients_ + client];
    ctx.store(s.op, static_cast<int64_t>(op));
    ctx.store(s.key, key);
    ctx.store(s.status, kPending);
    while (ctx.load(s.status) != kDone) ctx.work(80);
    const int64_t r = ctx.load(s.result);
    ctx.store(s.status, kFree);
    return r;
  }

  // Server side: drain requests for `socket` until stop(). Executes up to
  // `batch_` pending operations inside one critical section.
  void serve(htm::ThreadCtx& ctx, int socket, const Executor& exec) {
    std::vector<Slot*> pending;
    pending.reserve(static_cast<size_t>(batch_));
    while (ctx.load(*stop_) == 0) {
      pending.clear();
      for (int c = 0; c < nclients_ && static_cast<int>(pending.size()) < batch_;
           ++c) {
        Slot& s = slots_[socket * nclients_ + c];
        if (ctx.load(s.status) == kPending) pending.push_back(&s);
      }
      if (pending.empty()) {
        ctx.work(200);
        continue;
      }
      lock_.execute(ctx, [&] {
        for (Slot* s : pending) {
          const int64_t r = exec(ctx, ctx.load(s->op), ctx.load(s->key));
          ctx.store(s->result, r);
        }
      });
      // Replies go out after the batch commits.
      for (Slot* s : pending) ctx.store(s->status, kDone);
    }
  }

  void stop(htm::ThreadCtx& ctx) { ctx.store(*stop_, int64_t{1}); }

 private:
  static constexpr int64_t kFree = 0;
  static constexpr int64_t kPending = 1;
  static constexpr int64_t kDone = 2;

  struct alignas(64) Slot {
    int64_t status;
    int64_t op;
    int64_t key;
    int64_t result;
  };

  TleLock& lock_;
  Slot* slots_;
  int64_t* stop_;
  int nclients_;
  int nsockets_;
  int64_t key_split_;
  int batch_;
};

}  // namespace natle::sync
