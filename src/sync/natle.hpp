// NATLE — NUMA-aware transactional lock elision (the paper's Section 4).
//
// Each lock carries a *mode* deciding who may run its critical sections:
// mode s (s < sockets) admits only threads on socket s; the last mode admits
// everyone. Simulated time is divided into cycles: a profiling phase that
// samples throughput in every mode, then quanta whose time is split between
// the fastest mode and an alternate according to the measured ratio
// (Figures 8-11 of the paper, implemented faithfully including the 2-bit
// stage protocol in lastProfStart and the warm-up acquisition threshold).
//
// Paper constants are 30 ms profiling / 30 ms quanta / 9 quanta per cycle.
// Simulated trials are a few milliseconds, so the default here scales those
// constants by 1/100 (0.3 ms / 0.3 ms / 9); the ratio profiling:total time
// (10%) is preserved. Override via NatleConfig.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "sync/tle.hpp"

namespace natle::sync {

struct NatleConfig {
  double profiling_ms = 0.15;  // total profiling phase (split across modes)
  int quanta = 9;             // post-profiling quanta per cycle
  int repetitions_threshold = 1000;  // max mode-check retries in LockAcquire
  uint64_t min_acquisitions = 256;   // warm-up threshold (Section 4.2)
  uint64_t wait_cycles = 3000;       // "wait for a while" when throttled
  int max_threads = 8192;            // acquisitions table rows
};

// One post-profiling decision, recorded per cycle (drives Figure 18(b)).
struct NatleCycleDecision {
  uint64_t cycle_index;
  int fastest_mode;
  int alternate_mode;
  double fastest_slice;
  double socket0_share;  // fraction of quantum time socket 0 may run
};

class NatleLock {
 public:
  NatleLock(htm::Env& env, TlePolicy tle_policy = TlePolicy{},
            NatleConfig cfg = NatleConfig{})
      : tle_(env, tle_policy), cfg_(cfg) {
    num_modes_ = env.cfg().sockets + 1;
    profiling_len_ = env.cfg().msToCycles(cfg.profiling_ms);
    if (profiling_len_ < 3000) profiling_len_ = 3000;
    profiling_len_ &= ~uint64_t{3};  // keep epoch stamps 4-aligned
    quantum_len_ = profiling_len_;
    cycle_len_ = profiling_len_ + static_cast<uint64_t>(cfg.quanta) * quantum_len_;
    sh_ = static_cast<Shared*>(env.allocShared(sizeof(Shared)));
    std::memset(sh_, 0, sizeof(Shared));
    sh_->fastest_mode = num_modes_ - 1;
    sh_->alternate_mode = num_modes_ - 1;
    sh_->fastest_slice = 1.0;
    acq_stride_ = 64;  // one line per thread row: no false sharing
    acq_ = static_cast<unsigned char*>(
        env.allocShared(static_cast<size_t>(cfg.max_threads) * acq_stride_));
    std::memset(acq_, 0, static_cast<size_t>(cfg.max_threads) * acq_stride_);
    // Watchdog diagnostics: raw host-side reads of the mode words (charges
    // nothing; only ever invoked while draining a tripped run).
    env_ = &env;
    diag_id_ = env.registerDiag([this](std::string& out) {
      out += "natle fastest_mode=" + std::to_string(sh_->fastest_mode) +
             " alternate_mode=" + std::to_string(sh_->alternate_mode) +
             " last_prof_start=" + std::to_string(sh_->last_prof_start) + "\n";
    });
  }

  ~NatleLock() { env_->unregisterDiag(diag_id_); }
  NatleLock(const NatleLock&) = delete;
  NatleLock& operator=(const NatleLock&) = delete;

  // LockAcquire/LockRelease of the paper's Figure 9, wrapped around the
  // critical section (see TleLock::execute for why cs is a callable).
  template <typename F>
  void execute(htm::ThreadCtx& ctx, F&& cs) {
    int repetitions = 0;
    while (repetitions++ < cfg_.repetitions_threshold) {
      const int mode = getMode(ctx);
      if (mode == num_modes_ - 1 || mode == ctx.cachedSocket()) {
        bumpAcquisitions(ctx, mode);
        tle_.execute(ctx, cs);
        return;
      }
      ctx.work(cfg_.wait_cycles);  // throttled: not our socket's turn
    }
    // Pathological-miss safety valve: run anyway (correctness preserved).
    tle_.execute(ctx, cs);
  }

  // Figure 10: current mode for this lock, driving profiling transitions.
  int getMode(htm::ThreadCtx& ctx) {
    ctx.work(15);  // mode arithmetic + clock read
    const uint64_t now = ctx.nowCycles();
    const uint64_t time_into_cycle = now % cycle_len_;
    if (time_into_cycle < profiling_len_) {
      startProfiling(ctx, now - time_into_cycle);
      int m = static_cast<int>(time_into_cycle /
                               (profiling_len_ / static_cast<uint64_t>(num_modes_)));
      return m >= num_modes_ ? num_modes_ - 1 : m;
    }
    finalizeProfiling(ctx);
    const int fastest = static_cast<int>(ctx.load(sh_->fastest_mode));
    const double slice = ctx.load(sh_->fastest_slice);
    if (slice >= 1.0 || fastest == num_modes_ - 1) return fastest;
    const uint64_t quantum_pos = (time_into_cycle - profiling_len_) % quantum_len_;
    if (static_cast<double>(quantum_pos) <
        slice * static_cast<double>(quantum_len_)) {
      return fastest;
    }
    return static_cast<int>(ctx.load(sh_->alternate_mode));
  }

  const std::vector<NatleCycleDecision>& history() const { return history_; }
  TleLock& underlying() { return tle_; }
  int numModes() const { return num_modes_; }
  uint64_t cycleLen() const { return cycle_len_; }

  struct ModeDecision {
    int fastest;
    int alternate;
    double slice;
  };

  // Figure 11's decision rule on a profiling summary: `acqs[m]` holds the
  // acquisitions measured in mode m (last mode = all sockets admitted).
  // Pure function, extracted for direct testing.
  static ModeDecision decideModes(const std::vector<int64_t>& acqs,
                                  uint64_t min_acquisitions) {
    const int num_modes = static_cast<int>(acqs.size());
    int64_t total = 0;
    int fastest = 0;
    int alternate = 0;
    for (int m = 0; m < num_modes; ++m) {
      total += acqs[m];
      if (acqs[m] > acqs[fastest]) fastest = m;
    }
    for (int m = 0; m < num_modes; ++m) {
      if (m != fastest && (alternate == fastest || acqs[m] > acqs[alternate])) {
        alternate = m;
      }
    }
    if (total < static_cast<int64_t>(min_acquisitions) ||
        fastest == num_modes - 1) {
      // Warm-up threshold, or all-sockets is fastest: no throttling.
      return ModeDecision{num_modes - 1, num_modes - 1, 1.0};
    }
    // The quantum is split between the fastest and the alternate mode, so
    // the denominator must be the *alternate's* measured acquisitions. (A
    // hard-coded `1 - fastest` "other socket" is only correct on the paper's
    // two-socket machine; with more sockets it pointed at a nonexistent or
    // wrong mode and silently degraded the slice to 1.0, starving the
    // alternate mode of its share of the quantum.)
    const int64_t denom = acqs[fastest] + acqs[alternate];
    const double slice = denom > 0 ? static_cast<double>(acqs[fastest]) /
                                         static_cast<double>(denom)
                                   : 1.0;
    return ModeDecision{fastest, alternate, slice};
  }

 private:
  struct Shared {
    uint64_t last_prof_start;  // biased epoch stamp, low 2 bits: stage S(x)
    int64_t fastest_mode;
    int64_t alternate_mode;
    double fastest_slice;
  };

  static uint64_t stage(uint64_t x) { return x & 3u; }
  // Epoch stamps are biased by 4 so that cycle 0 (profiling start time 0) is
  // still greater than the zero-initialised word and can be claimed.
  static uint64_t stamp(uint64_t x, uint64_t s) {
    return ((x + 4) & ~uint64_t{3}) | s;
  }

  // Row for a thread id. Ids beyond active_rows_ (applications that create
  // threads repeatedly, like paraheap-k) fold onto existing rows; profiling
  // only needs the per-mode sums, so folding never loses information.
  int64_t* acqCell(int tid, int mode) {
    const size_t row = static_cast<size_t>(tid % active_rows_);
    return reinterpret_cast<int64_t*>(acq_ + row * acq_stride_) + mode;
  }

  void bumpAcquisitions(htm::ThreadCtx& ctx, int mode) {
    int64_t* cell = acqCell(ctx.tid(), mode);
    ctx.store(*cell, ctx.load(*cell) + 1);
  }

  // Figure 10: claim and initialise the profiling data for a new cycle.
  void startProfiling(htm::ThreadCtx& ctx, uint64_t prof_start) {
    const uint64_t target0 = stamp(prof_start, 0);
    const uint64_t target1 = stamp(prof_start, 1);
    uint64_t t = ctx.load(sh_->last_prof_start);
    while (t < target1) {
      if (t < target0 && ctx.cas(sh_->last_prof_start, t, target0)) {
        for (int tid = 0; tid < active_rows_; ++tid) {
          for (int m = 0; m < num_modes_; ++m) {
            ctx.store(*acqCell(tid, m), int64_t{0});
          }
        }
        ctx.store(sh_->last_prof_start, target1);
        return;
      }
      ctx.work(120);
      t = ctx.load(sh_->last_prof_start);
    }
  }

  // Figure 11: summarise the profiling data once per cycle.
  void finalizeProfiling(htm::ThreadCtx& ctx) {
    uint64_t t = ctx.load(sh_->last_prof_start);
    if (stage(t) == 3) return;
    if (stage(t) <= 1 && ctx.cas(sh_->last_prof_start, t, stamp(t, 2))) {
      computeBestLockModes(ctx);
      ctx.store(sh_->last_prof_start, stamp(t, 3));
      return;
    }
    // Another thread is summarising: wait for it (bounded).
    for (int i = 0; i < 4096; ++i) {
      t = ctx.load(sh_->last_prof_start);
      if (stage(t) != 2) return;
      ctx.work(200);
    }
  }

  void computeBestLockModes(htm::ThreadCtx& ctx) {
    static const bool debug_modes = std::getenv("NATLE_DEBUG_MODES") != nullptr;
    std::vector<int64_t> acqs(num_modes_, 0);
    for (int tid = 0; tid < active_rows_; ++tid) {
      for (int m = 0; m < num_modes_; ++m) {
        acqs[m] += ctx.load(*acqCell(tid, m));
      }
    }
    const ModeDecision md = decideModes(acqs, cfg_.min_acquisitions);
    const int fastest = md.fastest;
    const int alternate = md.alternate;
    const double slice = md.slice;
    if (debug_modes) {
      std::fprintf(stderr, "[natle %p t=%llu] acqs:", (void*)this,
                   (unsigned long long)ctx.nowCycles());
      for (int m = 0; m < num_modes_; ++m) {
        std::fprintf(stderr, " m%d=%lld", m, (long long)acqs[m]);
      }
      std::fprintf(stderr, " -> fastest=%d slice=%.2f\n", fastest, slice);
    }
    ctx.store(sh_->fastest_mode, static_cast<int64_t>(fastest));
    ctx.store(sh_->alternate_mode, static_cast<int64_t>(alternate));
    ctx.store(sh_->fastest_slice, slice);

    NatleCycleDecision d;
    d.cycle_index = ctx.nowCycles() / cycle_len_;
    d.fastest_mode = fastest;
    d.alternate_mode = alternate;
    d.fastest_slice = slice;
    if (fastest == num_modes_ - 1) {
      d.socket0_share = 0.5;  // no throttling: both sockets share the quantum
    } else if (fastest == 0) {
      d.socket0_share =
          slice + (alternate == num_modes_ - 1 ? (1.0 - slice) * 0.5 : 0.0);
    } else {
      d.socket0_share = alternate == 0
                            ? 1.0 - slice
                            : (alternate == num_modes_ - 1 ? (1.0 - slice) * 0.5
                                                           : 0.0);
    }
    history_.push_back(d);
  }

 public:
  // Number of acquisition rows scanned during profiling; set this to the
  // number of worker threads for exact statistics (defaults to 128 rows).
  void setActiveRows(int n) {
    active_rows_ = n < cfg_.max_threads ? n : cfg_.max_threads;
  }

 private:
  TleLock tle_;
  NatleConfig cfg_;
  htm::Env* env_ = nullptr;
  uint64_t diag_id_ = 0;
  Shared* sh_;
  unsigned char* acq_;
  size_t acq_stride_;
  int num_modes_;
  int active_rows_ = 128;
  uint64_t profiling_len_;
  uint64_t quantum_len_;
  uint64_t cycle_len_;
  std::vector<NatleCycleDecision> history_;
};

}  // namespace natle::sync
