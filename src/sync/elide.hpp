// Runtime-selectable elision lock: applications pick TLE or NATLE per run
// (the paper's evaluation compares the two on identical binaries, switching
// the lock library underneath).
#pragma once

#include <memory>

#include "sync/natle.hpp"
#include "sync/tle.hpp"

namespace natle::sync {

class ElisionLock {
 public:
  ElisionLock(htm::Env& env, bool use_natle, TlePolicy pol = TlePolicy{},
              NatleConfig ncfg = NatleConfig{}) {
    if (use_natle) {
      natle_ = std::make_unique<NatleLock>(env, pol, ncfg);
    } else {
      tle_ = std::make_unique<TleLock>(env, pol);
    }
  }

  template <typename F>
  void execute(htm::ThreadCtx& ctx, F&& cs) {
    if (natle_ != nullptr) {
      natle_->execute(ctx, std::forward<F>(cs));
    } else {
      tle_->execute(ctx, std::forward<F>(cs));
    }
  }

  NatleLock* natle() { return natle_.get(); }

 private:
  std::unique_ptr<TleLock> tle_;
  std::unique_ptr<NatleLock> natle_;
};

}  // namespace natle::sync
