// Transactional lock elision (Dice et al., ASPLOS 2009), with the retry
// policies the paper compares in Section 3.1:
//
//   TLE-20            — 20 attempts, ignore the hint bit, lock-held waits
//                       are not counted (anti-lemming). The paper's default.
//   TLE-5             — same with 5 attempts.
//   TLE-{5,20}-hint-bit   — fall back to the lock immediately when an abort
//                       reports the hint bit clear.
//   TLE-{5,20}-count-lock — attempts that found the lock held count toward
//                       the retry budget (no anti-lemming optimization).
//
// The critical section runs as a callable inside execute(): a software
// abort must unwind to a frame that is still live, so acquire/release cannot
// be split across the caller (real RTM resurrects the register state; a
// simulator cannot). Critical-section code must perform all shared accesses
// through the ThreadCtx and must be safe to re-execute from the top.
#pragma once

#include <cstdio>

#include "htm/env.hpp"
#include "obs/trace.hpp"
#include "sync/tatas.hpp"

namespace natle::sync {

// Explicit-abort code used when a transaction observes the lock held.
constexpr uint8_t kLockHeldCode = 0xfe;

struct TlePolicy {
  int max_attempts = 20;
  bool respect_hint_bit = false;  // fall back on the first hint-clear abort
  bool count_lock_held = false;   // count lock-held aborts toward attempts
  uint64_t precommit_delay = 0;   // Fig. 6: work() cycles injected before commit
};

inline TlePolicy Tle20() { return TlePolicy{}; }
inline TlePolicy Tle5() { return TlePolicy{.max_attempts = 5}; }
inline TlePolicy Tle20HintBit() { return TlePolicy{.respect_hint_bit = true}; }
inline TlePolicy Tle5HintBit() {
  return TlePolicy{.max_attempts = 5, .respect_hint_bit = true};
}
inline TlePolicy Tle20CountLock() { return TlePolicy{.count_lock_held = true}; }
inline TlePolicy Tle5CountLock() {
  return TlePolicy{.max_attempts = 5, .count_lock_held = true};
}

class TleLock {
 public:
  TleLock(htm::Env& env, TlePolicy policy = TlePolicy{})
      : lock_(env), policy_(policy), env_(&env) {
    // A watchdog dump should name the fallback lock and its holder; lines go
    // through the allocator's stable ids so the diagnostic is ASLR-free.
    diag_id_ = env.registerDiag([this](std::string& out) {
      out += "tle lock line=" +
             std::to_string(env_->allocator().stableLineId(lock_.lineId())) +
             " owner_tid=" + std::to_string(lock_.ownerTid()) + "\n";
    });
  }

  ~TleLock() { env_->unregisterDiag(diag_id_); }
  TleLock(const TleLock&) = delete;
  TleLock& operator=(const TleLock&) = delete;

  // Run `cs` as a critical section protected by this lock, eliding the lock
  // with a hardware transaction when possible.
  template <typename F>
  void execute(htm::ThreadCtx& ctx, F&& cs) {
    ctx.resetAttemptSeq();
    // `attempts` changes between setjmp and a longjmp landing: volatile.
    volatile int attempts = 0;
    for (;;) {
      // Anti-lemming: never start (or restart) a transaction while the lock
      // is held; wait for the release.
      lock_.waitWhileHeld(ctx);
      unsigned status;
      NATLE_TX_BEGIN(ctx, status);
      if (status == htm::kTxStarted) {
        if (lock_.read(ctx) != 0) ctx.txAbort(kLockHeldCode);  // subscribe
        cs();
        if (policy_.precommit_delay != 0) ctx.work(policy_.precommit_delay);
        ctx.txCommit();
        return;
      }
      const htm::AbortStatus a = htm::decodeStatus(status);
      const bool lock_was_held = a.reason == htm::AbortReason::kExplicit &&
                                 a.xabort_code == kLockHeldCode;
      if (lock_was_held) {
        if (policy_.count_lock_held) attempts = attempts + 1;
      } else {
        attempts = attempts + 1;
        if (policy_.respect_hint_bit && !a.may_retry) break;
      }
      if (attempts >= policy_.max_attempts) break;
      // Small jitter before retrying: abort handling has variable latency on
      // real hardware; without it, symmetric transactions can mutually abort
      // in lockstep forever in a deterministic simulation.
      ctx.work(ctx.rng().below(64));
    }
    // Fallback: take the lock for real.
    lock_.lock(ctx);
    if (obs::Tracer* tr = ctx.env().tracer();
        tr != nullptr && ctx.nowCycles() >= ctx.env().statsStart()) {
      obs::TraceEvent e;
      e.clock = ctx.nowCycles();
      e.kind = obs::EventKind::kLockFallback;
      e.tid = static_cast<int16_t>(ctx.tid());
      e.socket = static_cast<int8_t>(ctx.socket());
      e.cls = ctx.classTag();
      tr->record(e);
    }
#ifdef NATLE_DEBUG_EXCLUSIVE_FALLBACK
    ctx.env().debugDumpInFlight(lock_.lineId());
    ++dbg_fallback_active;
    if (++dbg_fallback_depth_ != 1) {
      std::fprintf(stderr, "DOUBLE FALLBACK! tid=%d t=%llu depth=%d\n", ctx.tid(),
                   (unsigned long long)ctx.nowCycles(), dbg_fallback_depth_);
      std::abort();
    }
#endif
    if (ctx.nowCycles() >= ctx.env().statsStart()) ctx.stats().lock_acquires++;
    // Fault injection: a stalled lock holder (preempted, interrupt) keeps the
    // lock pinned while every elided section piles onto waitWhileHeld — the
    // manufactured lemming cascade.
    if (fault::FaultSchedule* f = ctx.env().faults()) {
      const uint64_t stall = f->lockHolderStall(ctx.nowCycles());
      if (stall != 0) ctx.work(stall);
    }
    cs();
#ifdef NATLE_DEBUG_EXCLUSIVE_FALLBACK
    --dbg_fallback_depth_;
    --dbg_fallback_active;
#endif
    lock_.unlock(ctx);
  }

  TatasLock& fallbackLock() { return lock_; }
  const TlePolicy& policy() const { return policy_; }

 private:
  TatasLock lock_;
  TlePolicy policy_;
  htm::Env* env_;
  uint64_t diag_id_ = 0;
#ifdef NATLE_DEBUG_EXCLUSIVE_FALLBACK
  int dbg_fallback_depth_ = 0;
 public:
  static inline int dbg_fallback_active = 0;  // across all locks
 private:
#endif
};

}  // namespace natle::sync
