// The paper's first rejected alternative (Section 4.1): keep plain TLE, but
// make threads on the remote socket back off before retrying an aborted
// transaction. The paper found performance only improved "when the backoff
// was so long that the second socket was almost completely starved" — and
// starving it forfeits workloads that do scale across sockets. The ablation
// bench reproduces that trade-off by sweeping the backoff length.
#pragma once

#include "sync/tle.hpp"

namespace natle::sync {

class BackoffTleLock {
 public:
  // remote_backoff: cycles a thread *not* on preferred_socket waits after
  // each abort before retrying (scaled by attempt count, capped).
  BackoffTleLock(htm::Env& env, uint64_t remote_backoff,
                 TlePolicy policy = TlePolicy{}, int preferred_socket = 0)
      : lock_(env),
        policy_(policy),
        remote_backoff_(remote_backoff),
        preferred_socket_(preferred_socket) {}

  template <typename F>
  void execute(htm::ThreadCtx& ctx, F&& cs) {
    ctx.resetAttemptSeq();
    volatile int attempts = 0;
    const bool remote = ctx.socket() != preferred_socket_;
    for (;;) {
      lock_.waitWhileHeld(ctx);
      unsigned status;
      NATLE_TX_BEGIN(ctx, status);
      if (status == htm::kTxStarted) {
        if (lock_.read(ctx) != 0) ctx.txAbort(kLockHeldCode);
        cs();
        ctx.txCommit();
        return;
      }
      const htm::AbortStatus a = htm::decodeStatus(status);
      const bool lock_was_held = a.reason == htm::AbortReason::kExplicit &&
                                 a.xabort_code == kLockHeldCode;
      if (!lock_was_held) {
        attempts = attempts + 1;
        if (remote && remote_backoff_ > 0) {
          uint64_t pause = remote_backoff_ * static_cast<uint64_t>(attempts);
          if (pause > 64 * remote_backoff_) pause = 64 * remote_backoff_;
          ctx.work(pause + ctx.rng().below(remote_backoff_ + 1));
        }
      }
      if (attempts >= policy_.max_attempts) break;
      ctx.work(ctx.rng().below(64));
    }
    lock_.lock(ctx);
    if (ctx.nowCycles() >= ctx.env().statsStart()) ctx.stats().lock_acquires++;
    cs();
    lock_.unlock(ctx);
  }

 private:
  TatasLock lock_;
  TlePolicy policy_;
  uint64_t remote_backoff_;
  int preferred_socket_;
};

}  // namespace natle::sync
