// The paper's first rejected alternative (Section 4.1): keep plain TLE, but
// make threads on the remote socket back off before retrying an aborted
// transaction. The paper found performance only improved "when the backoff
// was so long that the second socket was almost completely starved" — and
// starving it forfeits workloads that do scale across sockets. The ablation
// bench reproduces that trade-off by sweeping the backoff length.
#pragma once

#include "sync/tle.hpp"

namespace natle::sync {

class BackoffTleLock {
 public:
  // remote_backoff: cycles a thread *not* on preferred_socket waits after
  // each abort before retrying (scaled by attempt count, capped).
  BackoffTleLock(htm::Env& env, uint64_t remote_backoff,
                 TlePolicy policy = TlePolicy{}, int preferred_socket = 0)
      : lock_(env),
        policy_(policy),
        remote_backoff_(remote_backoff),
        preferred_socket_(preferred_socket) {}

  template <typename F>
  void execute(htm::ThreadCtx& ctx, F&& cs) {
    ctx.resetAttemptSeq();
    volatile int attempts = 0;
    const bool remote = ctx.socket() != preferred_socket_;
    for (;;) {
      lock_.waitWhileHeld(ctx);
      unsigned status;
      NATLE_TX_BEGIN(ctx, status);
      if (status == htm::kTxStarted) {
        if (lock_.read(ctx) != 0) ctx.txAbort(kLockHeldCode);
        cs();
        ctx.txCommit();
        return;
      }
      const htm::AbortStatus a = htm::decodeStatus(status);
      const bool lock_was_held = a.reason == htm::AbortReason::kExplicit &&
                                 a.xabort_code == kLockHeldCode;
      if (!lock_was_held) {
        attempts = attempts + 1;
        if (remote && remote_backoff_ > 0) {
          const uint64_t pause =
              backoffPause(remote_backoff_, static_cast<uint64_t>(attempts));
          ctx.work(pause + ctx.rng().below(remote_backoff_ < UINT64_MAX
                                               ? remote_backoff_ + 1
                                               : UINT64_MAX));
        }
      }
      if (attempts >= policy_.max_attempts) break;
      ctx.work(ctx.rng().below(64));
    }
    lock_.lock(ctx);
    if (ctx.nowCycles() >= ctx.env().statsStart()) ctx.stats().lock_acquires++;
    if (fault::FaultSchedule* f = ctx.env().faults()) {
      const uint64_t stall = f->lockHolderStall(ctx.nowCycles());
      if (stall != 0) ctx.work(stall);
    }
    cs();
    lock_.unlock(ctx);
  }

  // Backoff for a given attempt count, saturating at 64x the base backoff.
  // Under an injected abort storm `attempts` grows without bound, so the
  // scaled product must never overflow or exceed the cap.
  static uint64_t backoffPause(uint64_t remote_backoff, uint64_t attempts) {
    if (remote_backoff == 0 || attempts == 0) return 0;
    const uint64_t cap = remote_backoff > UINT64_MAX / 64
                             ? UINT64_MAX
                             : remote_backoff * 64;
    if (attempts >= 64 || remote_backoff > UINT64_MAX / attempts) return cap;
    const uint64_t pause = remote_backoff * attempts;
    return pause < cap ? pause : cap;
  }

 private:
  TatasLock lock_;
  TlePolicy policy_;
  uint64_t remote_backoff_;
  int preferred_socket_;
};

}  // namespace natle::sync
