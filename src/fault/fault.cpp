#include "fault/fault.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cmath>

namespace natle::fault {

namespace {

bool parseDoubleField(const std::string& v, double* out) {
  const char* b = v.data();
  const char* e = b + v.size();
  double d = 0;
  auto [p, ec] = std::from_chars(b, e, d);
  if (ec != std::errc() || p != e || !std::isfinite(d)) return false;
  *out = d;
  return true;
}

bool parseU64Field(const std::string& v, uint64_t* out) {
  const char* b = v.data();
  const char* e = b + v.size();
  uint64_t u = 0;
  auto [p, ec] = std::from_chars(b, e, u);
  if (ec != std::errc() || p != e) return false;
  *out = u;
  return true;
}

bool parseIntField(const std::string& v, int* out) {
  const char* b = v.data();
  const char* e = b + v.size();
  int i = 0;
  auto [p, ec] = std::from_chars(b, e, i);
  if (ec != std::errc() || p != e) return false;
  *out = i;
  return true;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t next = s.find(sep, pos);
    if (next == std::string::npos) next = s.size();
    if (next > pos) out.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

bool fail(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
  return false;
}

// Shortest round-trippable decimal form, matching the JSON writer's style.
std::string numToString(double d) {
  char buf[64];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  assert(ec == std::errc());
  return std::string(buf, p);
}

std::string numToString(uint64_t u) {
  char buf[32];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), u);
  assert(ec == std::errc());
  return std::string(buf, p);
}

void appendBurst(std::string* out, const BurstCfg& b) {
  *out += ",period_ms=" + numToString(b.period_ms);
  *out += ",duration_ms=" + numToString(b.duration_ms);
  *out += ",jitter=" + numToString(b.jitter);
}

}  // namespace

bool FaultSpec::parse(const std::string& spec, FaultSpec* out, std::string* err) {
  FaultSpec r;
  for (const std::string& seg : split(spec, ';')) {
    const size_t colon = seg.find(':');
    if (colon == std::string::npos) {
      // The only bare segment is seed=N.
      const size_t eq = seg.find('=');
      if (eq == std::string::npos || seg.substr(0, eq) != "seed") {
        return fail(err, "fault spec: expected 'channel:k=v,...' or 'seed=N', got '" +
                             seg + "'");
      }
      if (!parseU64Field(seg.substr(eq + 1), &r.seed)) {
        return fail(err, "fault spec: bad seed value in '" + seg + "'");
      }
      continue;
    }
    const std::string chan = seg.substr(0, colon);
    BurstCfg* burst = nullptr;
    if (chan == "storm") {
      burst = &r.storm;
    } else if (chan == "squeeze") {
      burst = &r.squeeze;
    } else if (chan == "link") {
      burst = &r.link;
    } else if (chan == "stall") {
      burst = &r.stall;
    } else {
      return fail(err, "fault spec: unknown channel '" + chan + "'");
    }
    for (const std::string& kv : split(seg.substr(colon + 1), ',')) {
      const size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        return fail(err, "fault spec: expected k=v in '" + chan + "', got '" + kv + "'");
      }
      const std::string k = kv.substr(0, eq);
      const std::string v = kv.substr(eq + 1);
      bool ok = true;
      if (k == "period_ms") {
        ok = parseDoubleField(v, &burst->period_ms) && burst->period_ms >= 0;
      } else if (k == "duration_ms") {
        ok = parseDoubleField(v, &burst->duration_ms) && burst->duration_ms >= 0;
      } else if (k == "jitter") {
        ok = parseDoubleField(v, &burst->jitter) && burst->jitter >= 0 &&
             burst->jitter < 1;
      } else if (chan == "storm" && k == "rate") {
        ok = parseDoubleField(v, &r.storm_rate) && r.storm_rate >= 0;
      } else if (chan == "storm" && k == "socket") {
        ok = parseIntField(v, &r.storm_socket);
      } else if (chan == "squeeze" && k == "ways") {
        uint64_t w = 0;
        ok = parseU64Field(v, &w) && w <= 64;
        if (ok) r.squeeze_ways = static_cast<uint32_t>(w);
      } else if (chan == "link" && k == "extra") {
        ok = parseU64Field(v, &r.link_extra);
      } else if (chan == "link" && k == "from") {
        ok = parseIntField(v, &r.link_from) && r.link_from >= 0;
      } else if (chan == "link" && k == "to") {
        ok = parseIntField(v, &r.link_to) && r.link_to >= 0;
      } else if (chan == "stall" && k == "cycles") {
        ok = parseU64Field(v, &r.stall_cycles);
      } else {
        return fail(err, "fault spec: unknown key '" + k + "' for channel '" + chan +
                             "'");
      }
      if (!ok) {
        return fail(err, "fault spec: bad value '" + v + "' for '" + chan + ":" + k +
                             "'");
      }
    }
  }
  *out = r;
  return true;
}

std::string FaultSpec::toSpecString() const {
  std::string out;
  auto sep = [&out] {
    if (!out.empty()) out += ';';
  };
  if (storm_rate > 0 || storm.enabled()) {
    sep();
    out += "storm:rate=" + numToString(storm_rate);
    if (storm_socket >= 0) out += ",socket=" + numToString(uint64_t(storm_socket));
    appendBurst(&out, storm);
  }
  if (squeeze_ways > 0 || squeeze.enabled()) {
    sep();
    out += "squeeze:ways=" + numToString(uint64_t(squeeze_ways));
    appendBurst(&out, squeeze);
  }
  if (link_extra > 0 || link.enabled()) {
    sep();
    out += "link:extra=" + numToString(link_extra);
    if (link_from >= 0) out += ",from=" + numToString(uint64_t(link_from));
    if (link_to >= 0) out += ",to=" + numToString(uint64_t(link_to));
    appendBurst(&out, link);
  }
  if (stall_cycles > 0 || stall.enabled()) {
    sep();
    out += "stall:cycles=" + numToString(stall_cycles);
    appendBurst(&out, stall);
  }
  sep();
  out += "seed=" + numToString(seed);
  return out;
}

WindowSeq::WindowSeq(const BurstCfg& cfg, double ghz, uint64_t seed)
    : enabled_(cfg.enabled()),
      period_(static_cast<uint64_t>(cfg.period_ms * 1e6 * ghz)),
      duration_(static_cast<uint64_t>(cfg.duration_ms * 1e6 * ghz)),
      jitter_(cfg.jitter),
      rng_(seed) {
  if (period_ == 0) period_ = 1;
  if (duration_ == 0) duration_ = 1;
  if (enabled_) next_start_ = jittered(period_);
}

uint64_t WindowSeq::jittered(uint64_t base) {
  // factor uniform in [1-j, 1+j); base >= 1 so the result stays >= 1.
  const double factor = 1.0 - jitter_ + 2.0 * jitter_ * rng_.uniform();
  const uint64_t v = static_cast<uint64_t>(static_cast<double>(base) * factor);
  return v > 0 ? v : 1;
}

void WindowSeq::extendTo(uint64_t t) {
  while (next_start_ <= t) {
    const uint64_t start = next_start_;
    const uint64_t end = start + jittered(duration_);
    windows_.push_back(Window{start, end});
    const uint64_t gap = jittered(period_);
    next_start_ = std::max(end, start + gap);
    if (next_start_ <= start) next_start_ = end;  // overflow paranoia
  }
}

bool WindowSeq::covers(uint64_t t) {
  if (!enabled_) return false;
  extendTo(t);
  // First window with end > t; covered iff it started at or before t.
  auto it = std::upper_bound(
      windows_.begin(), windows_.end(), t,
      [](uint64_t v, const Window& w) { return v < w.end; });
  return it != windows_.end() && it->start <= t;
}

uint64_t WindowSeq::overlap(uint64_t t0, uint64_t t1) {
  if (!enabled_ || t1 <= t0) return 0;
  extendTo(t1);
  auto it = std::upper_bound(
      windows_.begin(), windows_.end(), t0,
      [](uint64_t v, const Window& w) { return v < w.end; });
  uint64_t total = 0;
  for (; it != windows_.end() && it->start < t1; ++it) {
    const uint64_t lo = std::max(it->start, t0);
    const uint64_t hi = std::min(it->end, t1);
    if (hi > lo) total += hi - lo;
  }
  return total;
}

FaultSchedule::FaultSchedule(const FaultSpec& spec, const sim::MachineConfig& cfg)
    : spec_(spec) {
  if (spec_.storm.enabled() && spec_.storm_rate > 0) {
    storm_.reserve(cfg.sockets);
    for (int s = 0; s < cfg.sockets; ++s) {
      storm_.emplace_back(spec_.storm, cfg.ghz,
                          sim::streamSeed(spec_.seed, sim::kStreamFaultStorm, s));
    }
  }
  if (spec_.squeeze.enabled() && spec_.squeeze_ways > 0) {
    const int ncores = cfg.coresTotal();
    squeeze_.reserve(ncores);
    for (int c = 0; c < ncores; ++c) {
      squeeze_.emplace_back(spec_.squeeze, cfg.ghz,
                            sim::streamSeed(spec_.seed, sim::kStreamFaultSqueeze, c));
    }
  }
  if (spec_.link.enabled() && spec_.link_extra > 0) {
    link_ = WindowSeq(spec_.link, cfg.ghz,
                      sim::streamSeed(spec_.seed, sim::kStreamFaultLink, 0));
  }
  if (spec_.stall.enabled() && spec_.stall_cycles > 0) {
    stall_ = WindowSeq(spec_.stall, cfg.ghz,
                       sim::streamSeed(spec_.seed, sim::kStreamFaultStall, 0));
  }
}

double FaultSchedule::stormHazard(int socket, uint64_t t0, uint64_t t1) {
  if (storm_.empty() || socket < 0 || socket >= static_cast<int>(storm_.size())) {
    return 0;
  }
  if (spec_.storm_socket >= 0 && socket != spec_.storm_socket) return 0;
  const uint64_t covered = storm_[socket].overlap(t0, t1);
  return covered == 0 ? 0 : spec_.storm_rate * static_cast<double>(covered);
}

uint32_t FaultSchedule::maskedWays(int core_global, uint64_t now) {
  if (squeeze_.empty() || core_global < 0 ||
      core_global >= static_cast<int>(squeeze_.size())) {
    return 0;
  }
  return squeeze_[core_global].covers(now) ? spec_.squeeze_ways : 0;
}

uint64_t FaultSchedule::linkPenalty(uint64_t now) {
  if (spec_.link_extra == 0) return 0;
  return link_.covers(now) ? spec_.link_extra : 0;
}

uint64_t FaultSchedule::linkPenalty(int a, int b, uint64_t now) {
  if (spec_.link_extra == 0) return 0;
  if (spec_.link_from >= 0 && spec_.link_to >= 0) {
    // Exact unordered pair.
    const int lo = std::min(a, b), hi = std::max(a, b);
    const int flo = std::min(spec_.link_from, spec_.link_to);
    const int fhi = std::max(spec_.link_from, spec_.link_to);
    if (lo != flo || hi != fhi) return 0;
  } else if (spec_.link_from >= 0 || spec_.link_to >= 0) {
    // All links incident to the named socket.
    const int only = spec_.link_from >= 0 ? spec_.link_from : spec_.link_to;
    if (a != only && b != only) return 0;
  }
  return link_.covers(now) ? spec_.link_extra : 0;
}

uint64_t FaultSchedule::lockHolderStall(uint64_t now) {
  if (spec_.stall_cycles == 0) return 0;
  return stall_.covers(now) ? spec_.stall_cycles : 0;
}

}  // namespace natle::fault
