// Deterministic fault injection for the simulated machine.
//
// A FaultSchedule perturbs the model through existing hooks — it never adds
// its own coherence or scheduling behaviour, it only modulates parameters the
// model already has:
//
//   storm    bursty per-socket spurious-abort hazard (extra rate folded into
//            ThreadCtx::spuriousHazard's Poisson exponent)
//   squeeze  transient per-core L1 capacity squeeze: masks ways to model
//            SMT-sibling / prefetcher pressure (L1Cache::insert)
//   link     NUMA latency spikes: extra occupancy per cross-socket transfer
//            (mem::Interconnect::transferDelay), optionally targeting one
//            socket pair or all links incident to a socket
//   stall    lock-holder stall: extra cycles charged inside the TLE/NATLE
//            fallback critical section, manufacturing lemming cascades
//
// All windows are generated lazily from dedicated RNG streams derived via
// sim::streamSeed, entirely independent of workload streams: a run with the
// subsystem compiled in but no fault spec is byte-identical to one without
// it, and a given (spec, seed) always yields the same windows regardless of
// query order or --jobs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/rng.hpp"

namespace natle::fault {

// A bursty on/off pattern: windows of `duration_ms` open roughly every
// `period_ms`, both jittered by ±jitter (relative). period_ms == 0 disables
// the channel.
struct BurstCfg {
  double period_ms = 0;
  double duration_ms = 0;
  double jitter = 0.5;  // relative jitter on period and duration, in [0, 1)

  bool enabled() const { return period_ms > 0 && duration_ms > 0; }
};

// Parsed fault specification. Built from a compact CLI/JSON string:
//
//   storm:rate=2e-6,period_ms=0.3,duration_ms=0.08;stall:cycles=150000,
//   period_ms=1.0,duration_ms=0.2;seed=7
//
// Segments are ';'-separated; each names a channel followed by ':' and
// comma-separated k=v pairs, except the bare `seed=N` segment. Unknown
// channels or keys are errors (reported via FaultSpec::parse).
struct FaultSpec {
  BurstCfg storm;
  double storm_rate = 0;  // extra spurious-abort hazard per cycle in a window
  int storm_socket = -1;  // -1 = all sockets

  BurstCfg squeeze;
  uint32_t squeeze_ways = 0;  // L1 ways masked while a window is open

  BurstCfg link;
  uint64_t link_extra = 0;  // extra link-occupancy cycles per transfer
  // Socket-pair targeting for the link channel. Both set: only the {from,to}
  // link is perturbed. Only `from` set: every link incident to that socket.
  // Both -1 (default): all links.
  int link_from = -1;
  int link_to = -1;

  BurstCfg stall;
  uint64_t stall_cycles = 0;  // extra cycles charged to a fallback lock holder

  uint64_t seed = 1;

  bool enabled() const {
    return (storm.enabled() && storm_rate > 0) ||
           (squeeze.enabled() && squeeze_ways > 0) ||
           (link.enabled() && link_extra > 0) ||
           (stall.enabled() && stall_cycles > 0);
  }

  // Parse `spec`; returns false and sets *err on malformed input.
  static bool parse(const std::string& spec, FaultSpec* out, std::string* err);

  // Canonical round-trippable form: parse(toSpecString()) reproduces *this.
  // Used when embedding the spec in config JSON.
  std::string toSpecString() const;
};

// A deterministic, lazily extended sequence of disjoint [start, end) windows
// in simulated cycles. Generation consumes only this sequence's own RNG, and
// extendTo() is monotone in what it materialises, so covers()/overlap()
// answers are independent of query order.
class WindowSeq {
 public:
  WindowSeq() = default;
  WindowSeq(const BurstCfg& cfg, double ghz, uint64_t seed);

  // True iff `t` lies inside a window.
  bool covers(uint64_t t);
  // Total cycles of [t0, t1) covered by windows.
  uint64_t overlap(uint64_t t0, uint64_t t1);

 private:
  void extendTo(uint64_t t);
  uint64_t jittered(uint64_t base);

  struct Window {
    uint64_t start;
    uint64_t end;
  };

  bool enabled_ = false;
  uint64_t period_ = 0;
  uint64_t duration_ = 0;
  double jitter_ = 0;
  uint64_t next_start_ = 0;  // earliest start of the next ungenerated window
  std::vector<Window> windows_;
  sim::Rng rng_;
};

// The queryable schedule a trial installs into its Env. Per-socket storm
// streams, per-core squeeze streams, one link stream and one stall stream,
// all derived from (spec.seed, domain, index).
class FaultSchedule {
 public:
  FaultSchedule(const FaultSpec& spec, const sim::MachineConfig& cfg);

  const FaultSpec& spec() const { return spec_; }

  // Extra spurious-abort hazard (dimensionless Poisson exponent contribution)
  // accumulated over simulated [t0, t1) on `socket`.
  double stormHazard(int socket, uint64_t t0, uint64_t t1);

  // L1 ways currently masked on `core_global` (0 outside windows). Clamped
  // by the caller to ways-1.
  uint32_t maskedWays(int core_global, uint64_t now);

  // Extra link occupancy per cross-socket transfer at `now`, ignoring any
  // pair targeting (legacy single-link query; kept for schedule-level tests).
  uint64_t linkPenalty(uint64_t now);
  // Extra occupancy for a transfer on the {a, b} link at `now`; 0 when the
  // spec targets a different pair.
  uint64_t linkPenalty(int a, int b, uint64_t now);

  // Extra cycles a fallback-lock holder must burn if it acquired at `now`.
  uint64_t lockHolderStall(uint64_t now);

 private:
  FaultSpec spec_;
  std::vector<WindowSeq> storm_;    // per socket
  std::vector<WindowSeq> squeeze_;  // per core
  WindowSeq link_;
  WindowSeq stall_;
};

}  // namespace natle::fault
